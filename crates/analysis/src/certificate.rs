//! Machine-checked security certificates for synthesized bindings.
//!
//! A [`SecurityCertificate`] is the positive result of the security
//! pass (`passes::security`): a record that the prover enumerated every
//! vendor coalition of size one and two over every output cone of the
//! binding and found no coalition that defeats the run-time comparator.
//! The certificate is *checkable*, not just a stamp: it carries a
//! checksum over the exact binding it certifies, and
//! [`SecurityCertificate::verify`] re-runs the prover and compares —
//! any drift between the certificate and the implementation it claims
//! to cover is detected.
//!
//! The JSON rendering stays inside the service wire subset (objects,
//! strings, unsigned integers, booleans), so the daemon can attach a
//! certificate to a response and clients can parse it with the same
//! minimal reader they use for everything else.

use std::fmt;

use troyhls::Mode;

use crate::render::json_escape;

/// Proof record: no single vendor and no colluding vendor pair defeats
/// the comparator on any output cone of the certified binding.
///
/// Produced only by [`crate::certify`]; the fields are a faithful
/// summary of what the prover enumerated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityCertificate {
    /// The certified design's name.
    pub design: String,
    /// The synthesis mode the binding was certified under.
    pub mode: Mode,
    /// Number of output cones checked (one per DFG sink).
    pub cones: usize,
    /// Total operations covered across all cones (every DFG op).
    pub ops_covered: usize,
    /// Proven: no single vendor controls both detection copies of any
    /// cone, and no vendor holds a trigger channel within one copy.
    pub single_vendor_safe: bool,
    /// Size of the smallest vendor coalition that could corrupt both
    /// detection copies of some output consistently. A certificate
    /// always has `>= 2`; rule-compliant bindings cannot do better,
    /// since the two vendors of one op's NC/RC pair always suffice.
    pub min_collusion_size: usize,
    /// Cones whose full NC+RC vendor set collapses to two vendors (a
    /// colluding *pair* controls every detection position). Recorded,
    /// not certified away: small cones over small catalogs exhibit this
    /// legally, and the TQ006 warning points at each instance.
    pub pair_exposed_cones: usize,
    /// Cones whose recovery copy shares a vendor with their detection
    /// copies (TQ007), when the mode synthesizes recovery at all.
    pub recovery_exposed_cones: usize,
    /// Vendors in the catalog the coalition enumeration ranged over.
    pub vendors_enumerated: usize,
    /// FNV-1a digest of the certified binding (every op copy's cycle
    /// and vendor) plus the claim fields; binds the certificate to one
    /// concrete implementation.
    pub checksum: u64,
}

impl SecurityCertificate {
    /// Renders the certificate as a JSON object inside the service wire
    /// subset (no floats, no negatives).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"design\":\"{}\",\"mode\":\"{}\",\"cones\":{},\"ops_covered\":{},",
                "\"single_vendor_safe\":{},\"min_collusion_size\":{},",
                "\"pair_exposed_cones\":{},\"recovery_exposed_cones\":{},",
                "\"vendors_enumerated\":{},\"checksum\":{}}}"
            ),
            json_escape(&self.design),
            json_escape(&self.mode.to_string()),
            self.cones,
            self.ops_covered,
            self.single_vendor_safe,
            self.min_collusion_size,
            self.pair_exposed_cones,
            self.recovery_exposed_cones,
            self.vendors_enumerated,
            self.checksum,
        )
    }

    /// Re-runs the prover on `problem` + `imp` and checks that it
    /// reissues exactly this certificate. `false` means the certificate
    /// does not belong to that binding (or the binding regressed).
    #[must_use]
    pub fn verify(
        &self,
        problem: &troyhls::SynthesisProblem,
        imp: &troyhls::Implementation,
    ) -> bool {
        crate::certify(problem, imp).as_ref() == Ok(self)
    }
}

impl fmt::Display for SecurityCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "security certificate: {} ({} mode)",
            self.design, self.mode
        )?;
        writeln!(
            f,
            "  proven: no single vendor controls both detection copies of any of {} output cone(s) ({} ops, {} vendors enumerated)",
            self.cones, self.ops_covered, self.vendors_enumerated
        )?;
        writeln!(
            f,
            "  minimum evading coalition: {} vendors",
            self.min_collusion_size
        )?;
        if self.pair_exposed_cones == 0 {
            writeln!(
                f,
                "  proven: no colluding vendor pair controls a full output cone"
            )?;
        } else {
            writeln!(
                f,
                "  warning: {} cone(s) fully controlled by a vendor pair (see TQ006)",
                self.pair_exposed_cones
            )?;
        }
        if self.recovery_exposed_cones > 0 {
            writeln!(
                f,
                "  note: {} cone(s) with detection vendors recurring in recovery (see TQ007)",
                self.recovery_exposed_cones
            )?;
        }
        write!(f, "  checksum: {:016x}", self.checksum)
    }
}

/// Incremental FNV-1a 64-bit digest used to bind certificates to the
/// exact implementation they cover.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SecurityCertificate {
        SecurityCertificate {
            design: "polynom".into(),
            mode: Mode::DetectionRecovery,
            cones: 1,
            ops_covered: 5,
            single_vendor_safe: true,
            min_collusion_size: 2,
            pair_exposed_cones: 0,
            recovery_exposed_cones: 1,
            vendors_enumerated: 4,
            checksum: 0xdead_beef,
        }
    }

    #[test]
    fn json_stays_in_the_wire_subset() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"design\":\"polynom\""));
        assert!(j.contains("\"mode\":\"detection+recovery\""));
        assert!(j.contains("\"single_vendor_safe\":true"));
        assert!(j.contains("\"checksum\":3735928559"));
        assert!(!j.contains('.') || j.contains("detection"), "{j}");
    }

    #[test]
    fn text_rendering_states_both_claims() {
        let text = sample().to_string();
        assert!(text.contains("no single vendor"), "{text}");
        assert!(text.contains("no colluding vendor pair"), "{text}");
        assert!(text.contains("minimum evading coalition: 2"), "{text}");
        assert!(text.contains("TQ007"), "{text}");
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        let mut a = Fnv::new();
        a.write(b"troy");
        let mut b = Fnv::new();
        b.write(b"troy");
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.write(b"trojan");
        assert_ne!(a.finish(), c.finish());
    }
}
