//! Pass-based static analysis for TroyHLS problems and bindings.
//!
//! The analyzer runs an extensible pipeline of [`LintPass`]es over a
//! [`troyhls::SynthesisProblem`] and (optionally) an
//! [`troyhls::Implementation`], emitting structured [`Diagnostic`]s with:
//!
//! - **stable codes** in three families — `TD0xx` design-rule findings
//!   (one code per [`troyhls::Violation`] shape), `TP0xx` pre-solve
//!   problem/feasibility findings, `TQ0xx` quality lints;
//! - **severities** ([`Severity::Error`] / [`Severity::Warning`] /
//!   [`Severity::Note`]) with filtering and per-code suppression;
//! - **precise locations** (op copy, node, cycle, vendor, IP type);
//! - **explanations** tying each finding back to the paper's equations;
//! - **fix-it suggestions**, e.g. the legal alternative vendors that
//!   repair a Rule 1/Rule 2 violation.
//!
//! Reports render as plain text, JSON or SARIF 2.1.0.
//!
//! The design-rule pass never re-implements a rule: it maps the output of
//! [`troyhls::validate`] one-to-one (see
//! [`passes::diagnostic_for_violation`]), so `validate` and `lint` cannot
//! disagree about what is a violation.
//!
//! # Example
//!
//! ```
//! use troy_dfg::benchmarks;
//! use troyhls::{Catalog, Implementation, Mode, SynthesisProblem};
//! use troy_analysis::{lint, Code, Severity};
//!
//! let problem = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
//!     .mode(Mode::DetectionOnly)
//!     .detection_latency(4)
//!     .build()?;
//! // Nothing bound yet: every required copy is reported as TD001.
//! let report = lint(&problem, Some(&Implementation::new(problem.dfg().len())));
//! assert!(report.is_blocking());
//! assert_eq!(report.count(Severity::Error), 10);
//! assert!(report.diagnostics.iter().all(|d| d.code == Code::UnassignedCopy));
//! println!("{}", report.to_text());
//! # Ok::<(), troyhls::ProblemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certificate;
mod diagnostic;
mod engine;
pub mod passes;
mod render;

pub use certificate::SecurityCertificate;
pub use diagnostic::{Code, Diagnostic, FixIt, Location, Severity, NUM_CODES};
pub use engine::{lint, AnalysisOptions, AnalysisReport, Analyzer};
pub use passes::{
    certify, code_for_violation, cone_findings, diagnostic_for_violation, legal_vendors,
    DesignRulesPass, FeasibilityPass, LintContext, LintPass, QualityPass, SecurityPass,
};
