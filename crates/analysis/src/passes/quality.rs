//! Quality lints: legal-but-wasteful or legal-but-risky patterns in a
//! complete binding.

use std::collections::BTreeMap;

use troyhls::{allocate_registers, is_valid, License, OpCopy, Role, SynthesisProblem, VendorId};

use crate::diagnostic::{Code, Diagnostic, FixIt, Location};
use crate::passes::{legal_vendors, LintContext, LintPass};

/// Emits `TQ0xx` findings on a complete, rule-clean binding.
///
/// The pass stays silent while design-rule errors are present: cost and
/// robustness advice on an invalid binding would be noise.
#[derive(Debug, Clone, Copy, Default)]
pub struct QualityPass;

impl LintPass for QualityPass {
    fn name(&self) -> &'static str {
        "quality"
    }

    fn description(&self) -> &'static str {
        "cost and robustness lints on a valid binding (TQ001-TQ003)"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(imp) = cx.implementation else {
            return;
        };
        if !imp.is_complete(cx.problem.mode()) || !is_valid(cx.problem, imp) {
            return;
        }
        redundant_licenses(cx.problem, imp, out);
        near_collusion(cx.problem, imp, out);
        register_pressure(cx.problem, imp, out);
    }
}

/// TQ001: a license whose single copy could legally move to a vendor that
/// is already licensed for the same type — the fee is pure waste.
fn redundant_licenses(
    p: &SynthesisProblem,
    imp: &troyhls::Implementation,
    out: &mut Vec<Diagnostic>,
) {
    let dfg = p.dfg();
    let mut users: BTreeMap<License, Vec<OpCopy>> = BTreeMap::new();
    for (copy, a) in imp.iter() {
        users
            .entry(License {
                vendor: a.vendor,
                ip_type: dfg.kind(copy.op).ip_type(),
            })
            .or_default()
            .push(copy);
    }
    for (license, copies) in &users {
        let [copy] = copies.as_slice() else {
            continue;
        };
        let licensed_elsewhere: Vec<VendorId> = users
            .keys()
            .filter(|l| l.ip_type == license.ip_type && l.vendor != license.vendor)
            .map(|l| l.vendor)
            .collect();
        let alts: Vec<VendorId> = legal_vendors(p, imp, *copy)
            .into_iter()
            .filter(|v| licensed_elsewhere.contains(v))
            .collect();
        if alts.is_empty() {
            continue;
        }
        let fee = p.catalog().offering_of(*license).map_or(0, |o| o.cost);
        out.push(
            Diagnostic::new(
                Code::RedundantLicense,
                format!(
                    "the {} license of vendor {} serves only {copy}; rebinding it to an \
                     already-licensed vendor drops the license and saves {fee} cost units",
                    license.ip_type.name(),
                    license.vendor
                ),
            )
            .at(Location::copy(*copy)
                .on_vendor(license.vendor)
                .of_type(license.ip_type))
            .with_fixit(FixIt::rebind(*copy, alts)),
        );
    }
}

/// TQ002: same-role copies exactly two dependency hops apart on one
/// vendor — legal today, but one edge short of a Rule 2 pair, so a single
/// malicious vendor brackets a two-hop data path.
fn near_collusion(p: &SynthesisProblem, imp: &troyhls::Implementation, out: &mut Vec<Diagnostic>) {
    let dfg = p.dfg();
    for &role in Role::for_mode(p.mode()) {
        for u in dfg.node_ids() {
            for &mid in dfg.succs(u) {
                for &w in dfg.succs(mid) {
                    if w == u || dfg.succs(u).contains(&w) {
                        continue; // direct edges are Rule 2's business
                    }
                    // Siblings (shared child) are also already constrained.
                    if dfg.succs(u).iter().any(|c| dfg.succs(w).contains(c)) {
                        continue;
                    }
                    let (ca, cb) = (OpCopy::new(u, role), OpCopy::new(w, role));
                    let (Some(a), Some(b)) = (imp.assignment_of(ca), imp.assignment_of(cb)) else {
                        continue;
                    };
                    if a.vendor != b.vendor {
                        continue;
                    }
                    out.push(
                        Diagnostic::new(
                            Code::NearCollusion,
                            format!(
                                "{ca} and {cb} both run on vendor {} two dependency hops \
                                 apart (via {mid}); a single colluding vendor brackets \
                                 that data path",
                                a.vendor
                            ),
                        )
                        .at(Location::copy(cb).at_cycle(b.cycle).on_vendor(b.vendor)),
                    );
                }
            }
        }
    }
}

/// TQ003: register-pressure hotspot — more than half of all copies live in
/// one cycle.
fn register_pressure(
    p: &SynthesisProblem,
    imp: &troyhls::Implementation,
    out: &mut Vec<Diagnostic>,
) {
    let regs = allocate_registers(p, imp);
    let peak = regs.peak_pressure();
    let copies = p.dfg().len() * Role::for_mode(p.mode()).len();
    if peak * 2 <= copies {
        return;
    }
    // Find the first cycle where pressure peaks.
    let mut peak_cycle = 0;
    let mut best = 0usize;
    let max_cycle = regs.lifetimes().iter().map(|l| l.to).max().unwrap_or(0);
    for cycle in 0..=max_cycle {
        let live = regs
            .lifetimes()
            .iter()
            .filter(|l| l.from <= cycle && cycle <= l.to)
            .count();
        if live > best {
            best = live;
            peak_cycle = cycle;
        }
    }
    out.push(
        Diagnostic::new(
            Code::RegisterPressure,
            format!(
                "register pressure peaks at {peak} live values in cycle {peak_cycle} \
                 ({peak} of {copies} copies); consider more latency slack to stagger \
                 lifetimes",
            ),
        )
        .at(Location::none().at_cycle(peak_cycle)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::{benchmarks, NodeId};
    use troyhls::{Assignment, Catalog, Implementation, Mode};

    fn problem() -> SynthesisProblem {
        SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .area_limit(50_000)
            .build()
            .unwrap()
    }

    fn a(c: usize, v: usize) -> Assignment {
        Assignment {
            cycle: c,
            vendor: VendorId::new(v),
        }
    }

    fn valid_detection() -> Implementation {
        let mut imp = Implementation::new(5);
        imp.assign(NodeId::new(0), Role::Nc, a(1, 0));
        imp.assign(NodeId::new(1), Role::Nc, a(1, 1));
        imp.assign(NodeId::new(2), Role::Nc, a(1, 0));
        imp.assign(NodeId::new(3), Role::Nc, a(2, 2));
        imp.assign(NodeId::new(4), Role::Nc, a(3, 1));
        imp.assign(NodeId::new(0), Role::Rc, a(2, 1));
        imp.assign(NodeId::new(1), Role::Rc, a(2, 2));
        imp.assign(NodeId::new(2), Role::Rc, a(2, 1));
        imp.assign(NodeId::new(3), Role::Rc, a(3, 3));
        imp.assign(NodeId::new(4), Role::Rc, a(4, 0));
        imp
    }

    fn run_pass(p: &SynthesisProblem, imp: &Implementation) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        QualityPass.run(
            &LintContext {
                problem: p,
                implementation: Some(imp),
            },
            &mut out,
        );
        out
    }

    #[test]
    fn silent_on_invalid_bindings() {
        let p = problem();
        let mut imp = valid_detection();
        imp.assign(NodeId::new(0), Role::Rc, a(2, 0)); // rule 1 violation
        assert!(run_pass(&p, &imp).is_empty());
    }

    #[test]
    fn single_copy_license_with_cheaper_home_flags_tq001() {
        let p = problem();
        let imp = valid_detection();
        // In the hand binding every adder license serves exactly one copy;
        // e.g. Ven1's adder license serves only o5[RC], which could legally
        // move to Ven3 (already licensed for adders via o4[NC]... at Ven3).
        let out = run_pass(&p, &imp);
        let tq001: Vec<_> = out
            .iter()
            .filter(|d| d.code == Code::RedundantLicense)
            .collect();
        assert!(!tq001.is_empty(), "{out:?}");
        // o4[RC] on Ven4 must NOT be flagged: all other vendors collide
        // with its diversity partners, so no legal alternative exists.
        assert!(
            tq001
                .iter()
                .all(|d| d.location.vendor != Some(VendorId::new(3))),
            "{out:?}"
        );
        // Every suggestion must keep the binding valid.
        for d in &tq001 {
            let fix = d.fixits.first().expect("fix-it");
            let copy = fix.copy.expect("rebind target");
            let cycle = imp.assignment_of(copy).unwrap().cycle;
            for &alt in &fix.alternatives {
                let mut trial = imp.clone();
                trial.assign(copy.op, copy.role, a(cycle, alt.index()));
                assert!(is_valid(&p, &trial), "suggested {alt} breaks the design");
            }
        }
    }

    #[test]
    fn grandparent_same_vendor_flags_tq002() {
        let p = problem();
        // polynom: o2 -> o4 -> o5 is a two-hop path; o2 and o5 share no
        // direct edge and no child, and the hand binding puts both NC
        // copies on Ven2 — legal, but a single-vendor bracket.
        let imp = valid_detection();
        let out = run_pass(&p, &imp);
        let near: Vec<_> = out
            .iter()
            .filter(|d| d.code == Code::NearCollusion)
            .collect();
        assert!(
            near.iter()
                .any(|d| d.message.contains("o2[NC]") && d.message.contains("o5[NC]")),
            "{out:?}"
        );
    }

    #[test]
    fn register_pressure_note_on_wide_parallel_dfg() {
        // Eight independent multiplies: every value stays live until the
        // comparator, so all 16 copies are simultaneously live.
        let mut g = troy_dfg::Dfg::new("wide");
        for _ in 0..8 {
            g.add_op(troy_dfg::OpKind::Mul);
        }
        let p = SynthesisProblem::builder(g, Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(2)
            .area_limit(1_000_000)
            .build()
            .unwrap();
        let mut imp = Implementation::new(8);
        for i in 0..8 {
            imp.assign(NodeId::new(i), Role::Nc, a(1, i % 2));
            imp.assign(NodeId::new(i), Role::Rc, a(2, 2 + i % 2));
        }
        assert!(is_valid(&p, &imp), "{:?}", troyhls::validate(&p, &imp));
        let out = run_pass(&p, &imp);
        assert!(
            out.iter().any(|d| d.code == Code::RegisterPressure),
            "{out:?}"
        );
    }
}
