//! The security pass: a semantic prover for the diversity guarantee.
//!
//! The design-rule pass checks the paper's *syntactic* rules; this pass
//! proves the *property the rules exist for*. The threat model: a
//! vendor coalition controls every op copy bound to its vendors and can
//! make them emit arbitrary values. The run-time comparator checks each
//! DFG output by comparing its NC and RC values, so a coalition defeats
//! detection of an output exactly when it can corrupt both detection
//! copies of that output's cone consistently.
//!
//! Over the bit-set cones from [`troyhls::output_cones`], the pass
//! exhaustively enumerates vendor coalitions of size one and two:
//!
//! - **TQ004** (error): a single vendor owns both the NC and RC copy of
//!   some cone member — injecting the same corruption at the same
//!   position in both copies commutes with the identical downstream
//!   data flow, so the comparator sees agreeing (wrong) outputs.
//! - **TQ005** (error): one vendor holds two directly-interacting
//!   positions (producer→consumer edge, or two parents of one child)
//!   inside a single computation copy — the covert marker channel of
//!   `troy-sim`'s `ColludingTrojan`, proven exploitable there.
//! - **TQ006** (warning): a vendor *pair* jointly controls every NC and
//!   RC position of a cone. Such a pair needs no shared position: it
//!   owns both copies outright. Legal bindings over small catalogs can
//!   exhibit this (a one-op cone always does), so it warns rather than
//!   blocks — and the certificate records the count.
//! - **TQ007** (note): in recovery mode, a detection vendor of the cone
//!   reappears in the cone's recovery copy, so recovery of that output
//!   is not vendor-independent of what it recovers from.
//!
//! The pass recomputes everything from the binding itself — it shares
//! no code with [`troyhls::validate`] — which is what makes it a useful
//! mutation oracle: a solver bug that slips past the syntactic rules
//! still has to get past an independent semantic check.

use std::collections::BTreeSet;

use troy_dfg::NodeId;
use troyhls::{
    cone_vendors, diversity_constraints, output_cones, validate, Implementation, Mode, OpCopy,
    OutputCone, Role, SynthesisProblem, VendorId,
};

use crate::certificate::{Fnv, SecurityCertificate};
use crate::diagnostic::{Code, Diagnostic, FixIt, Location, Severity};
use crate::passes::{legal_vendors, LintContext, LintPass};

/// Proves per-cone coalition safety; emits TQ004–TQ007 (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct SecurityPass;

impl LintPass for SecurityPass {
    fn name(&self) -> &'static str {
        "security-cones"
    }

    fn description(&self) -> &'static str {
        "proves no single or colluding vendor coalition defeats the comparator (TQ004-TQ007)"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(imp) = cx.implementation else {
            return;
        };
        out.extend(cone_findings(cx.problem, imp));
    }
}

/// Attaches a rebind fix-it for `copy` when a legal alternative exists.
fn with_rebind(
    d: Diagnostic,
    problem: &SynthesisProblem,
    imp: &Implementation,
    copy: OpCopy,
) -> Diagnostic {
    let alts = legal_vendors(problem, imp, copy);
    if alts.is_empty() {
        d
    } else {
        d.with_fixit(FixIt::rebind(copy, alts))
    }
}

fn vendor_list(vendors: &BTreeSet<VendorId>) -> String {
    vendors
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// The sink of the first (lowest-sink) cone containing `op`, for
/// witness messages. Every node is in at least one cone.
fn witness_cone(cones: &[OutputCone], op: NodeId) -> NodeId {
    cones.iter().find(|c| c.contains(op)).map_or(op, |c| c.sink)
}

/// All security findings for one binding, in deterministic order:
/// single-vendor witnesses, then trigger channels, then pair collapses,
/// then recovery exposures. Positions with missing assignments are
/// skipped — incompleteness is TD001's business, not this pass's.
#[must_use]
pub fn cone_findings(problem: &SynthesisProblem, imp: &Implementation) -> Vec<Diagnostic> {
    let dfg = problem.dfg();
    let cones = output_cones(dfg);
    let mut out = Vec::new();

    // TQ004 — single vendor controls both detection copies of a cone
    // member. Deduplicated across overlapping cones by op.
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for cone in &cones {
        for &op in &cone.members {
            if flagged.contains(&op.index()) {
                continue;
            }
            let (Some(nc), Some(rc)) = (imp.assignment(op, Role::Nc), imp.assignment(op, Role::Rc))
            else {
                continue;
            };
            if nc.vendor == rc.vendor {
                flagged.insert(op.index());
                let copy = OpCopy::new(op, Role::Rc);
                let d = Diagnostic::new(
                    Code::ConeSingleVendor,
                    format!(
                        "vendor {} alone corrupts output cone {}: it owns both detection \
                         copies of {op}, so identical corruption there evades the comparator",
                        nc.vendor, cone.sink,
                    ),
                )
                .at(Location::copy(copy).at_cycle(rc.cycle).on_vendor(rc.vendor));
                out.push(with_rebind(d, problem, imp, copy));
            }
        }
    }

    // TQ005 — one vendor on two directly-interacting positions within a
    // single computation copy: the covert marker channel. Edges and
    // sibling pairs always lie inside a common cone, so no cone filter
    // is needed; the witness names the first cone containing the pair.
    for role in Role::for_mode(problem.mode()) {
        let interactions = dfg.edges().map(|(a, b)| (a, b, "feeds")).chain(
            dfg.sibling_pairs()
                .into_iter()
                .map(|(a, b)| (a, b, "joins")),
        );
        for (a, b, how) in interactions {
            let (Some(xa), Some(xb)) = (imp.assignment(a, *role), imp.assignment(b, *role)) else {
                continue;
            };
            if xa.vendor != xb.vendor {
                continue;
            }
            let copy = OpCopy::new(b, *role);
            let d = Diagnostic::new(
                Code::ConeTriggerChannel,
                format!(
                    "vendor {} holds {} and {copy}, where {a} {how} {b} in cone {}: a covert \
                     marker between its own units triggers untestable payloads",
                    xa.vendor,
                    OpCopy::new(a, *role),
                    witness_cone(&cones, b),
                ),
            )
            .at(Location::copy(copy).at_cycle(xb.cycle).on_vendor(xb.vendor));
            out.push(with_rebind(d, problem, imp, copy));
        }
    }

    // TQ006 — a vendor pair jointly controls every detection position
    // of a cone.
    for cone in &cones {
        let (Some(nc), Some(rc)) = (
            cone_vendors(imp, cone, Role::Nc),
            cone_vendors(imp, cone, Role::Rc),
        ) else {
            continue;
        };
        let union: BTreeSet<VendorId> = nc.union(&rc).copied().collect();
        if union.len() <= 2 {
            out.push(
                Diagnostic::new(
                    Code::ConePairCollapse,
                    format!(
                        "vendors {{{}}} jointly control all {} detection position(s) of output \
                         cone {}: that colluding pair corrupts NC and RC consistently",
                        vendor_list(&union),
                        2 * cone.len(),
                        cone.sink,
                    ),
                )
                .at(Location::node(cone.sink))
                .with_fixit(FixIt::advice(
                    "spread the cone's detection copies over at least three vendors",
                )),
            );
        }
    }

    // TQ007 — recovery mode: a detection vendor of the cone recurs in
    // its recovery copy.
    if problem.mode() == Mode::DetectionRecovery {
        for cone in &cones {
            let (Some(nc), Some(rc), Some(rec)) = (
                cone_vendors(imp, cone, Role::Nc),
                cone_vendors(imp, cone, Role::Rc),
                cone_vendors(imp, cone, Role::Recovery),
            ) else {
                continue;
            };
            let detection: BTreeSet<VendorId> = nc.union(&rc).copied().collect();
            let overlap: BTreeSet<VendorId> = detection.intersection(&rec).copied().collect();
            if !overlap.is_empty() {
                out.push(
                    Diagnostic::new(
                        Code::RecoveryConeExposure,
                        format!(
                            "recovery of output cone {} is not vendor-independent: {{{}}} \
                             appear(s) in both its detection and recovery copies",
                            cone.sink,
                            vendor_list(&overlap),
                        ),
                    )
                    .at(Location::node(cone.sink)),
                );
            }
        }
    }

    out
}

/// Runs the full prover over `problem` + `imp` and issues a
/// [`SecurityCertificate`], or returns every blocking finding.
///
/// A certificate requires *all* of: the binding passes
/// [`troyhls::validate`] (complete, scheduled, area-legal, rule-
/// compliant), and the coalition enumeration finds no error-level
/// exposure (no TQ004 single-vendor cone control, no TQ005 trigger
/// channel). Warning/note findings (TQ006/TQ007) do not block; their
/// counts are recorded in the certificate so a zero there is itself a
/// proven claim.
///
/// # Errors
///
/// The `Err` payload is the sorted list of blocking diagnostics —
/// design-rule violations first-class among them, each with witness
/// location and rebind fix-its where a repair exists.
pub fn certify(
    problem: &SynthesisProblem,
    imp: &Implementation,
) -> Result<SecurityCertificate, Vec<Diagnostic>> {
    let findings = cone_findings(problem, imp);
    let mut blocking: Vec<Diagnostic> = validate(problem, imp)
        .iter()
        .map(|v| crate::passes::diagnostic_for_violation(problem, imp, v))
        .collect();
    blocking.extend(
        findings
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .cloned(),
    );
    if !blocking.is_empty() {
        blocking.sort_by_key(Diagnostic::sort_key);
        return Err(blocking);
    }

    let dfg = problem.dfg();
    let cones = output_cones(dfg);
    let count = |code: Code| findings.iter().filter(|d| d.code == code).count();

    let mut h = Fnv::new();
    h.write(dfg.name().as_bytes());
    h.write(problem.mode().to_string().as_bytes());
    for (copy, a) in imp.iter() {
        h.write_usize(copy.op.index());
        h.write_usize(copy.role.index());
        h.write_usize(a.cycle);
        h.write_usize(a.vendor.index());
    }
    h.write_usize(cones.len());
    h.write_usize(diversity_constraints(problem).len());

    Ok(SecurityCertificate {
        design: dfg.name().to_string(),
        mode: problem.mode(),
        cones: cones.len(),
        ops_covered: dfg.len(),
        single_vendor_safe: true,
        min_collusion_size: 2,
        pair_exposed_cones: count(Code::ConePairCollapse),
        recovery_exposed_cones: count(Code::RecoveryConeExposure),
        vendors_enumerated: problem.catalog().num_vendors(),
        checksum: h.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::{benchmarks, NodeId};
    use troyhls::{Assignment, Catalog, ExactSolver, SolveOptions, Synthesizer};

    fn problem(mode: Mode) -> SynthesisProblem {
        SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(mode)
            .detection_latency(4)
            .recovery_latency(3)
            .area_limit(22_000)
            .build()
            .unwrap()
    }

    fn solved(mode: Mode) -> (SynthesisProblem, Implementation) {
        let p = problem(mode);
        let s = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        (p, s.implementation)
    }

    #[test]
    fn exact_solution_earns_a_certificate_in_both_modes() {
        for mode in [Mode::DetectionOnly, Mode::DetectionRecovery] {
            let (p, imp) = solved(mode);
            let cert = certify(&p, &imp).expect("rule-compliant optimum certifies");
            assert_eq!(cert.cones, 1, "polynom has one output");
            assert_eq!(cert.ops_covered, 5);
            assert!(cert.single_vendor_safe);
            assert_eq!(cert.min_collusion_size, 2);
            assert_eq!(
                cert.pair_exposed_cones, 0,
                "a 5-op cone needs >= 3 vendors per copy"
            );
            assert!(cert.verify(&p, &imp));
        }
    }

    #[test]
    fn certificate_checksum_is_bound_to_the_binding() {
        let (p, imp) = solved(Mode::DetectionOnly);
        let cert = certify(&p, &imp).unwrap();
        assert!(cert.verify(&p, &imp));
        assert_eq!(
            cert,
            certify(&p, &imp).unwrap(),
            "same binding, same certificate"
        );
        // Rebind one copy to a different (still legal) vendor: the
        // certified artifact changed, so the old certificate is stale.
        let copy = OpCopy::new(NodeId::new(0), Role::Nc);
        let alt = legal_vendors(&p, &imp, copy)
            .into_iter()
            .next()
            .expect("table 1 leaves rebind slack");
        let mut moved = imp.clone();
        let a = moved.assignment(copy.op, copy.role).unwrap();
        moved.assign(
            copy.op,
            copy.role,
            Assignment {
                cycle: a.cycle,
                vendor: alt,
            },
        );
        assert!(
            !cert.verify(&p, &moved),
            "stale certificate must not verify"
        );
    }

    #[test]
    fn single_vendor_cone_control_is_refused_with_a_witness() {
        let (p, mut imp) = solved(Mode::DetectionOnly);
        let nc = imp.assignment(NodeId::new(3), Role::Nc).unwrap();
        let rc = imp.assignment(NodeId::new(3), Role::Rc).unwrap();
        imp.assign(
            NodeId::new(3),
            Role::Rc,
            Assignment {
                cycle: rc.cycle,
                vendor: nc.vendor,
            },
        );
        let diags = certify(&p, &imp).expect_err("single-vendor control must block");
        let tq = diags
            .iter()
            .find(|d| d.code == Code::ConeSingleVendor)
            .expect("TQ004 witness present");
        assert_eq!(tq.location.vendor, Some(nc.vendor));
        assert!(
            tq.message.contains("o5"),
            "names the cone sink: {}",
            tq.message
        );
        assert!(
            tq.fixits.iter().any(|f| !f.alternatives.is_empty()),
            "witness carries legal rebind alternatives"
        );
    }

    #[test]
    fn trigger_channel_within_one_copy_is_refused() {
        // o1 → o4 in polynom: put both NC copies on one vendor. Rule 2
        // (TD006) sees it; TQ005 must find it *independently*.
        let (p, mut imp) = solved(Mode::DetectionOnly);
        let parent = imp.assignment(NodeId::new(0), Role::Nc).unwrap();
        let child = imp.assignment(NodeId::new(3), Role::Nc).unwrap();
        imp.assign(
            NodeId::new(3),
            Role::Nc,
            Assignment {
                cycle: child.cycle,
                vendor: parent.vendor,
            },
        );
        let diags = certify(&p, &imp).expect_err("trigger channel must block");
        assert!(
            diags.iter().any(|d| d.code == Code::ConeTriggerChannel),
            "{diags:?}"
        );
    }

    #[test]
    fn two_vendor_cone_warns_pair_collapse_but_still_certifies() {
        // A 2-op chain, NC/RC woven from exactly two vendors: fully
        // rule-compliant, yet the pair {Ven1, Ven2} owns every
        // detection position. The syntactic rules cannot see this.
        let mut g = troy_dfg::Dfg::new("chain2");
        let a = g.add_op_with(troy_dfg::OpKind::Mul, "a", 2);
        let b = g.add_op_with(troy_dfg::OpKind::Mul, "b", 1);
        g.add_edge(a, b).unwrap();
        let p = SynthesisProblem::builder(g, Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .build()
            .unwrap();
        let mut imp = Implementation::new(2);
        let asg = |c, v| Assignment {
            cycle: c,
            vendor: VendorId::new(v),
        };
        imp.assign(a, Role::Nc, asg(1, 0));
        imp.assign(b, Role::Nc, asg(2, 1));
        imp.assign(a, Role::Rc, asg(2, 1));
        imp.assign(b, Role::Rc, asg(3, 0));
        assert!(validate(&p, &imp).is_empty(), "binding is rule-compliant");
        let cert = certify(&p, &imp).expect("warnings do not block");
        assert_eq!(cert.pair_exposed_cones, 1);
        let findings = cone_findings(&p, &imp);
        let pair = findings
            .iter()
            .find(|d| d.code == Code::ConePairCollapse)
            .expect("TQ006 present");
        assert!(pair.message.contains("Ven1") && pair.message.contains("Ven2"));
    }

    #[test]
    fn recovery_vendor_overlap_is_noted_in_the_certificate() {
        let (p, imp) = solved(Mode::DetectionRecovery);
        let cert = certify(&p, &imp).unwrap();
        // Table 1 has 4 vendors; a 5-op cone uses >= 3 per detection
        // copy, so the recovery copy cannot avoid all detection vendors.
        assert_eq!(cert.recovery_exposed_cones, 1);
        let findings = cone_findings(&p, &imp);
        assert!(findings
            .iter()
            .any(|d| d.code == Code::RecoveryConeExposure && d.severity == Severity::Note));
    }

    #[test]
    fn incomplete_bindings_are_never_certified() {
        let p = problem(Mode::DetectionOnly);
        let imp = Implementation::new(p.dfg().len());
        let diags = certify(&p, &imp).expect_err("nothing bound");
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
        assert!(!diags.is_empty());
    }
}
