//! Pre-solve feasibility analysis: provable infeasibility and structural
//! risk flagged from the problem alone, before any solver runs.

use troy_dfg::{IpTypeId, ScheduleWindows};
use troyhls::{min_vendors_per_type, Mode, SynthesisProblem};

use crate::diagnostic::{Code, Diagnostic, FixIt, Location};
use crate::passes::{LintContext, LintPass};

/// Emits `TP0xx` findings from the problem alone (no implementation).
#[derive(Debug, Clone, Copy, Default)]
pub struct FeasibilityPass;

impl LintPass for FeasibilityPass {
    fn name(&self) -> &'static str {
        "feasibility"
    }

    fn description(&self) -> &'static str {
        "pre-solve lower bounds: vendor counts, latency windows, forced area (TP001-TP006)"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let p = cx.problem;
        vendor_pool_bounds(p, out);
        latency_windows(p, out);
        area_lower_bound(p, out);
        unusable_vendors(p, out);
    }
}

/// TP001 / TP005: per-type vendor-count lower bounds vs. the catalog.
fn vendor_pool_bounds(p: &SynthesisProblem, out: &mut Vec<Diagnostic>) {
    for (ip_type, need) in min_vendors_per_type(p) {
        let have = p.catalog().vendors_for(ip_type).count();
        if have < need {
            out.push(
                Diagnostic::new(
                    Code::InsufficientVendors,
                    format!(
                        "{} mode needs at least {need} distinct vendors selling {} cores, \
                         but the catalog licenses only {have}; no binding can satisfy the \
                         diversity rules",
                        p.mode(),
                        ip_type.name()
                    ),
                )
                .at(Location::none().of_type(ip_type))
                .with_fixit(FixIt::advice(format!(
                    "license {} more vendor(s) for {}",
                    need - have,
                    ip_type.name()
                ))),
            );
        } else if have == need {
            out.push(
                Diagnostic::new(
                    Code::TightVendorPool,
                    format!(
                        "exactly {need} vendors sell {} cores — the minimum for {} mode; \
                         every binding must use all of them and no vendor can be dropped \
                         for cost",
                        ip_type.name(),
                        p.mode()
                    ),
                )
                .at(Location::none().of_type(ip_type)),
            );
        }
    }
}

/// TP006 / TP002: latency vs. the critical path, and zero-mobility ops.
fn latency_windows(p: &SynthesisProblem, out: &mut Vec<Diagnostic>) {
    let dfg = p.dfg();
    let cp = dfg.critical_path_len();
    let phases: &[(&str, usize)] = match p.mode() {
        Mode::DetectionOnly => &[("detection", 0)],
        Mode::DetectionRecovery => &[("detection", 0), ("recovery", 1)],
    };
    for &(name, idx) in phases {
        let latency = if idx == 0 {
            p.detection_latency()
        } else {
            p.recovery_latency()
        };
        let Some(w) = ScheduleWindows::compute(dfg, latency) else {
            out.push(
                Diagnostic::new(
                    Code::InfeasibleLatency,
                    format!(
                        "the {name} phase has {latency} cycles but the critical path of \
                         '{}' is {cp} ops long; no schedule fits",
                        dfg.name()
                    ),
                )
                .with_fixit(FixIt::advice(format!(
                    "raise the {name} latency to at least {cp}"
                ))),
            );
            continue;
        };
        let forced: Vec<_> = dfg.node_ids().filter(|&n| w.mobility(n) == 0).collect();
        if !forced.is_empty() && latency == cp {
            let examples = forced
                .iter()
                .take(3)
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            out.push(
                Diagnostic::new(
                    Code::ZeroMobility,
                    format!(
                        "{} of {} ops have zero scheduling mobility in the {name} phase \
                         ({latency} cycles = critical path): {examples}{} — vendor conflicts \
                         there cannot be repaired by re-timing",
                        forced.len(),
                        dfg.len(),
                        if forced.len() > 3 { ", ..." } else { "" }
                    ),
                )
                .at(Location::node(forced[0])),
            );
        }
    }
}

/// TP003: a forced-concurrency area lower bound vs. the area limit.
///
/// Within the detection window both the NC and RC computations run, so at
/// least `2 * min_concurrency(det, t)` instances of type `t` exist
/// simultaneously, each at least as large as the smallest cataloged `t`
/// core. The sum over types is a provable area lower bound.
fn area_lower_bound(p: &SynthesisProblem, out: &mut Vec<Diagnostic>) {
    let dfg = p.dfg();
    let det = p.detection_latency();
    let mut bound = 0u64;
    let mut terms: Vec<String> = Vec::new();
    for t in IpTypeId::all() {
        let mc = troy_dfg::min_concurrency(dfg, det, t);
        if mc == 0 || mc == usize::MAX {
            continue; // type unused, or latency infeasible (TP006 reports that)
        }
        let Some(min_area) = p
            .catalog()
            .vendors_for(t)
            .filter_map(|v| p.catalog().offering(v, t))
            .map(|o| o.area)
            .min()
        else {
            continue;
        };
        let term = 2 * mc as u64 * min_area;
        bound += term;
        terms.push(format!("{}: 2x{mc}x{min_area}", t.name()));
    }
    if bound > p.area_limit() {
        out.push(
            Diagnostic::new(
                Code::AreaInfeasible,
                format!(
                    "forced concurrency alone needs at least {bound} area units \
                     ({}) but the limit is {}; no binding can fit",
                    terms.join(", "),
                    p.area_limit()
                ),
            )
            .with_fixit(FixIt::advice(format!(
                "raise the area limit to at least {bound} or extend the detection latency"
            ))),
        );
    }
}

/// TP004: vendors whose whole catalog entry is irrelevant to this DFG.
fn unusable_vendors(p: &SynthesisProblem, out: &mut Vec<Diagnostic>) {
    let dfg = p.dfg();
    let used_types: Vec<IpTypeId> = IpTypeId::all()
        .filter(|&t| dfg.node_ids().any(|n| dfg.kind(n).ip_type() == t))
        .collect();
    for v in p.catalog().vendors() {
        let sells_any = used_types
            .iter()
            .any(|&t| p.catalog().offering(v, t).is_some());
        let sells_anything = IpTypeId::all().any(|t| p.catalog().offering(v, t).is_some());
        if !sells_any && sells_anything {
            out.push(
                Diagnostic::new(
                    Code::UnusableVendor,
                    format!(
                        "vendor {v} sells no IP type used by '{}'; it can never appear \
                         in a binding and its licenses are dead weight",
                        dfg.name()
                    ),
                )
                .at(Location::none().on_vendor(v)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::benchmarks;
    use troyhls::{Catalog, IpOffering, VendorId};

    #[test]
    fn two_vendor_catalog_flags_tp001_in_recovery_mode() {
        // Only vendors 0 and 1 sell anything: recovery needs 3 per type.
        let mut cat = Catalog::new();
        for v in 0..2 {
            cat.insert(
                VendorId::new(v),
                IpTypeId::ADDER,
                IpOffering {
                    area: 100,
                    cost: 10,
                },
            );
            cat.insert(
                VendorId::new(v),
                IpTypeId::MULTIPLIER,
                IpOffering {
                    area: 700,
                    cost: 60,
                },
            );
        }
        let p = SynthesisProblem::builder(benchmarks::polynom(), cat)
            .mode(Mode::DetectionRecovery)
            .detection_latency(4)
            .recovery_latency(3)
            .build()
            .unwrap();
        let mut out = Vec::new();
        FeasibilityPass.run(
            &LintContext {
                problem: &p,
                implementation: None,
            },
            &mut out,
        );
        let short: Vec<_> = out
            .iter()
            .filter(|d| d.code == Code::InsufficientVendors)
            .collect();
        // Both adder and multiplier pools are short (2 < 3).
        assert_eq!(short.len(), 2, "{out:?}");
        assert!(short.iter().all(|d| d.message.contains("only 2")));
    }

    #[test]
    fn table1_detection_mode_is_tp001_clean() {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .build()
            .unwrap();
        let mut out = Vec::new();
        FeasibilityPass.run(
            &LintContext {
                problem: &p,
                implementation: None,
            },
            &mut out,
        );
        assert!(out.iter().all(|d| d.code != Code::InsufficientVendors));
        assert!(out.iter().all(|d| d.code != Code::InfeasibleLatency));
    }

    #[test]
    fn critical_latency_flags_zero_mobility() {
        let g = benchmarks::polynom();
        let cp = g.critical_path_len();
        let p = SynthesisProblem::builder(g, Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(cp)
            .build()
            .unwrap();
        let mut out = Vec::new();
        FeasibilityPass.run(
            &LintContext {
                problem: &p,
                implementation: None,
            },
            &mut out,
        );
        assert!(out.iter().any(|d| d.code == Code::ZeroMobility), "{out:?}");
    }

    #[test]
    fn tiny_area_limit_flags_tp003() {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .area_limit(10)
            .build()
            .unwrap();
        let mut out = Vec::new();
        FeasibilityPass.run(
            &LintContext {
                problem: &p,
                implementation: None,
            },
            &mut out,
        );
        assert!(
            out.iter().any(|d| d.code == Code::AreaInfeasible),
            "{out:?}"
        );
    }

    #[test]
    fn vendor_selling_only_unused_types_flags_tp004() {
        // polynom uses adders and multipliers only; vendor 4 sells OTHER.
        let mut cat = Catalog::table1();
        cat.insert(
            VendorId::new(4),
            IpTypeId::OTHER,
            IpOffering { area: 50, cost: 5 },
        );
        let p = SynthesisProblem::builder(benchmarks::polynom(), cat)
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .build()
            .unwrap();
        let mut out = Vec::new();
        FeasibilityPass.run(
            &LintContext {
                problem: &p,
                implementation: None,
            },
            &mut out,
        );
        let tp004: Vec<_> = out
            .iter()
            .filter(|d| d.code == Code::UnusableVendor)
            .collect();
        assert_eq!(tp004.len(), 1, "{out:?}");
        assert_eq!(tp004[0].location.vendor, Some(VendorId::new(4)));
    }
}
