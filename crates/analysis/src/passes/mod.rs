//! The lint passes and the trait they implement.

mod design_rules;
mod feasibility;
mod quality;
mod security;

pub use design_rules::{
    code_for_violation, diagnostic_for_violation, legal_vendors, DesignRulesPass,
};
pub use feasibility::FeasibilityPass;
pub use quality::QualityPass;
pub use security::{certify, cone_findings, SecurityPass};

use troyhls::{Implementation, SynthesisProblem};

use crate::diagnostic::Diagnostic;

/// Everything a pass may inspect.
#[derive(Clone, Copy)]
pub struct LintContext<'a> {
    /// The synthesis instance under analysis.
    pub problem: &'a SynthesisProblem,
    /// The candidate binding, absent for pre-solve analysis.
    pub implementation: Option<&'a Implementation>,
}

/// One analysis pass: inspects a [`LintContext`] and emits diagnostics.
///
/// Passes must be deterministic — same context, same diagnostics in the
/// same order — so text/JSON/SARIF snapshots stay stable.
pub trait LintPass {
    /// Short unique pass name (kebab-case).
    fn name(&self) -> &'static str;
    /// One-line description of what the pass checks.
    fn description(&self) -> &'static str;
    /// Runs the pass, appending findings to `out`.
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}
