//! The design-rule pass: every [`troyhls::Violation`] as a coded
//! diagnostic with a repair suggestion.
//!
//! The pass does **not** re-implement any rule. It calls
//! [`troyhls::validate`] — whose constraints come from the single source
//! of truth, [`troyhls::diversity_constraints`] — and maps each violation
//! through the total function [`diagnostic_for_violation`]. `troyhls
//! validate` and `troyhls lint` therefore cannot disagree on what is a
//! violation; the property tests in this crate pin the mapping to be
//! one-to-one.

use troyhls::{
    diversity_constraints, validate, Implementation, OpCopy, RuleKind, SynthesisProblem, VendorId,
    Violation,
};

use crate::diagnostic::{Code, Diagnostic, FixIt, Location};
use crate::passes::{LintContext, LintPass};

/// Maps every [`Violation`] to a coded diagnostic (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct DesignRulesPass;

impl LintPass for DesignRulesPass {
    fn name(&self) -> &'static str {
        "design-rules"
    }

    fn description(&self) -> &'static str {
        "checks an implementation against every paper constraint (TD001-TD010)"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(imp) = cx.implementation else {
            return;
        };
        for v in validate(cx.problem, imp) {
            out.push(diagnostic_for_violation(cx.problem, imp, &v));
        }
    }
}

/// The vendors `copy` could be bound to without breaking any diversity
/// constraint against the *currently assigned* partners.
///
/// Sorted by vendor index; the copy's current vendor (if any) is excluded,
/// so a non-empty result is always a real alternative.
#[must_use]
pub fn legal_vendors(
    problem: &SynthesisProblem,
    imp: &Implementation,
    copy: OpCopy,
) -> Vec<VendorId> {
    let ip_type = problem.dfg().kind(copy.op).ip_type();
    let current = imp.assignment_of(copy).map(|a| a.vendor);
    let mut banned: Vec<VendorId> = Vec::new();
    for dc in diversity_constraints(problem) {
        let partner = if dc.a == copy {
            dc.b
        } else if dc.b == copy {
            dc.a
        } else {
            continue;
        };
        if let Some(a) = imp.assignment_of(partner) {
            banned.push(a.vendor);
        }
    }
    problem
        .catalog()
        .vendors_for(ip_type)
        .filter(|v| Some(*v) != current && !banned.contains(v))
        .collect()
}

/// Attaches a rebind fix-it for `copy` when a legal alternative exists.
fn with_rebind(
    d: Diagnostic,
    problem: &SynthesisProblem,
    imp: &Implementation,
    copy: OpCopy,
) -> Diagnostic {
    let alts = legal_vendors(problem, imp, copy);
    if alts.is_empty() {
        d
    } else {
        d.with_fixit(FixIt::rebind(copy, alts))
    }
}

/// The stable code assigned to a violation shape.
///
/// Total: every [`Violation`] variant maps to exactly one code, with
/// [`Violation::SameVendor`] split by its [`RuleKind`]. The property tests
/// enforce that this stays a bijection onto the `TD0xx` family.
#[must_use]
pub fn code_for_violation(v: &Violation) -> Code {
    match v {
        Violation::Unassigned(_) => Code::UnassignedCopy,
        Violation::OutsideWindow { .. } => Code::OutsideWindow,
        Violation::DependencyOrder { .. } => Code::DependencyOrder,
        Violation::NoSuchCore(_) => Code::NoSuchCore,
        Violation::SameVendor { rule, .. } => match rule {
            RuleKind::DetectionDuplicate => Code::Rule1Detection,
            RuleKind::DetectionParentChild => Code::Rule2ParentChild,
            RuleKind::DetectionSiblings => Code::Rule2Siblings,
            RuleKind::RecoveryRebind => Code::Rule1Recovery,
            RuleKind::RecoveryRelated => Code::Rule2Related,
        },
        Violation::AreaExceeded { .. } => Code::AreaExceeded,
        // `Violation` is non_exhaustive: a new variant added upstream must
        // be given a code here before it can reach users.
        _ => unreachable!("unmapped violation variant: {v:?}"),
    }
}

/// Converts one validator violation into a located, explained diagnostic
/// with repair suggestions where a legal repair exists.
#[must_use]
pub fn diagnostic_for_violation(
    problem: &SynthesisProblem,
    imp: &Implementation,
    v: &Violation,
) -> Diagnostic {
    let code = code_for_violation(v);
    match v {
        Violation::Unassigned(c) => {
            let d = Diagnostic::new(
                code,
                format!("required copy {c} has no cycle/vendor assignment"),
            )
            .at(Location::copy(*c).of_type(problem.dfg().kind(c.op).ip_type()));
            with_rebind(d, problem, imp, *c)
        }
        Violation::OutsideWindow {
            copy,
            cycle,
            window,
        } => Diagnostic::new(
            code,
            format!(
                "{copy} is scheduled at cycle {cycle}, outside its {} window {}..={}",
                phase_name(*copy),
                window.0,
                window.1
            ),
        )
        .at(Location::copy(*copy).at_cycle(*cycle))
        .with_fixit(FixIt::advice(format!(
            "move {copy} into cycles {}..={}",
            window.0, window.1
        ))),
        Violation::DependencyOrder { parent, child } => {
            let (pc, cc) = (
                imp.assignment_of(*parent).map(|a| a.cycle),
                imp.assignment_of(*child).map(|a| a.cycle),
            );
            let mut d = Diagnostic::new(
                code,
                format!(
                    "{child} consumes {parent} but does not run strictly after it{}",
                    match (pc, cc) {
                        (Some(p), Some(c)) => format!(" (producer at cycle {p}, consumer at {c})"),
                        _ => String::new(),
                    }
                ),
            )
            .at(Location::copy(*child));
            if let (Some(p), Some(c)) = (pc, cc) {
                d = d
                    .at(Location::copy(*child).at_cycle(c))
                    .with_fixit(FixIt::advice(format!(
                        "schedule {child} at cycle {} or later",
                        p + 1
                    )));
            }
            d
        }
        Violation::NoSuchCore(c) => {
            let ip_type = problem.dfg().kind(c.op).ip_type();
            let vendor = imp.assignment_of(*c).map(|a| a.vendor);
            let d = Diagnostic::new(
                code,
                format!(
                    "{c} is bound to {}, which sells no {} core",
                    vendor.map_or_else(|| "an unknown vendor".into(), |v| v.to_string()),
                    ip_type.name()
                ),
            )
            .at({
                let mut loc = Location::copy(*c).of_type(ip_type);
                if let Some(v) = vendor {
                    loc = loc.on_vendor(v);
                }
                loc
            });
            with_rebind(d, problem, imp, *c)
        }
        Violation::SameVendor { a, b, rule } => {
            let vendor = imp.assignment_of(*b).map(|x| x.vendor);
            let d = Diagnostic::new(
                code,
                format!(
                    "{a} and {b} are bound to the same vendor{}, violating {rule}",
                    vendor.map_or_else(String::new, |v| format!(" ({v})")),
                ),
            )
            .at({
                let mut loc = Location::copy(*b);
                if let Some(x) = imp.assignment_of(*b) {
                    loc = loc.at_cycle(x.cycle).on_vendor(x.vendor);
                }
                loc
            });
            // Prefer repairing the second copy; fall back to the first.
            let alts_b = legal_vendors(problem, imp, *b);
            if alts_b.is_empty() {
                with_rebind(d, problem, imp, *a)
            } else {
                d.with_fixit(FixIt::rebind(*b, alts_b))
            }
        }
        Violation::AreaExceeded { used, limit } => Diagnostic::new(
            code,
            format!(
                "instantiated area {used} exceeds the limit {limit} by {}",
                used - limit
            ),
        )
        .with_fixit(FixIt::advice(
            "raise the area limit or relax latency so instances can be shared across cycles",
        )),
        _ => unreachable!("unmapped violation variant: {v:?}"),
    }
}

/// Which phase a copy's window belongs to, for messages.
fn phase_name(copy: OpCopy) -> &'static str {
    match copy.role {
        troyhls::Role::Nc | troyhls::Role::Rc => "detection",
        troyhls::Role::Recovery => "recovery",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::{benchmarks, NodeId};
    use troyhls::{Assignment, Catalog, Mode, Role};

    fn problem() -> SynthesisProblem {
        SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .area_limit(50_000)
            .build()
            .unwrap()
    }

    fn a(c: usize, v: usize) -> Assignment {
        Assignment {
            cycle: c,
            vendor: VendorId::new(v),
        }
    }

    /// The valid hand binding from `troyhls`'s validator tests.
    fn valid_detection() -> Implementation {
        let mut imp = Implementation::new(5);
        imp.assign(NodeId::new(0), Role::Nc, a(1, 0));
        imp.assign(NodeId::new(1), Role::Nc, a(1, 1));
        imp.assign(NodeId::new(2), Role::Nc, a(1, 0));
        imp.assign(NodeId::new(3), Role::Nc, a(2, 2));
        imp.assign(NodeId::new(4), Role::Nc, a(3, 1));
        imp.assign(NodeId::new(0), Role::Rc, a(2, 1));
        imp.assign(NodeId::new(1), Role::Rc, a(2, 2));
        imp.assign(NodeId::new(2), Role::Rc, a(2, 1));
        imp.assign(NodeId::new(3), Role::Rc, a(3, 3));
        imp.assign(NodeId::new(4), Role::Rc, a(4, 0));
        imp
    }

    #[test]
    fn clean_binding_yields_no_diagnostics() {
        let p = problem();
        let imp = valid_detection();
        let mut out = Vec::new();
        DesignRulesPass.run(
            &LintContext {
                problem: &p,
                implementation: Some(&imp),
            },
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn rule1_violation_gets_td005_with_rebind_fixit() {
        let p = problem();
        let mut imp = valid_detection();
        // o1 RC onto o1 NC's vendor (Ven1).
        imp.assign(NodeId::new(0), Role::Rc, a(2, 0));
        let mut out = Vec::new();
        DesignRulesPass.run(
            &LintContext {
                problem: &p,
                implementation: Some(&imp),
            },
            &mut out,
        );
        let d = out
            .iter()
            .find(|d| d.code == Code::Rule1Detection)
            .expect("TD005 emitted");
        assert_eq!(d.location.copy, Some(OpCopy::new(NodeId::new(0), Role::Rc)));
        assert_eq!(d.location.vendor, Some(VendorId::new(0)));
        let fix = d.fixits.first().expect("fix-it present");
        assert!(!fix.alternatives.is_empty());
        // Suggested vendors must actually repair the violation: none of
        // them may collide with any assigned diversity partner of o1[RC].
        assert!(!fix.alternatives.contains(&VendorId::new(0)));
    }

    #[test]
    fn every_suggested_vendor_is_legal() {
        let p = problem();
        let mut imp = valid_detection();
        imp.assign(NodeId::new(0), Role::Rc, a(2, 0));
        let copy = OpCopy::new(NodeId::new(0), Role::Rc);
        for alt in legal_vendors(&p, &imp, copy) {
            let mut trial = imp.clone();
            trial.assign(copy.op, copy.role, a(2, alt.index()));
            let still: Vec<_> = validate(&p, &trial)
                .into_iter()
                .filter(|v| matches!(v, Violation::SameVendor { b, .. } if *b == copy))
                .collect();
            assert!(still.is_empty(), "vendor {alt} does not repair: {still:?}");
        }
    }

    #[test]
    fn unassigned_copy_gets_td001() {
        let p = problem();
        let mut imp = valid_detection();
        imp.unassign(NodeId::new(2), Role::Rc);
        let vs = validate(&p, &imp);
        let d = diagnostic_for_violation(&p, &imp, &vs[0]);
        assert_eq!(d.code, Code::UnassignedCopy);
        assert!(d.message.contains("o3[RC]"));
    }
}
