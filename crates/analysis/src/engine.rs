//! The analyzer: runs registered passes, filters and orders the findings,
//! and summarizes the outcome.

use std::collections::BTreeSet;

use troyhls::{Implementation, SynthesisProblem};

use crate::diagnostic::{Code, Diagnostic, Severity};
use crate::passes::{
    DesignRulesPass, FeasibilityPass, LintContext, LintPass, QualityPass, SecurityPass,
};

/// Filtering and gating options for one analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Drop diagnostics below this severity.
    pub min_severity: Severity,
    /// Drop diagnostics with these codes entirely.
    pub suppressed: BTreeSet<Code>,
    /// Treat warnings as blocking in [`AnalysisReport::is_blocking`].
    pub deny_warnings: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            min_severity: Severity::Note,
            suppressed: BTreeSet::new(),
            deny_warnings: false,
        }
    }
}

impl AnalysisOptions {
    /// Suppresses one code (chainable).
    #[must_use]
    pub fn allow(mut self, code: Code) -> Self {
        self.suppressed.insert(code);
        self
    }

    /// Sets the minimum reported severity (chainable).
    #[must_use]
    pub fn min_severity(mut self, severity: Severity) -> Self {
        self.min_severity = severity;
        self
    }

    /// Makes warnings blocking (chainable).
    #[must_use]
    pub fn deny_warnings(mut self) -> Self {
        self.deny_warnings = true;
        self
    }
}

/// A pass pipeline over problems and implementations.
pub struct Analyzer {
    passes: Vec<Box<dyn LintPass>>,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer {
            passes: vec![
                Box::new(FeasibilityPass),
                Box::new(DesignRulesPass),
                Box::new(QualityPass),
            ],
        }
    }
}

impl Analyzer {
    /// An analyzer with all built-in passes registered.
    #[must_use]
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// An analyzer with no passes; register your own.
    #[must_use]
    pub fn empty() -> Self {
        Analyzer { passes: Vec::new() }
    }

    /// The default pipeline plus the [`SecurityPass`] prover — what
    /// `troy lint --prove` runs. The security pass is opt-in because it
    /// duplicates every rule finding semantically: default reports stay
    /// one-finding-per-cause, proving reports cross-check on purpose.
    #[must_use]
    pub fn proving() -> Self {
        let mut a = Analyzer::default();
        a.register(Box::new(SecurityPass));
        a
    }

    /// Registers an additional pass, run after the existing ones.
    pub fn register(&mut self, pass: Box<dyn LintPass>) {
        self.passes.push(pass);
    }

    /// Names of the registered passes, in run order.
    #[must_use]
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass and assembles a filtered, deterministically ordered
    /// report.
    #[must_use]
    pub fn analyze(
        &self,
        problem: &SynthesisProblem,
        implementation: Option<&Implementation>,
        options: &AnalysisOptions,
    ) -> AnalysisReport {
        let cx = LintContext {
            problem,
            implementation,
        };
        let mut diagnostics = Vec::new();
        for pass in &self.passes {
            pass.run(&cx, &mut diagnostics);
        }
        diagnostics.retain(|d| {
            d.severity >= options.min_severity && !options.suppressed.contains(&d.code)
        });
        diagnostics.sort_by_key(Diagnostic::sort_key);
        AnalysisReport {
            design: problem.dfg().name().to_string(),
            mode: problem.mode().to_string(),
            deny_warnings: options.deny_warnings,
            diagnostics,
        }
    }
}

/// The outcome of one analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Name of the analyzed DFG.
    pub design: String,
    /// The problem's protection mode, as displayed.
    pub mode: String,
    /// Whether warnings count as blocking.
    pub deny_warnings: bool,
    /// The findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Number of diagnostics at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when nothing was reported.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when the run must fail: any error, or any warning under
    /// `--deny warnings`.
    #[must_use]
    pub fn is_blocking(&self) -> bool {
        self.count(Severity::Error) > 0 || (self.deny_warnings && self.count(Severity::Warning) > 0)
    }

    /// The process exit code the CLI maps this report to: `0` clean or
    /// non-blocking, `1` blocking (hard usage/input errors use `2`).
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        i32::from(self.is_blocking())
    }

    /// One-line summary, e.g. `"2 errors, 1 warning, 0 notes"`.
    #[must_use]
    pub fn summary(&self) -> String {
        let plural = |n: usize, s: &str| format!("{n} {s}{}", if n == 1 { "" } else { "s" });
        format!(
            "{}, {}, {}",
            plural(self.count(Severity::Error), "error"),
            plural(self.count(Severity::Warning), "warning"),
            plural(self.count(Severity::Note), "note")
        )
    }
}

/// Runs the default analyzer with default options.
///
/// The one-call entry point: `lint(problem, Some(&imp))` reports exactly
/// the violations [`troyhls::validate`] reports (as `TD0xx` errors) plus
/// the feasibility and quality findings.
#[must_use]
pub fn lint(problem: &SynthesisProblem, implementation: Option<&Implementation>) -> AnalysisReport {
    Analyzer::new().analyze(problem, implementation, &AnalysisOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::benchmarks;
    use troyhls::{Catalog, Mode};

    fn problem() -> SynthesisProblem {
        SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .area_limit(50_000)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_implementation_reports_blocking_errors() {
        let p = problem();
        let imp = Implementation::new(p.dfg().len());
        let report = lint(&p, Some(&imp));
        assert!(report.is_blocking());
        assert_eq!(report.exit_code(), 1);
        assert_eq!(report.count(Severity::Error), 10); // one per missing copy
    }

    #[test]
    fn severity_filter_and_suppression_apply() {
        let p = problem();
        let imp = Implementation::new(p.dfg().len());
        let all = Analyzer::new().analyze(&p, Some(&imp), &AnalysisOptions::default());
        let errors_only = Analyzer::new().analyze(
            &p,
            Some(&imp),
            &AnalysisOptions::default().min_severity(Severity::Error),
        );
        assert!(errors_only.diagnostics.len() <= all.diagnostics.len());
        assert!(errors_only
            .diagnostics
            .iter()
            .all(|d| d.severity == Severity::Error));
        let none = Analyzer::new().analyze(
            &p,
            Some(&imp),
            &AnalysisOptions::default().allow(Code::UnassignedCopy),
        );
        assert!(none
            .diagnostics
            .iter()
            .all(|d| d.code != Code::UnassignedCopy));
    }

    #[test]
    fn deny_warnings_gates_warning_only_reports() {
        let report = AnalysisReport {
            design: "x".into(),
            mode: "detection-only".into(),
            deny_warnings: false,
            diagnostics: vec![Diagnostic::new(Code::NearCollusion, "w")],
        };
        assert!(!report.is_blocking());
        let denied = AnalysisReport {
            deny_warnings: true,
            ..report
        };
        assert!(denied.is_blocking());
        assert_eq!(denied.exit_code(), 1);
    }

    #[test]
    fn report_orders_most_severe_first() {
        let p = problem();
        let imp = Implementation::new(p.dfg().len());
        let report = lint(&p, Some(&imp));
        let severities: Vec<_> = report.diagnostics.iter().map(|d| d.severity).collect();
        let mut sorted = severities.clone();
        sorted.sort_by_key(|s| std::cmp::Reverse(*s));
        assert_eq!(severities, sorted);
    }

    #[test]
    fn summary_pluralizes() {
        let p = problem();
        let report = lint(&p, None);
        assert!(
            report.summary().contains("0 errors"),
            "{}",
            report.summary()
        );
    }
}
