//! Rendering reports as human text, machine JSON and SARIF 2.1.0.
//!
//! The JSON is written by hand (no serialization dependency): the shapes
//! are small and fixed, and the snapshot tests pin them byte-for-byte.

use std::fmt::Write as _;

use crate::diagnostic::{Code, Diagnostic, Severity};
use crate::engine::AnalysisReport;

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Quotes a string as a JSON literal.
fn q(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

impl AnalysisReport {
    /// Plain-text rendering: one block per diagnostic plus a summary line.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "{}: {} ({} mode): {}",
            if self.is_blocking() { "FAIL" } else { "ok" },
            self.design,
            self.mode,
            self.summary()
        );
        out
    }

    /// Structured JSON rendering (the tool's own stable schema).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"tool\": {},", q("troy-analysis"));
        let _ = writeln!(out, "  \"version\": {},", q(env!("CARGO_PKG_VERSION")));
        let _ = writeln!(out, "  \"design\": {},", q(&self.design));
        let _ = writeln!(out, "  \"mode\": {},", q(&self.mode));
        let _ = writeln!(
            out,
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"notes\": {}, \"blocking\": {}}},",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            self.is_blocking()
        );
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&diagnostic_json(d, "    "));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// SARIF 2.1.0 rendering.
    ///
    /// Locations are logical (op copies and nodes inside the design), not
    /// physical files; each used rule is declared once in the driver's
    /// rule registry with its paper reference in the help text.
    #[must_use]
    pub fn to_sarif(&self) -> String {
        let used = self.used_codes();
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"$schema\": {},",
            q("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
        );
        let _ = writeln!(out, "  \"version\": {},", q("2.1.0"));
        out.push_str("  \"runs\": [\n    {\n");
        out.push_str("      \"tool\": {\n        \"driver\": {\n");
        let _ = writeln!(out, "          \"name\": {},", q("troy-analysis"));
        let _ = writeln!(
            out,
            "          \"version\": {},",
            q(env!("CARGO_PKG_VERSION"))
        );
        let _ = writeln!(
            out,
            "          \"informationUri\": {},",
            q("https://example.invalid/troyhls")
        );
        out.push_str("          \"rules\": [");
        for (i, code) in used.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&rule_json(*code, "            "));
        }
        if !used.is_empty() {
            out.push_str("\n          ");
        }
        out.push_str("]\n        }\n      },\n");
        out.push_str("      \"results\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            let rule_index = used.iter().position(|c| *c == d.code).unwrap_or(0);
            out.push_str(&result_json(d, rule_index, &self.design, "        "));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }\n  ]\n}\n");
        out
    }

    /// The distinct codes present in the report, in code order.
    fn used_codes(&self) -> Vec<Code> {
        let mut used: Vec<Code> = Vec::new();
        for d in &self.diagnostics {
            if !used.contains(&d.code) {
                used.push(d.code);
            }
        }
        used.sort();
        used
    }
}

/// One diagnostic as a JSON object (tool schema).
fn diagnostic_json(d: &Diagnostic, indent: &str) -> String {
    let mut out = format!("{indent}{{\n");
    let _ = writeln!(out, "{indent}  \"code\": {},", q(d.code.as_str()));
    let _ = writeln!(out, "{indent}  \"name\": {},", q(d.code.name()));
    let _ = writeln!(out, "{indent}  \"severity\": {},", q(d.severity.as_str()));
    let _ = writeln!(out, "{indent}  \"message\": {},", q(&d.message));
    if let Some(eq) = d.code.paper_ref() {
        let _ = writeln!(out, "{indent}  \"paperRef\": {},", q(eq));
    }
    if !d.location.is_empty() {
        let mut fields: Vec<String> = Vec::new();
        if let Some(c) = d.location.copy {
            fields.push(format!("\"copy\": {}", q(&c.to_string())));
        } else if let Some(n) = d.location.node {
            fields.push(format!("\"node\": {}", q(&n.to_string())));
        }
        if let Some(cy) = d.location.cycle {
            fields.push(format!("\"cycle\": {cy}"));
        }
        if let Some(v) = d.location.vendor {
            fields.push(format!("\"vendor\": {}", q(&v.to_string())));
        }
        if let Some(t) = d.location.ip_type {
            fields.push(format!("\"ipType\": {}", q(t.name())));
        }
        let _ = writeln!(out, "{indent}  \"location\": {{{}}},", fields.join(", "));
    }
    let _ = write!(out, "{indent}  \"fixits\": [");
    for (i, f) in d.fixits.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let alts = f
            .alternatives
            .iter()
            .map(|v| q(&v.to_string()))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "{{\"description\": {}, \"alternatives\": [{alts}]}}",
            q(&f.description)
        );
    }
    out.push_str("]\n");
    let _ = write!(out, "{indent}}}");
    out
}

/// One rule declaration for the SARIF driver registry.
fn rule_json(code: Code, indent: &str) -> String {
    let help = match code.paper_ref() {
        Some(eq) => format!("{} (paper {eq})", code.summary()),
        None => code.summary().to_string(),
    };
    let mut out = format!("{indent}{{\n");
    let _ = writeln!(out, "{indent}  \"id\": {},", q(code.as_str()));
    let _ = writeln!(out, "{indent}  \"name\": {},", q(code.name()));
    let _ = writeln!(
        out,
        "{indent}  \"shortDescription\": {{\"text\": {}}},",
        q(code.summary())
    );
    let _ = writeln!(out, "{indent}  \"help\": {{\"text\": {}}},", q(&help));
    let _ = writeln!(
        out,
        "{indent}  \"defaultConfiguration\": {{\"level\": {}}}",
        q(sarif_level(code.severity()))
    );
    let _ = write!(out, "{indent}}}");
    out
}

/// One finding as a SARIF result object.
fn result_json(d: &Diagnostic, rule_index: usize, design: &str, indent: &str) -> String {
    // SARIF fixes require physical artifacts; fold fix-it text into the
    // message so suggestions survive in this format too.
    let mut text = d.message.clone();
    for f in &d.fixits {
        let _ = write!(text, "; help: {f}");
    }
    let location = d.location.logical_name();
    let mut out = format!("{indent}{{\n");
    let _ = writeln!(out, "{indent}  \"ruleId\": {},", q(d.code.as_str()));
    let _ = writeln!(out, "{indent}  \"ruleIndex\": {rule_index},");
    let _ = writeln!(out, "{indent}  \"level\": {},", q(sarif_level(d.severity)));
    let comma = if location.is_some() { "," } else { "" };
    let _ = writeln!(
        out,
        "{indent}  \"message\": {{\"text\": {}}}{comma}",
        q(&text)
    );
    if let Some(name) = location {
        let fq = format!("{design}::{name}");
        let _ = writeln!(out, "{indent}  \"locations\": [");
        let _ = writeln!(out, "{indent}    {{\"logicalLocations\": [{{");
        let _ = writeln!(out, "{indent}      \"name\": {},", q(&name));
        let _ = writeln!(out, "{indent}      \"fullyQualifiedName\": {},", q(&fq));
        let _ = writeln!(out, "{indent}      \"kind\": {}", q("element"));
        let _ = writeln!(out, "{indent}    }}]}}");
        let _ = writeln!(out, "{indent}  ]");
    }
    let _ = write!(out, "{indent}}}");
    out
}

/// SARIF `level` values for our severities.
fn sarif_level(s: Severity) -> &'static str {
    match s {
        Severity::Note => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::lint;
    use troy_dfg::benchmarks;
    use troyhls::{Catalog, Implementation, Mode, SynthesisProblem};

    fn report_with_errors() -> AnalysisReport {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .build()
            .unwrap();
        let imp = Implementation::new(p.dfg().len());
        lint(&p, Some(&imp))
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn text_render_carries_codes_and_summary() {
        let r = report_with_errors();
        let text = r.to_text();
        assert!(text.contains("error[TD001]"), "{text}");
        assert!(text.contains("FAIL: polynom"), "{text}");
    }

    #[test]
    fn json_render_is_balanced_and_typed() {
        let r = report_with_errors();
        let json = r.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.contains("\"tool\": \"troy-analysis\""));
        assert!(json.contains("\"code\": \"TD001\""));
        assert!(json.contains("\"paperRef\": \"eq. (3)\""));
    }

    #[test]
    fn sarif_render_has_required_shape() {
        let r = report_with_errors();
        let sarif = r.to_sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("sarif-schema-2.1.0.json"));
        assert!(sarif.contains("\"ruleId\": \"TD001\""));
        assert!(sarif.contains("\"logicalLocations\""));
        assert_eq!(
            sarif.matches('{').count(),
            sarif.matches('}').count(),
            "{sarif}"
        );
        // Every result's ruleIndex must point at its own rule.
        assert!(sarif.contains("\"ruleIndex\": 0"));
    }

    #[test]
    fn clean_report_renders_ok_line_and_empty_arrays() {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(5)
            .build()
            .unwrap();
        let r = lint(&p, None);
        if r.is_clean() {
            assert!(r.to_text().starts_with("ok:"), "{}", r.to_text());
            assert!(r.to_json().contains("\"diagnostics\": []"));
            assert!(r.to_sarif().contains("\"results\": []"));
        }
    }
}
