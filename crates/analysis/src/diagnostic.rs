//! The diagnostic model: stable codes, severities, locations and fix-its.

use std::fmt;

use troy_dfg::{IpTypeId, NodeId};
use troyhls::{OpCopy, VendorId};

/// How serious a diagnostic is.
///
/// Ordered: `Note < Warning < Error`, so severity filtering is a simple
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational observation; never affects the exit status.
    Note,
    /// Suspicious but legal; fails the run only under `--deny warnings`.
    Warning,
    /// A constraint of the paper's formulation is violated or provably
    /// unsatisfiable; the design is not acceptable.
    Error,
}

impl Severity {
    /// Lowercase name, as printed in every output format.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a lowercase severity name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes.
///
/// Four families:
///
/// - `TD0xx` — **design-rule** findings: one code per [`troyhls::Violation`]
///   shape (the five vendor-diversity rules get one code each);
/// - `TP0xx` — **problem/feasibility** findings computed *before* any
///   solver runs;
/// - `TQ0xx` — **quality** lints on an otherwise complete binding;
/// - `TR0xx` — **resilience** findings: how a supervised synthesis run
///   degraded (backend demotions, constraint relaxation, transient
///   retries) on its way to the reported design;
/// - `TS0xx` — **serving** findings: how the synthesis daemon's
///   admission control, circuit breakers and deadline enforcement shaped
///   the response to one request.
///
/// Codes are append-only: a published code never changes meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// TD001: a required op copy has no assignment.
    UnassignedCopy,
    /// TD002: a copy is scheduled outside its phase window.
    OutsideWindow,
    /// TD003: a data dependency is not respected within a computation.
    DependencyOrder,
    /// TD004: a copy is bound to a vendor that does not sell its IP type.
    NoSuchCore,
    /// TD005: NC and RC copies of one op share a vendor (Rule 1, detection).
    Rule1Detection,
    /// TD006: parent and child in one computation share a vendor (Rule 2).
    Rule2ParentChild,
    /// TD007: two parents of the same child share a vendor (Rule 2).
    Rule2Siblings,
    /// TD008: a recovery copy reuses one of its own detection vendors
    /// (Rule 1, recovery).
    Rule1Recovery,
    /// TD009: a recovery copy reuses a detection vendor of a
    /// closely-related op (Rule 2, recovery).
    Rule2Related,
    /// TD010: total instantiated area exceeds the limit.
    AreaExceeded,
    /// TP001: the catalog licenses fewer vendors for an IP type than the
    /// mode's provable lower bound.
    InsufficientVendors,
    /// TP002: operations with zero scheduling mobility — the latency equals
    /// the critical path, so re-timing cannot repair vendor conflicts.
    ZeroMobility,
    /// TP003: an area lower bound derived from forced concurrency already
    /// exceeds the area limit.
    AreaInfeasible,
    /// TP004: a cataloged vendor sells no IP type the DFG uses.
    UnusableVendor,
    /// TP005: an IP type has exactly as many vendors as the mode requires —
    /// zero diversity slack.
    TightVendorPool,
    /// TP006: a phase latency is below the DFG's critical path.
    InfeasibleLatency,
    /// TQ001: a license serves a single copy that could legally move to an
    /// already-licensed vendor — its fee is avoidable.
    RedundantLicense,
    /// TQ002: two same-role copies two dependency hops apart share a vendor
    /// — one edge short of a Rule 2 pair.
    NearCollusion,
    /// TQ003: register pressure peaks with most copies live at once.
    RegisterPressure,
    /// TR001: the reported design came from a fallback back end, not the
    /// primary rung of the degradation ladder.
    DegradedBackend,
    /// TR002: the design satisfies a latency-relaxed variant of the
    /// problem, not the constraints as originally stated.
    ConstraintRelaxed,
    /// TR003: a back end faulted (panicked or returned an invalid
    /// design) and was demoted for the rest of the run.
    BackendFault,
    /// TR004: a transient fault (spurious cancellation) was absorbed by
    /// retrying with backoff.
    TransientRetried,
    /// TS001: the service shed the request at admission because its
    /// queue and in-flight budget were full.
    ServiceOverloaded,
    /// TS002: a solver back end was skipped because its circuit breaker
    /// was open when the request arrived.
    CircuitOpen,
    /// TS003: the request's deadline expired before any back end
    /// produced a design.
    RequestDeadlineExhausted,
    /// TQ004: a single vendor controls both the NC and RC copies of an
    /// output cone — it can corrupt the checked output without the
    /// comparator noticing (semantic lift of Rule 1 to cones).
    ConeSingleVendor,
    /// TQ005: one vendor holds two directly-interacting positions (an
    /// edge or a sibling pair) inside a single computation copy of a
    /// cone — a covert trigger channel (semantic lift of Rule 2).
    ConeTriggerChannel,
    /// TQ006: two vendors jointly control every NC and RC position of an
    /// output cone — that colluding pair defeats the comparator for this
    /// output.
    ConePairCollapse,
    /// TQ007: a vendor inside an output cone's detection copies also
    /// appears in the cone's recovery copy — recovery of this output is
    /// not independent of the vendors it recovers from.
    RecoveryConeExposure,
    /// TS004: the response carries no security certificate — the design
    /// was produced on a degraded path and the diversity guarantee was
    /// not machine-checked.
    UncertifiedResponse,
    /// TS005: the request was served by a backup worker after the shard
    /// owner selected by the cluster's consistent-hash ring failed
    /// mid-request or was breaker-demoted at dispatch; the result is
    /// still byte-equivalent to the owner's answer for the same key.
    WorkerFailover,
    /// TS006: the cluster shed the request because no live worker could
    /// accept it — every worker was dead, draining or breaker-demoted;
    /// the rejection carries a `retry_after_ms` hint.
    ClusterUnavailable,
    /// TS007: the request was served by a worker that the supervisor has
    /// respawned at least once — the slot died and came back under a new
    /// generation; the answer is unaffected, but the serving daemon is
    /// not the one that booted with the cluster.
    WorkerRespawned,
    /// TS008: the request was recovered from the router's dispatch
    /// journal after a restart — it had been accepted but had no
    /// recorded terminal outcome, so the router re-dispatched it.
    JournalReplayed,
}

/// Total number of published codes.
pub const NUM_CODES: usize = 35;

impl Code {
    /// Every published code, in code order.
    #[must_use]
    pub fn all() -> [Code; NUM_CODES] {
        [
            Code::UnassignedCopy,
            Code::OutsideWindow,
            Code::DependencyOrder,
            Code::NoSuchCore,
            Code::Rule1Detection,
            Code::Rule2ParentChild,
            Code::Rule2Siblings,
            Code::Rule1Recovery,
            Code::Rule2Related,
            Code::AreaExceeded,
            Code::InsufficientVendors,
            Code::ZeroMobility,
            Code::AreaInfeasible,
            Code::UnusableVendor,
            Code::TightVendorPool,
            Code::InfeasibleLatency,
            Code::RedundantLicense,
            Code::NearCollusion,
            Code::RegisterPressure,
            Code::DegradedBackend,
            Code::ConstraintRelaxed,
            Code::BackendFault,
            Code::TransientRetried,
            Code::ServiceOverloaded,
            Code::CircuitOpen,
            Code::RequestDeadlineExhausted,
            Code::ConeSingleVendor,
            Code::ConeTriggerChannel,
            Code::ConePairCollapse,
            Code::RecoveryConeExposure,
            Code::UncertifiedResponse,
            Code::WorkerFailover,
            Code::ClusterUnavailable,
            Code::WorkerRespawned,
            Code::JournalReplayed,
        ]
    }

    /// The stable code string, e.g. `"TD005"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnassignedCopy => "TD001",
            Code::OutsideWindow => "TD002",
            Code::DependencyOrder => "TD003",
            Code::NoSuchCore => "TD004",
            Code::Rule1Detection => "TD005",
            Code::Rule2ParentChild => "TD006",
            Code::Rule2Siblings => "TD007",
            Code::Rule1Recovery => "TD008",
            Code::Rule2Related => "TD009",
            Code::AreaExceeded => "TD010",
            Code::InsufficientVendors => "TP001",
            Code::ZeroMobility => "TP002",
            Code::AreaInfeasible => "TP003",
            Code::UnusableVendor => "TP004",
            Code::TightVendorPool => "TP005",
            Code::InfeasibleLatency => "TP006",
            Code::RedundantLicense => "TQ001",
            Code::NearCollusion => "TQ002",
            Code::RegisterPressure => "TQ003",
            Code::DegradedBackend => "TR001",
            Code::ConstraintRelaxed => "TR002",
            Code::BackendFault => "TR003",
            Code::TransientRetried => "TR004",
            Code::ServiceOverloaded => "TS001",
            Code::CircuitOpen => "TS002",
            Code::RequestDeadlineExhausted => "TS003",
            Code::ConeSingleVendor => "TQ004",
            Code::ConeTriggerChannel => "TQ005",
            Code::ConePairCollapse => "TQ006",
            Code::RecoveryConeExposure => "TQ007",
            Code::UncertifiedResponse => "TS004",
            Code::WorkerFailover => "TS005",
            Code::ClusterUnavailable => "TS006",
            Code::WorkerRespawned => "TS007",
            Code::JournalReplayed => "TS008",
        }
    }

    /// Kebab-case lint name, e.g. `"rule1-detection"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Code::UnassignedCopy => "unassigned-copy",
            Code::OutsideWindow => "outside-window",
            Code::DependencyOrder => "dependency-order",
            Code::NoSuchCore => "no-such-core",
            Code::Rule1Detection => "rule1-detection",
            Code::Rule2ParentChild => "rule2-parent-child",
            Code::Rule2Siblings => "rule2-siblings",
            Code::Rule1Recovery => "rule1-recovery",
            Code::Rule2Related => "rule2-related",
            Code::AreaExceeded => "area-exceeded",
            Code::InsufficientVendors => "insufficient-vendors",
            Code::ZeroMobility => "zero-mobility",
            Code::AreaInfeasible => "area-infeasible",
            Code::UnusableVendor => "unusable-vendor",
            Code::TightVendorPool => "tight-vendor-pool",
            Code::InfeasibleLatency => "infeasible-latency",
            Code::RedundantLicense => "redundant-license",
            Code::NearCollusion => "near-collusion",
            Code::RegisterPressure => "register-pressure",
            Code::DegradedBackend => "degraded-backend",
            Code::ConstraintRelaxed => "constraint-relaxed",
            Code::BackendFault => "backend-fault",
            Code::TransientRetried => "transient-retried",
            Code::ServiceOverloaded => "service-overloaded",
            Code::CircuitOpen => "circuit-open",
            Code::RequestDeadlineExhausted => "request-deadline-exhausted",
            Code::ConeSingleVendor => "cone-single-vendor",
            Code::ConeTriggerChannel => "cone-trigger-channel",
            Code::ConePairCollapse => "cone-pair-collapse",
            Code::RecoveryConeExposure => "recovery-cone-exposure",
            Code::UncertifiedResponse => "uncertified-response",
            Code::WorkerFailover => "worker-failover",
            Code::ClusterUnavailable => "cluster-unavailable",
            Code::WorkerRespawned => "worker-respawned",
            Code::JournalReplayed => "journal-replayed",
        }
    }

    /// One-line description shown in rule registries (SARIF, README).
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Code::UnassignedCopy => "a required operation copy has no assignment",
            Code::OutsideWindow => "a copy is scheduled outside its phase window",
            Code::DependencyOrder => "a data dependency is not respected within a computation",
            Code::NoSuchCore => "a copy is bound to a vendor that does not sell its IP type",
            Code::Rule1Detection => "NC and RC copies of one operation share a vendor",
            Code::Rule2ParentChild => {
                "a parent and its child share a vendor within one computation"
            }
            Code::Rule2Siblings => "two parents of the same child share a vendor",
            Code::Rule1Recovery => "a recovery copy reuses one of its own detection vendors",
            Code::Rule2Related => {
                "a recovery copy reuses a detection vendor of a closely-related operation"
            }
            Code::AreaExceeded => "total instantiated area exceeds the area limit",
            Code::InsufficientVendors => {
                "the catalog licenses fewer vendors for an IP type than the mode provably needs"
            }
            Code::ZeroMobility => {
                "operations have zero scheduling mobility: the latency equals the critical path"
            }
            Code::AreaInfeasible => {
                "a concurrency-derived area lower bound already exceeds the area limit"
            }
            Code::UnusableVendor => "a cataloged vendor sells no IP type the design uses",
            Code::TightVendorPool => {
                "an IP type has exactly the minimum vendor count: zero diversity slack"
            }
            Code::InfeasibleLatency => "a phase latency is below the DFG's critical path",
            Code::RedundantLicense => {
                "a license serves a single copy that could legally use an already-licensed vendor"
            }
            Code::NearCollusion => "same-role copies two dependency hops apart share a vendor",
            Code::RegisterPressure => "register pressure peaks with most copies live at once",
            Code::DegradedBackend => {
                "the design came from a fallback back end, not the primary solver"
            }
            Code::ConstraintRelaxed => {
                "the design satisfies latency-relaxed constraints, not the original ones"
            }
            Code::BackendFault => "a back end faulted during synthesis and was demoted",
            Code::TransientRetried => "a transient fault was absorbed by retrying with backoff",
            Code::ServiceOverloaded => {
                "the request was shed at admission: queue and in-flight budget full"
            }
            Code::CircuitOpen => "a back end was skipped because its circuit breaker was open",
            Code::RequestDeadlineExhausted => {
                "the request's deadline expired before any back end produced a design"
            }
            Code::ConeSingleVendor => "one vendor controls both detection copies of an output cone",
            Code::ConeTriggerChannel => {
                "one vendor holds two directly-interacting positions in one computation copy"
            }
            Code::ConePairCollapse => {
                "two vendors jointly control every detection position of an output cone"
            }
            Code::RecoveryConeExposure => {
                "a detection vendor of an output cone reappears in the cone's recovery copy"
            }
            Code::UncertifiedResponse => {
                "the response carries no machine-checked security certificate"
            }
            Code::WorkerFailover => {
                "the request was re-dispatched to a backup worker after its shard owner failed"
            }
            Code::ClusterUnavailable => {
                "the cluster shed the request: no live worker could accept it"
            }
            Code::WorkerRespawned => {
                "the serving worker was respawned by the supervisor under a new generation"
            }
            Code::JournalReplayed => {
                "the request was re-dispatched from the dispatch journal after a router restart"
            }
        }
    }

    /// Which equation(s) of the paper the finding traces to, if any.
    #[must_use]
    pub fn paper_ref(self) -> Option<&'static str> {
        match self {
            Code::UnassignedCopy => Some("eq. (3)"),
            Code::OutsideWindow => Some("eqs. (14)-(15)"),
            Code::DependencyOrder => Some("eq. (4)"),
            Code::NoSuchCore => Some("eqs. (11)-(12)"),
            Code::Rule1Detection => Some("eq. (5)"),
            Code::Rule2ParentChild => Some("eq. (6)"),
            Code::Rule2Siblings => Some("eq. (7)"),
            Code::Rule1Recovery => Some("eqs. (8)-(9)"),
            Code::Rule2Related => Some("eq. (10)"),
            Code::AreaExceeded => Some("eq. (13)"),
            Code::InsufficientVendors => Some("eqs. (5), (8)-(9)"),
            Code::ZeroMobility => Some("eqs. (14)-(15)"),
            Code::AreaInfeasible => Some("eqs. (13), (16)"),
            Code::UnusableVendor => None,
            Code::TightVendorPool => Some("eqs. (5), (8)-(9)"),
            Code::InfeasibleLatency => Some("eqs. (14)-(15)"),
            Code::RedundantLicense => Some("eqs. (11)-(12)"),
            Code::NearCollusion => Some("eqs. (6)-(7)"),
            Code::RegisterPressure => None,
            Code::ConeSingleVendor => Some("eq. (5)"),
            Code::ConeTriggerChannel => Some("eqs. (6)-(7)"),
            Code::ConePairCollapse => Some("eq. (5)"),
            Code::RecoveryConeExposure => Some("eqs. (8)-(10)"),
            Code::UncertifiedResponse => None,
            Code::DegradedBackend
            | Code::ConstraintRelaxed
            | Code::BackendFault
            | Code::TransientRetried
            | Code::ServiceOverloaded
            | Code::CircuitOpen
            | Code::RequestDeadlineExhausted
            | Code::WorkerFailover
            | Code::ClusterUnavailable
            | Code::WorkerRespawned
            | Code::JournalReplayed => None,
        }
    }

    /// The severity this code is reported at.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Code::UnassignedCopy
            | Code::OutsideWindow
            | Code::DependencyOrder
            | Code::NoSuchCore
            | Code::Rule1Detection
            | Code::Rule2ParentChild
            | Code::Rule2Siblings
            | Code::Rule1Recovery
            | Code::Rule2Related
            | Code::AreaExceeded
            | Code::InsufficientVendors
            | Code::AreaInfeasible
            | Code::InfeasibleLatency
            | Code::ConeSingleVendor
            | Code::ConeTriggerChannel => Severity::Error,
            Code::UnusableVendor
            | Code::ConePairCollapse
            | Code::UncertifiedResponse
            | Code::RedundantLicense
            | Code::NearCollusion
            | Code::DegradedBackend
            | Code::ConstraintRelaxed
            | Code::BackendFault
            | Code::ServiceOverloaded
            | Code::CircuitOpen
            | Code::RequestDeadlineExhausted
            | Code::WorkerFailover
            | Code::ClusterUnavailable => Severity::Warning,
            Code::ZeroMobility
            | Code::TightVendorPool
            | Code::RegisterPressure
            | Code::RecoveryConeExposure
            | Code::TransientRetried
            | Code::WorkerRespawned
            | Code::JournalReplayed => Severity::Note,
        }
    }

    /// Parses either a code string (`"TD005"`, case-insensitive) or a lint
    /// name (`"rule1-detection"`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Code> {
        let upper = s.to_ascii_uppercase();
        Code::all()
            .into_iter()
            .find(|c| c.as_str() == upper || c.name() == s)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a finding points, as precisely as the finding allows.
///
/// All fields are optional; global findings (e.g. [`Code::AreaExceeded`])
/// carry an empty location.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Location {
    /// The scheduled op copy (operation + role), when role-specific.
    pub copy: Option<OpCopy>,
    /// The DFG node, when the finding is role-independent.
    pub node: Option<NodeId>,
    /// The schedule cycle.
    pub cycle: Option<usize>,
    /// The vendor involved.
    pub vendor: Option<VendorId>,
    /// The IP type involved.
    pub ip_type: Option<IpTypeId>,
}

impl Location {
    /// An empty (global) location.
    #[must_use]
    pub fn none() -> Self {
        Location::default()
    }

    /// Points at an op copy.
    #[must_use]
    pub fn copy(copy: OpCopy) -> Self {
        Location {
            copy: Some(copy),
            ..Location::default()
        }
    }

    /// Points at a role-independent DFG node.
    #[must_use]
    pub fn node(node: NodeId) -> Self {
        Location {
            node: Some(node),
            ..Location::default()
        }
    }

    /// Adds the schedule cycle.
    #[must_use]
    pub fn at_cycle(mut self, cycle: usize) -> Self {
        self.cycle = Some(cycle);
        self
    }

    /// Adds the vendor.
    #[must_use]
    pub fn on_vendor(mut self, vendor: VendorId) -> Self {
        self.vendor = Some(vendor);
        self
    }

    /// Adds the IP type.
    #[must_use]
    pub fn of_type(mut self, ip_type: IpTypeId) -> Self {
        self.ip_type = Some(ip_type);
        self
    }

    /// `true` when no field is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Location::default()
    }

    /// The most specific single name for this location, used as the SARIF
    /// logical-location name: the op copy, the node, the IP type, the
    /// vendor — in that preference order.
    #[must_use]
    pub fn logical_name(&self) -> Option<String> {
        if let Some(c) = self.copy {
            return Some(c.to_string());
        }
        if let Some(n) = self.node {
            return Some(n.to_string());
        }
        if let Some(t) = self.ip_type {
            return Some(t.name().to_string());
        }
        self.vendor.map(|v| v.to_string())
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        let sep = |f: &mut fmt::Formatter<'_>, wrote: &mut bool| -> fmt::Result {
            if *wrote {
                f.write_str(", ")?;
            }
            *wrote = true;
            Ok(())
        };
        if let Some(c) = self.copy {
            sep(f, &mut wrote)?;
            write!(f, "{c}")?;
        } else if let Some(n) = self.node {
            sep(f, &mut wrote)?;
            write!(f, "{n}")?;
        }
        if let Some(cy) = self.cycle {
            sep(f, &mut wrote)?;
            write!(f, "cycle {cy}")?;
        }
        if let Some(v) = self.vendor {
            sep(f, &mut wrote)?;
            write!(f, "vendor {v}")?;
        }
        if let Some(t) = self.ip_type {
            sep(f, &mut wrote)?;
            write!(f, "type {}", t.name())?;
        }
        if !wrote {
            f.write_str("(design)")?;
        }
        Ok(())
    }
}

/// A machine-applicable (or at least machine-checkable) repair suggestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixIt {
    /// Human-readable instruction, e.g. `"rebind o1[RC] to another vendor"`.
    pub description: String,
    /// The copy the suggestion rebinds or reschedules, if any.
    pub copy: Option<OpCopy>,
    /// Legal alternative vendors, when the repair is a rebind.
    pub alternatives: Vec<VendorId>,
}

impl FixIt {
    /// A rebind suggestion listing the legal alternative vendors.
    #[must_use]
    pub fn rebind(copy: OpCopy, alternatives: Vec<VendorId>) -> Self {
        let list = alternatives
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        FixIt {
            description: format!("rebind {copy} to one of: {list}"),
            copy: Some(copy),
            alternatives,
        }
    }

    /// A free-form suggestion with no vendor list.
    #[must_use]
    pub fn advice(description: impl Into<String>) -> Self {
        FixIt {
            description: description.into(),
            copy: None,
            alternatives: Vec::new(),
        }
    }
}

impl fmt::Display for FixIt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.description)
    }
}

/// One finding: a coded, located, explained observation with optional
/// repair suggestions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (defaults to [`Code::severity`]).
    pub severity: Severity,
    /// The human-readable, instance-specific message.
    pub message: String,
    /// Where the finding points.
    pub location: Location,
    /// Repair suggestions, possibly empty.
    pub fixits: Vec<FixIt>,
}

impl Diagnostic {
    /// Creates a diagnostic at the code's default severity.
    #[must_use]
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            location: Location::none(),
            fixits: Vec::new(),
        }
    }

    /// Sets the location.
    #[must_use]
    pub fn at(mut self, location: Location) -> Self {
        self.location = location;
        self
    }

    /// Appends a fix-it suggestion.
    #[must_use]
    pub fn with_fixit(mut self, fixit: FixIt) -> Self {
        self.fixits.push(fixit);
        self
    }

    /// Deterministic ordering key: severity (most severe first), then
    /// code, then operation index, then cycle.
    #[must_use]
    pub fn sort_key(&self) -> (std::cmp::Reverse<Severity>, Code, usize, usize) {
        let op = self
            .location
            .copy
            .map(|c| c.op.index() * 4 + c.role.index() + 1)
            .or_else(|| self.location.node.map(|n| n.index() * 4))
            .unwrap_or(usize::MAX);
        (
            std::cmp::Reverse(self.severity),
            self.code,
            op,
            self.location.cycle.unwrap_or(usize::MAX),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.location.is_empty() {
            write!(f, "\n  --> {}", self.location)?;
        }
        if let Some(eq) = self.code.paper_ref() {
            write!(f, "\n  = note: paper {eq}")?;
        }
        for fix in &self.fixits {
            write!(f, "\n  = help: {fix}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troyhls::Role;

    #[test]
    fn codes_are_unique_and_parse_back() {
        let all = Code::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.as_str(), b.as_str());
                assert_ne!(a.name(), b.name());
            }
            assert_eq!(Code::parse(a.as_str()), Some(*a));
            assert_eq!(Code::parse(&a.as_str().to_lowercase()), Some(*a));
            assert_eq!(Code::parse(a.name()), Some(*a));
        }
        assert_eq!(Code::parse("XX123"), None);
    }

    #[test]
    fn families_match_prefixes() {
        for c in Code::all() {
            let s = c.as_str();
            assert!(
                s.starts_with("TD")
                    || s.starts_with("TP")
                    || s.starts_with("TQ")
                    || s.starts_with("TR")
                    || s.starts_with("TS")
            );
            assert_eq!(s.len(), 5);
        }
    }

    #[test]
    fn severity_ordering_supports_filtering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::parse("warning"), Some(Severity::Warning));
    }

    #[test]
    fn display_renders_location_paper_ref_and_fixit() {
        let copy = OpCopy::new(NodeId::new(0), Role::Rc);
        let d = Diagnostic::new(Code::Rule1Detection, "o1[NC] and o1[RC] share Ven1")
            .at(Location::copy(copy).at_cycle(2).on_vendor(VendorId::new(0)))
            .with_fixit(FixIt::rebind(
                copy,
                vec![VendorId::new(2), VendorId::new(3)],
            ));
        let text = d.to_string();
        assert!(text.starts_with("error[TD005]:"), "{text}");
        assert!(text.contains("--> o1[RC], cycle 2, vendor Ven1"), "{text}");
        assert!(text.contains("paper eq. (5)"), "{text}");
        assert!(
            text.contains("rebind o1[RC] to one of: Ven3, Ven4"),
            "{text}"
        );
    }
}
