//! Registry-consistency suite: the published diagnostic codes are
//! unique, stable (pinned one by one, so a reordering or renaming of
//! the enum cannot slip through), and every code renders in all three
//! output formats. New codes must be appended here — which is exactly
//! the review speed bump the append-only registry wants.

use troy_analysis::{AnalysisReport, Code, Diagnostic, Severity, NUM_CODES};

/// The full published registry: (code string, lint name, severity).
/// Append-only — editing an existing row is a compatibility break.
const REGISTRY: [(&str, &str, Severity); NUM_CODES] = [
    ("TD001", "unassigned-copy", Severity::Error),
    ("TD002", "outside-window", Severity::Error),
    ("TD003", "dependency-order", Severity::Error),
    ("TD004", "no-such-core", Severity::Error),
    ("TD005", "rule1-detection", Severity::Error),
    ("TD006", "rule2-parent-child", Severity::Error),
    ("TD007", "rule2-siblings", Severity::Error),
    ("TD008", "rule1-recovery", Severity::Error),
    ("TD009", "rule2-related", Severity::Error),
    ("TD010", "area-exceeded", Severity::Error),
    ("TP001", "insufficient-vendors", Severity::Error),
    ("TP002", "zero-mobility", Severity::Note),
    ("TP003", "area-infeasible", Severity::Error),
    ("TP004", "unusable-vendor", Severity::Warning),
    ("TP005", "tight-vendor-pool", Severity::Note),
    ("TP006", "infeasible-latency", Severity::Error),
    ("TQ001", "redundant-license", Severity::Warning),
    ("TQ002", "near-collusion", Severity::Warning),
    ("TQ003", "register-pressure", Severity::Note),
    ("TR001", "degraded-backend", Severity::Warning),
    ("TR002", "constraint-relaxed", Severity::Warning),
    ("TR003", "backend-fault", Severity::Warning),
    ("TR004", "transient-retried", Severity::Note),
    ("TS001", "service-overloaded", Severity::Warning),
    ("TS002", "circuit-open", Severity::Warning),
    ("TS003", "request-deadline-exhausted", Severity::Warning),
    ("TQ004", "cone-single-vendor", Severity::Error),
    ("TQ005", "cone-trigger-channel", Severity::Error),
    ("TQ006", "cone-pair-collapse", Severity::Warning),
    ("TQ007", "recovery-cone-exposure", Severity::Note),
    ("TS004", "uncertified-response", Severity::Warning),
    ("TS005", "worker-failover", Severity::Warning),
    ("TS006", "cluster-unavailable", Severity::Warning),
    ("TS007", "worker-respawned", Severity::Note),
    ("TS008", "journal-replayed", Severity::Note),
];

#[test]
fn registry_is_pinned_code_by_code() {
    let all = Code::all();
    assert_eq!(all.len(), REGISTRY.len());
    for (code, (id, name, severity)) in all.into_iter().zip(REGISTRY) {
        assert_eq!(code.as_str(), id, "code id drifted");
        assert_eq!(code.name(), name, "{id}: lint name drifted");
        assert_eq!(code.severity(), severity, "{id}: severity drifted");
    }
}

#[test]
fn codes_are_globally_unique_across_passes() {
    let all = Code::all();
    for (i, a) in all.iter().enumerate() {
        for b in &all[i + 1..] {
            assert_ne!(a.as_str(), b.as_str(), "duplicate code id");
            assert_ne!(a.name(), b.name(), "duplicate lint name");
        }
    }
}

#[test]
fn every_code_round_trips_through_parse() {
    for code in Code::all() {
        assert_eq!(Code::parse(code.as_str()), Some(code));
        assert_eq!(Code::parse(&code.as_str().to_ascii_lowercase()), Some(code));
        assert_eq!(Code::parse(code.name()), Some(code));
        assert!(!code.summary().is_empty(), "{code}: empty summary");
    }
}

#[test]
fn every_code_renders_in_text_json_and_sarif() {
    // One report per code, so a rendering bug in any single code cannot
    // hide behind the others.
    for code in Code::all() {
        let report = AnalysisReport {
            design: "registry".into(),
            mode: "detection-only".into(),
            deny_warnings: false,
            diagnostics: vec![Diagnostic::new(
                code,
                format!("registry probe for {}", code.name()),
            )],
        };
        let (text, json, sarif) = (report.to_text(), report.to_json(), report.to_sarif());
        let id = code.as_str();
        assert!(text.contains(id), "{id} missing from text:\n{text}");
        assert!(
            text.contains(code.severity().as_str()),
            "{id}: severity missing from text"
        );
        assert!(json.contains(id), "{id} missing from JSON:\n{json}");
        assert!(json.contains(code.name()), "{id}: name missing from JSON");
        assert!(sarif.contains(id), "{id} missing from SARIF:\n{sarif}");
        assert!(
            sarif.contains(code.summary()) || sarif.contains(&troy_sarif_escape(code.summary())),
            "{id}: summary missing from SARIF rules"
        );
    }
}

/// The renderer escapes JSON strings; summaries are plain ASCII today,
/// but keep the check honest if one ever gains a quote.
fn troy_sarif_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}
