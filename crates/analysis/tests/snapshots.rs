//! Snapshot tests: the text, JSON and SARIF renderings of a report
//! containing one diagnostic of every published code are pinned to
//! committed files under `tests/snapshots/`.
//!
//! On an intentional format change, regenerate with:
//!
//! ```sh
//! TROY_UPDATE_SNAPSHOTS=1 cargo test -p troy-analysis --test snapshots
//! ```
//!
//! and review the diff like any other code change.

use std::path::Path;

use troy_analysis::{AnalysisReport, Code, Diagnostic, FixIt, Location};
use troy_dfg::{IpTypeId, NodeId};
use troyhls::{OpCopy, Role, VendorId};

/// One deterministic diagnostic per code, each exercising the location and
/// fix-it fields that code typically carries.
fn sample(code: Code) -> Diagnostic {
    let o1_rc = OpCopy::new(NodeId::new(0), Role::Rc);
    let o2_nc = OpCopy::new(NodeId::new(1), Role::Nc);
    let o3_r = OpCopy::new(NodeId::new(2), Role::Recovery);
    let ven1 = VendorId::new(0);
    let ven3 = VendorId::new(2);
    let ven4 = VendorId::new(3);
    let d = Diagnostic::new(code, format!("sample finding for {}", code.name()));
    match code {
        Code::UnassignedCopy => d.at(Location::copy(o1_rc)),
        Code::OutsideWindow => d.at(Location::copy(o1_rc).at_cycle(7)),
        Code::DependencyOrder => d.at(Location::copy(o2_nc).at_cycle(1)),
        Code::NoSuchCore => d
            .at(Location::copy(o1_rc).on_vendor(ven1))
            .with_fixit(FixIt::rebind(o1_rc, vec![ven3, ven4])),
        Code::Rule1Detection | Code::Rule2ParentChild | Code::Rule2Siblings => d
            .at(Location::copy(o2_nc).at_cycle(2).on_vendor(ven1))
            .with_fixit(FixIt::rebind(o2_nc, vec![ven3])),
        Code::Rule1Recovery | Code::Rule2Related => d
            .at(Location::copy(o3_r).at_cycle(5).on_vendor(ven1))
            .with_fixit(FixIt::rebind(o3_r, vec![ven4])),
        Code::AreaExceeded => d.with_fixit(FixIt::advice("raise --area or drop a license")),
        Code::InsufficientVendors | Code::TightVendorPool => {
            d.at(Location::default().of_type(IpTypeId::MULTIPLIER))
        }
        Code::ZeroMobility => d.at(Location::node(NodeId::new(1))),
        Code::AreaInfeasible | Code::InfeasibleLatency => d,
        Code::UnusableVendor => d.at(Location::default().on_vendor(ven4)),
        Code::RedundantLicense => d
            .at(Location::copy(o2_nc)
                .on_vendor(ven4)
                .of_type(IpTypeId::ADDER))
            .with_fixit(FixIt::rebind(o2_nc, vec![ven1])),
        Code::NearCollusion => d.at(Location::copy(o2_nc).on_vendor(ven1)),
        Code::RegisterPressure => d.at(Location::default().at_cycle(3)),
        Code::DegradedBackend => d.with_fixit(FixIt::advice(
            "raise --deadline to give the primary solver room",
        )),
        Code::ConstraintRelaxed => d.with_fixit(FixIt::advice(
            "accept the relaxed latency or loosen other constraints",
        )),
        Code::BackendFault | Code::TransientRetried => d,
        Code::ServiceOverloaded => d.with_fixit(FixIt::advice(
            "retry after the hinted backoff or raise --queue-depth",
        )),
        Code::CircuitOpen => d.with_fixit(FixIt::advice(
            "wait for the breaker cooldown; the rung re-closes after a probe succeeds",
        )),
        Code::RequestDeadlineExhausted => d.with_fixit(FixIt::advice(
            "raise the request deadline_ms or shrink the problem",
        )),
        Code::ConeSingleVendor => d
            .at(Location::copy(o1_rc).at_cycle(2).on_vendor(ven1))
            .with_fixit(FixIt::rebind(o1_rc, vec![ven3, ven4])),
        Code::ConeTriggerChannel => d
            .at(Location::copy(o2_nc).at_cycle(2).on_vendor(ven1))
            .with_fixit(FixIt::rebind(o2_nc, vec![ven4])),
        Code::ConePairCollapse => d
            .at(Location::node(NodeId::new(4)))
            .with_fixit(FixIt::advice(
                "spread the cone's detection copies over at least three vendors",
            )),
        Code::RecoveryConeExposure => d.at(Location::node(NodeId::new(4)).on_vendor(ven1)),
        Code::UncertifiedResponse => d.with_fixit(FixIt::advice(
            "re-request with no_degrade or retry once the primary rung recovers",
        )),
        Code::WorkerFailover => d.with_fixit(FixIt::advice(
            "the answer is valid; check the demoted worker's health before rebalancing",
        )),
        Code::ClusterUnavailable => d.with_fixit(FixIt::advice(
            "retry after the hinted backoff or add workers to the cluster",
        )),
        Code::WorkerRespawned => d.with_fixit(FixIt::advice(
            "the answer is valid; audit the slot's crash history if generations keep climbing",
        )),
        Code::JournalReplayed => d.with_fixit(FixIt::advice(
            "the answer is valid; the original response was lost with the crashed router",
        )),
    }
}

fn report() -> AnalysisReport {
    let mut diagnostics: Vec<Diagnostic> = Code::all().into_iter().map(sample).collect();
    diagnostics.sort_by_key(Diagnostic::sort_key);
    AnalysisReport {
        design: "snapshot".into(),
        mode: "detection+recovery".into(),
        deny_warnings: false,
        diagnostics,
    }
}

/// Compares `actual` against the committed snapshot, or rewrites it when
/// `TROY_UPDATE_SNAPSHOTS` is set.
fn check(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(name);
    if std::env::var_os("TROY_UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", path.display()));
    assert!(
        expected == actual,
        "snapshot {name} is stale; regenerate with TROY_UPDATE_SNAPSHOTS=1 \
         and review the diff.\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

#[test]
fn text_rendering_of_every_code_is_stable() {
    check("all_codes.txt", &report().to_text());
}

#[test]
fn json_rendering_of_every_code_is_stable() {
    check("all_codes.json", &report().to_json());
}

#[test]
fn sarif_rendering_of_every_code_is_stable() {
    check("all_codes.sarif", &report().to_sarif());
}

#[test]
fn every_code_appears_in_each_format() {
    let r = report();
    let (text, json, sarif) = (r.to_text(), r.to_json(), r.to_sarif());
    for code in Code::all() {
        let id = code.as_str();
        assert!(text.contains(id), "{id} missing from text");
        assert!(json.contains(id), "{id} missing from JSON");
        assert!(sarif.contains(id), "{id} missing from SARIF");
    }
}
