//! Property tests pinning the analyzer's two load-bearing contracts:
//!
//! 1. the `Violation` → `Code` mapping is total, deterministic and lands
//!    every violation on exactly one `TD0xx` code at `Error` severity;
//! 2. `lint` and `troyhls::validate` agree exactly — a design is
//!    lint-error-free if and only if the validator reports no violations,
//!    and the multiset of `TD` diagnostics mirrors the violation list —
//!    across solver outputs and random corruptions of them.

use proptest::prelude::*;
use troy_analysis::{code_for_violation, diagnostic_for_violation, lint, Code, Severity};
use troy_dfg::{benchmarks, NodeId};
use troyhls::{
    validate, Assignment, Catalog, GreedySolver, Mode, OpCopy, Role, RuleKind, SolveOptions,
    SynthesisProblem, Synthesizer, VendorId, Violation,
};

fn problem(mode: Mode) -> SynthesisProblem {
    let dfg = benchmarks::polynom();
    let cp = dfg.critical_path_len();
    SynthesisProblem::builder(dfg, Catalog::table1())
        .mode(mode)
        .detection_latency(cp + 1)
        .recovery_latency(cp + 1)
        .build()
        .expect("valid problem")
}

fn solved(problem: &SynthesisProblem) -> troyhls::Implementation {
    GreedySolver::new()
        .synthesize(problem, &SolveOptions::quick())
        .expect("greedy solves polynom/table1")
        .implementation
}

/// A strategy over `(op, role, cycle, vendor, rule)` raw material from
/// which each violation shape is assembled. Op indices stay inside the
/// polynom benchmark (5 operations).
fn raw() -> impl Strategy<Value = (usize, usize, usize, usize, usize)> {
    (0usize..5, 0usize..3, 1usize..12, 0usize..5, 0usize..5)
}

fn copy_of(op: usize, role: usize) -> OpCopy {
    let role = [Role::Nc, Role::Rc, Role::Recovery][role % 3];
    OpCopy::new(NodeId::new(op), role)
}

fn rule_of(i: usize) -> RuleKind {
    [
        RuleKind::DetectionDuplicate,
        RuleKind::DetectionParentChild,
        RuleKind::DetectionSiblings,
        RuleKind::RecoveryRebind,
        RuleKind::RecoveryRelated,
    ][i % 5]
}

/// Assembles one violation of every shape from the raw tuple; the `shape`
/// selector picks which.
fn violation_of(
    shape: usize,
    (op, role, cycle, vendor, rule): (usize, usize, usize, usize, usize),
) -> Violation {
    let copy = copy_of(op, role);
    let other = copy_of((op + 1) % 5, (role + 1) % 3);
    match shape % 6 {
        0 => Violation::Unassigned(copy),
        1 => Violation::OutsideWindow {
            copy,
            cycle,
            window: (1, cycle.max(2) - 1),
        },
        2 => Violation::DependencyOrder {
            parent: copy,
            child: other,
        },
        3 => Violation::NoSuchCore(copy),
        4 => Violation::SameVendor {
            a: copy,
            b: other,
            rule: rule_of(rule),
        },
        _ => Violation::AreaExceeded {
            used: 1000 + vendor as u64,
            limit: 999,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Contract 1: every violation shape maps to exactly one `TD` code at
    /// `Error` severity, and the full diagnostic keeps that code.
    #[test]
    fn every_violation_maps_to_one_td_error_code(
        shape in 0usize..6,
        raw in raw(),
    ) {
        let v = violation_of(shape, raw);
        let code = code_for_violation(&v);
        prop_assert!(code.as_str().starts_with("TD"), "{v:?} -> {code}");
        prop_assert_eq!(code.severity(), Severity::Error);

        let p = problem(Mode::DetectionRecovery);
        let imp = solved(&p);
        let d = diagnostic_for_violation(&p, &imp, &v);
        prop_assert_eq!(d.code, code);
        prop_assert_eq!(d.severity, Severity::Error);
        prop_assert!(!d.message.is_empty());
    }

    /// The mapping is deterministic and rule-sensitive: each `RuleKind`
    /// lands on its own code.
    #[test]
    fn rule_kinds_get_distinct_codes(raw in raw()) {
        let codes: Vec<Code> = (0..5)
            .map(|r| {
                code_for_violation(&Violation::SameVendor {
                    a: copy_of(raw.0, raw.1),
                    b: copy_of((raw.0 + 1) % 5, raw.1),
                    rule: rule_of(r),
                })
            })
            .collect();
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                prop_assert!(a != b, "two rules map to {a}");
            }
        }
    }

    /// Contract 2: after randomly corrupting a solver output (rebinding
    /// one copy and rescheduling another), lint reports an error if and
    /// only if validate reports a violation — and the `TD` codes mirror
    /// the violation list one-for-one.
    #[test]
    fn lint_clean_iff_validate_clean_under_corruption(
        mode_sel in 0usize..2,
        op in 0usize..10,
        role in 0usize..3,
        vendor in 0usize..5,
        op2 in 0usize..10,
        cycle in 1usize..12,
    ) {
        let mode = [Mode::DetectionOnly, Mode::DetectionRecovery][mode_sel];
        let p = problem(mode);
        let mut imp = solved(&p);

        // Corrupt: rebind one copy to an arbitrary catalog vendor, and
        // reschedule another copy's NC to an arbitrary cycle. Either edit
        // may happen to stay legal — that is the point of the property.
        let roles = Role::for_mode(mode);
        let role = roles[role % roles.len()];
        let node = NodeId::new(op % p.dfg().len());
        if let Some(a) = imp.assignment(node, role) {
            imp.assign(node, role, Assignment { vendor: VendorId::new(vendor), ..a });
        }
        let node2 = NodeId::new(op2 % p.dfg().len());
        if let Some(a) = imp.assignment(node2, Role::Nc) {
            imp.assign(node2, Role::Nc, Assignment { cycle, ..a });
        }

        let violations = validate(&p, &imp);
        let report = lint(&p, Some(&imp));
        prop_assert_eq!(
            violations.is_empty(),
            report.count(Severity::Error) == 0,
            "validate found {} violations but lint reports {} errors",
            violations.len(),
            report.count(Severity::Error)
        );

        let mut expected: Vec<Code> = violations.iter().map(code_for_violation).collect();
        let mut got: Vec<Code> = report
            .diagnostics
            .iter()
            .filter(|d| d.code.as_str().starts_with("TD"))
            .map(|d| d.code)
            .collect();
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(expected, got);
    }

    /// Every rebind fix-it the analyzer attaches is sound: applying any
    /// suggested vendor removes that copy's violations of the suggesting
    /// kind (the alternatives came from `legal_vendors`).
    #[test]
    fn fixit_alternatives_are_legal(
        op in 0usize..10,
        role in 0usize..3,
        vendor in 0usize..5,
    ) {
        let p = problem(Mode::DetectionOnly);
        let mut imp = solved(&p);
        let node = NodeId::new(op % p.dfg().len());
        let role = [Role::Nc, Role::Rc][role % 2];
        if let Some(a) = imp.assignment(node, role) {
            imp.assign(node, role, Assignment { vendor: VendorId::new(vendor), ..a });
        }
        let report = lint(&p, Some(&imp));
        for d in &report.diagnostics {
            for fix in &d.fixits {
                let Some(copy) = fix.copy else { continue };
                for &alt in &fix.alternatives {
                    let legal = troy_analysis::legal_vendors(&p, &imp, copy);
                    prop_assert!(
                        legal.contains(&alt),
                        "{}: suggested {alt} for {copy} is not legal",
                        d.code
                    );
                }
            }
        }
    }

    /// `legal_vendors` structural contract, on solver outputs, random
    /// corruptions of them, and partial bindings alike: the result is
    /// sorted, duplicate-free, never offers the copy's current vendor,
    /// and only offers vendors the catalog actually licenses for the
    /// copy's IP type.
    #[test]
    fn legal_vendors_is_sorted_deduped_and_catalog_bounded(
        mode_sel in 0usize..2,
        op in 0usize..10,
        role in 0usize..3,
        vendor in 0usize..5,
        target_op in 0usize..10,
        target_role in 0usize..3,
        unassign in 0usize..2,
    ) {
        let mode = [Mode::DetectionOnly, Mode::DetectionRecovery][mode_sel];
        let p = problem(mode);
        let mut imp = solved(&p);
        let roles = Role::for_mode(mode);
        let node = NodeId::new(op % p.dfg().len());
        let rebind_role = roles[role % roles.len()];
        if let Some(a) = imp.assignment(node, rebind_role) {
            imp.assign(node, rebind_role, Assignment { vendor: VendorId::new(vendor), ..a });
        }
        let copy = OpCopy::new(
            NodeId::new(target_op % p.dfg().len()),
            roles[target_role % roles.len()],
        );
        if unassign == 1 {
            imp.unassign(copy.op, copy.role);
        }

        let legal = troy_analysis::legal_vendors(&p, &imp, copy);
        let indices: Vec<usize> = legal.iter().map(|v| v.index()).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&indices, &sorted, "result not sorted/deduplicated");

        if let Some(current) = imp.assignment_of(copy).map(|a| a.vendor) {
            prop_assert!(
                !legal.contains(&current),
                "offers the current vendor {current}"
            );
        }

        let ip_type = p.dfg().kind(copy.op).ip_type();
        let catalog: Vec<VendorId> = p.catalog().vendors_for(ip_type).collect();
        for v in &legal {
            prop_assert!(
                catalog.contains(v),
                "{v} does not sell {}",
                ip_type.name()
            );
        }
    }
}

#[test]
fn solver_outputs_lint_clean_and_validate_clean() {
    for mode in [Mode::DetectionOnly, Mode::DetectionRecovery] {
        let p = problem(mode);
        let imp = solved(&p);
        assert!(
            validate(&p, &imp).is_empty(),
            "{mode}: solver output invalid"
        );
        let report = lint(&p, Some(&imp));
        assert_eq!(
            report.count(Severity::Error),
            0,
            "{mode}: {}",
            report.to_text()
        );
    }
}
