//! End-to-end soak and oracle tests for the synthesis daemon.
//!
//! Each test boots a real [`Service`] on a loopback port and speaks the
//! newline-delimited JSON protocol over actual sockets. The invariant
//! under test is the daemon's robustness contract: every request — good
//! or evil — terminates in exactly one of {valid design, typed
//! degradation, typed rejection}; the daemon never hangs, never panics
//! out, and drains cleanly.
//!
//! The seeded soak test takes its fault schedule from `TROY_SOAK_SEED`
//! (default 1) via the same deterministic [`Chaos`] injector the
//! supervisor chaos suite uses, so one seed denotes one replayable mix
//! of client behaviors.

use std::fmt::Write as _;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use troy_resilience::{Chaos, ServiceFault};
use troy_service::{BreakerConfig, Json, Service, ServiceConfig};

// ---------------------------------------------------------------- clients

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to the daemon");
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

fn send(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).expect("write frame");
    stream.write_all(b"\n").expect("write newline");
}

/// Reads one response line within `budget`; `None` on EOF or timeout.
fn read_line(stream: &mut TcpStream, budget: Duration) -> Option<String> {
    let deadline = Instant::now() + budget;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    while Instant::now() < deadline {
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            return Some(String::from_utf8_lossy(&buf[..nl]).into_owned());
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    buf.iter()
        .position(|&b| b == b'\n')
        .map(|nl| String::from_utf8_lossy(&buf[..nl]).into_owned())
}

/// One request on a fresh connection; returns the parsed response.
fn roundtrip(addr: SocketAddr, line: &str, budget: Duration) -> Option<Json> {
    let mut stream = connect(addr);
    send(&mut stream, line);
    let line = read_line(&mut stream, budget)?;
    Some(Json::parse(&line).unwrap_or_else(|| panic!("response must parse: {line}")))
}

fn status(resp: &Json) -> &str {
    resp.get("status")
        .and_then(Json::as_str)
        .expect("every response carries `status`")
}

fn codes(resp: &Json) -> Vec<String> {
    match resp.get("codes") {
        Some(Json::Arr(items)) => items
            .iter()
            .filter_map(|c| c.as_str().map(str::to_owned))
            .collect(),
        _ => Vec::new(),
    }
}

/// The certificate discipline every response must honor: `ok` outcomes
/// carry a security certificate whose claims the prover actually makes
/// (so a forged or drifted one cannot slip through rendering), and no
/// other outcome carries one — a degraded or shed response must never
/// look certified.
fn assert_certificate_discipline(resp: &Json) {
    match resp.get("certificate") {
        Some(cert) => {
            assert_eq!(
                status(resp),
                "ok",
                "only `ok` responses may carry a certificate: {resp:?}"
            );
            assert_eq!(
                cert.get("single_vendor_safe"),
                Some(&Json::Bool(true)),
                "{resp:?}"
            );
            assert!(cert.get("design").and_then(Json::as_str).is_some());
            assert!(cert.get("mode").and_then(Json::as_str).is_some());
            assert!(cert.get("checksum").and_then(Json::as_u64).is_some());
            assert!(cert.get("min_collusion_size").and_then(Json::as_u64) >= Some(2));
        }
        None => assert_ne!(
            status(resp),
            "ok",
            "every `ok` response must carry a certificate: {resp:?}"
        ),
    }
}

fn stat(resp: &Json, key: &str) -> u64 {
    resp.get("stats")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats trailer carries `{key}`"))
}

// ----------------------------------------------------------- problem zoo

/// A linear chain of `n` adds: critical path `n`, so huge operation
/// mobility once λ exceeds it. The 60-op variant's first LP relaxation
/// is guaranteed to outlast any sub-second deadline, which makes it a
/// deterministic slot occupier.
fn chain_dfg(name: &str, n: usize) -> String {
    let mut text = format!("dfg {name}\n");
    for i in 0..n {
        let _ = writeln!(text, "op n{i} add");
    }
    for i in 1..n {
        let _ = writeln!(text, "edge n{} n{i}", i - 1);
    }
    text
}

/// Four independent 3-op chains. Under λ = 40 the mobility explodes; an
/// area cap of 1700 is below anything the greedy warm start can reach
/// (its best is 1790), so the ILP rung runs with no incumbent and times
/// out deterministically — the breaker-trip workload.
fn wide_dfg() -> String {
    let mut text = String::from("dfg wide12\n");
    for c in 0..4 {
        for i in 0..3 {
            let _ = writeln!(text, "op c{c}n{i} add");
        }
    }
    for c in 0..4 {
        for i in 1..3 {
            let _ = writeln!(text, "edge c{c}n{} c{c}n{i}", i - 1);
        }
    }
    text
}

/// JSON-escapes DFG text for the `dfg` request field.
fn inline(dfg: &str) -> String {
    dfg.replace('\n', "\\n")
}

fn tiny_synth(id: &str, deadline_ms: u64) -> String {
    let dfg = inline("dfg tiny\nop a add\nop b add\nop c mul\nedge a b\nedge b c\n");
    format!(
        "{{\"id\":\"{id}\",\"cmd\":\"synth\",\"dfg\":\"{dfg}\",\"catalog\":\"table1\",\
         \"lambda_det\":6,\"lambda_rec\":5,\"deadline_ms\":{deadline_ms}}}"
    )
}

const FIG5: &str = "{\"id\":\"fig5\",\"cmd\":\"synth\",\"benchmark\":\"polynom\",\
    \"mode\":\"recovery\",\"catalog\":\"table1\",\"lambda_det\":4,\"lambda_rec\":3,\
    \"area\":22000,\"deadline_ms\":2500}";

// ------------------------------------------------------------------ tests

/// Chaos off: the paper's Fig. 5 design point survives the service path
/// byte for byte — $4160 on `polynom` under detection+recovery — and the
/// daemon's whole lifecycle (synth, cache hit, ping, stats, shutdown,
/// drain) works over one connection.
#[test]
fn fig5_oracle_cache_and_lifecycle_through_the_service_path() {
    let service = Service::start(ServiceConfig {
        max_inflight: 2,
        queue_depth: 2,
        default_deadline: Duration::from_secs(10),
        drain_deadline: Duration::from_secs(3),
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = service.local_addr();
    let mut stream = connect(addr);

    send(&mut stream, FIG5);
    let resp = read_line(&mut stream, Duration::from_secs(10)).expect("fig5 response");
    let resp = Json::parse(&resp).expect("fig5 response parses");
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert_eq!(resp.get("cost").and_then(Json::as_u64), Some(4160));
    assert_eq!(resp.get("id").and_then(Json::as_str), Some("fig5"));
    assert!(resp.get("elapsed_ms").is_some());
    assert!(resp.get("cached").is_none(), "first solve is not cached");
    let cert = resp
        .get("certificate")
        .expect("a fresh ok response carries the prover's certificate");
    assert_eq!(cert.get("design").and_then(Json::as_str), Some("polynom"));
    assert_eq!(
        cert.get("mode").and_then(Json::as_str),
        Some("detection+recovery")
    );
    assert_eq!(cert.get("single_vendor_safe"), Some(&Json::Bool(true)));
    assert_eq!(
        cert.get("min_collusion_size").and_then(Json::as_u64),
        Some(2)
    );
    assert_eq!(
        cert.get("pair_exposed_cones").and_then(Json::as_u64),
        Some(0)
    );
    let fresh_checksum = cert.get("checksum").and_then(Json::as_u64);
    assert!(fresh_checksum.is_some());

    // The identical problem again: a cache hit, regardless of the
    // per-request deadline (the key deliberately excludes it).
    send(&mut stream, &FIG5.replace("fig5", "fig5-again"));
    let resp = read_line(&mut stream, Duration::from_secs(5)).expect("cached response");
    let resp = Json::parse(&resp).expect("cached response parses");
    assert_eq!(status(&resp), "ok");
    assert_eq!(resp.get("cost").and_then(Json::as_u64), Some(4160));
    assert_eq!(resp.get("cached"), Some(&Json::Bool(true)));
    // The cache hit re-proves the stored binding, so the certificate
    // (checksum included) matches the fresh solve's.
    let cert = resp
        .get("certificate")
        .expect("a cached ok response carries a certificate too");
    assert_eq!(cert.get("design").and_then(Json::as_str), Some("polynom"));
    assert_eq!(cert.get("checksum").and_then(Json::as_u64), fresh_checksum);

    send(&mut stream, "{\"id\":\"p\",\"cmd\":\"ping\"}");
    let resp = read_line(&mut stream, Duration::from_secs(2)).expect("pong");
    let resp = Json::parse(&resp).expect("pong parses");
    assert_eq!(status(&resp), "pong");

    send(&mut stream, "{\"id\":\"s\",\"cmd\":\"stats\"}");
    let resp = read_line(&mut stream, Duration::from_secs(2)).expect("stats");
    let resp = Json::parse(&resp).expect("stats parses");
    assert_eq!(stat(&resp, "cache_hits"), 1);
    assert_eq!(stat(&resp, "accepted"), 2);

    send(&mut stream, "{\"id\":\"bye\",\"cmd\":\"shutdown\"}");
    let resp = read_line(&mut stream, Duration::from_secs(2)).expect("shutdown ack");
    let resp = Json::parse(&resp).expect("shutdown ack parses");
    assert_eq!(status(&resp), "ok");

    let t0 = Instant::now();
    let snap = service.join();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "drain must finish promptly with nothing in flight"
    );
    assert_eq!(snap.completed_ok, 2);
    assert_eq!(snap.cache_hits, 1);
    assert_eq!(snap.panics, 0);
    assert_eq!(snap.malformed, 0);
}

/// The peer cache protocol (`cmd: "probe"`): a probe for a solved key
/// answers with the full cached result — certificate included — without
/// occupying a synthesis slot; a probe for an unknown key answers `miss`
/// instead of solving. This is the wire primitive the cluster router's
/// shared cache tier is built on.
#[test]
fn probe_answers_cache_hits_and_misses_without_synthesizing() {
    let service = Service::start(ServiceConfig::default()).expect("bind");
    let addr = service.local_addr();
    let mut stream = connect(addr);

    // An unknown key is a miss, not a solve: the answer is immediate and
    // the solved-work counters stay untouched.
    let probe_cold = tiny_synth("cold", 5000).replace("\"cmd\":\"synth\"", "\"cmd\":\"probe\"");
    send(&mut stream, &probe_cold);
    let resp = read_line(&mut stream, Duration::from_secs(2)).expect("cold probe answer");
    let resp = Json::parse(&resp).expect("cold probe parses");
    assert_eq!(status(&resp), "miss", "{resp:?}");
    assert!(resp.get("certificate").is_none());

    // Solve once, then probe the same problem under a different id and
    // deadline (the key excludes both): a hit carrying the cached cost
    // and the prover's certificate.
    send(&mut stream, &tiny_synth("warm", 5000));
    let solved = read_line(&mut stream, Duration::from_secs(10)).expect("solve");
    let solved = Json::parse(&solved).expect("solve parses");
    assert_eq!(status(&solved), "ok", "{solved:?}");
    let cost = solved.get("cost").and_then(Json::as_u64).expect("cost");

    let probe_warm = tiny_synth("lookup", 700).replace("\"cmd\":\"synth\"", "\"cmd\":\"probe\"");
    send(&mut stream, &probe_warm);
    let resp = read_line(&mut stream, Duration::from_secs(2)).expect("warm probe answer");
    let resp = Json::parse(&resp).expect("warm probe parses");
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert_eq!(resp.get("id").and_then(Json::as_str), Some("lookup"));
    assert_eq!(resp.get("cost").and_then(Json::as_u64), Some(cost));
    assert_eq!(resp.get("cached"), Some(&Json::Bool(true)));
    assert_certificate_discipline(&resp);
    assert_eq!(stat(&resp, "probes"), 2);
    assert_eq!(stat(&resp, "probe_hits"), 1);

    // A probe with an unparseable problem is a typed bad request.
    send(
        &mut stream,
        "{\"id\":\"bad\",\"cmd\":\"probe\",\"dfg\":\"not a dfg\"}",
    );
    let resp = read_line(&mut stream, Duration::from_secs(2)).expect("bad probe answer");
    let resp = Json::parse(&resp).expect("bad probe parses");
    assert_eq!(status(&resp), "rejected", "{resp:?}");
    assert_eq!(
        resp.get("kind").and_then(Json::as_str),
        Some("bad_request"),
        "{resp:?}"
    );

    send(&mut stream, "{\"id\":\"bye\",\"cmd\":\"shutdown\"}");
    let _ = read_line(&mut stream, Duration::from_secs(2));
    let snap = service.join();
    assert_eq!(snap.probes, 3);
    assert_eq!(snap.probe_hits, 1);
    assert_eq!(snap.completed_ok, 1, "probes never occupy a solve slot");
}

/// With one slot and one queue seat, a long-running synthesis forces the
/// next two requests into typed `overloaded` rejections — one after a
/// bounded queue wait, one instantly — each carrying a `retry_after_ms`
/// hint and the `TS001` diagnostic. Nothing buffers unboundedly, nothing
/// hangs.
#[test]
fn overload_sheds_surplus_requests_with_typed_rejections() {
    let service = Service::start(ServiceConfig {
        max_inflight: 1,
        queue_depth: 1,
        default_deadline: Duration::from_secs(10),
        drain_deadline: Duration::from_secs(3),
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = service.local_addr();

    // The occupier: a 60-op chain whose LP grinds until the 1.5 s
    // deadline, holding the only slot for at least that long.
    let holder_line = format!(
        "{{\"id\":\"hold\",\"cmd\":\"synth\",\"dfg\":\"{}\",\"catalog\":\"table1\",\
         \"lambda_det\":66,\"lambda_rec\":62,\"deadline_ms\":1500,\"no_degrade\":true}}",
        inline(&chain_dfg("bigchain", 60))
    );
    let holder = std::thread::spawn(move || {
        roundtrip(addr, &holder_line, Duration::from_secs(15)).expect("holder response")
    });
    // Let the holder get admitted and into the solver.
    std::thread::sleep(Duration::from_millis(500));

    // B waits in the queue (wait budget = deadline/2 = 300 ms), never
    // gets the slot, and is shed with a typed rejection.
    let b_line = tiny_synth("b", 600);
    let b = std::thread::spawn(move || {
        roundtrip(addr, &b_line, Duration::from_secs(5)).expect("b response")
    });
    std::thread::sleep(Duration::from_millis(100));

    // C finds the queue seat taken by B and is shed without waiting.
    let c_resp =
        roundtrip(addr, &tiny_synth("c", 600), Duration::from_secs(5)).expect("c response");

    for resp in [&b.join().expect("b thread"), &c_resp] {
        assert_eq!(status(resp), "rejected", "{resp:?}");
        assert_eq!(resp.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert!(
            resp.get("retry_after_ms").and_then(Json::as_u64).is_some(),
            "overload rejections carry back-pressure hints: {resp:?}"
        );
        assert!(codes(resp).contains(&"TS001".to_owned()), "{resp:?}");
        assert!(
            resp.get("certificate").is_none(),
            "shed requests synthesized nothing, so nothing is certified: {resp:?}"
        );
    }

    let holder_resp = holder.join().expect("holder thread");
    assert_eq!(status(&holder_resp), "ok", "{holder_resp:?}");
    assert_certificate_discipline(&holder_resp);

    service.handle().shutdown();
    let snap = service.join();
    assert_eq!(snap.shed_overload, 2);
    assert_eq!(snap.accepted, 1, "only the holder was admitted");
    assert_eq!(snap.completed_ok, 1);
    assert_eq!(snap.panics, 0);
}

/// Two deterministic ILP-rung timeouts (high-mobility problem whose warm
/// start is blocked by the area cap) trip the ILP circuit breaker; the
/// next request then skips the open rung up front, completes on the
/// exact back end, and is reported `degraded` with `TS002` + `TR001`.
#[test]
fn breaker_opens_after_rung_failures_and_later_requests_degrade() {
    let service = Service::start(ServiceConfig {
        max_inflight: 2,
        queue_depth: 2,
        default_deadline: Duration::from_secs(10),
        drain_deadline: Duration::from_secs(3),
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(300),
        },
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = service.local_addr();
    let wide = inline(&wide_dfg());

    for id in ["f1", "f2"] {
        let line = format!(
            "{{\"id\":\"{id}\",\"cmd\":\"synth\",\"dfg\":\"{wide}\",\"catalog\":\"table1\",\
             \"lambda_det\":40,\"lambda_rec\":40,\"area\":1700,\"deadline_ms\":800,\
             \"no_degrade\":true}}"
        );
        let resp = roundtrip(addr, &line, Duration::from_secs(10)).expect("failure response");
        assert_eq!(status(&resp), "error", "{resp:?}");
        assert_eq!(resp.get("kind").and_then(Json::as_str), Some("failed"));
    }

    // The ILP breaker is now open: a healthy request is served by the
    // next rung and labelled degraded, with the diagnostics saying why.
    let resp = roundtrip(addr, FIG5, Duration::from_secs(10)).expect("degraded response");
    assert_eq!(status(&resp), "degraded", "{resp:?}");
    assert_eq!(resp.get("backend").and_then(Json::as_str), Some("exact"));
    assert_eq!(resp.get("cost").and_then(Json::as_u64), Some(4160));
    assert_eq!(resp.get("proven"), Some(&Json::Bool(true)));
    let got = codes(&resp);
    assert!(got.contains(&"TS002".to_owned()), "{got:?}");
    assert!(got.contains(&"TR001".to_owned()), "{got:?}");
    // Degraded outcomes are honest about it: no certificate, and the
    // TS004 diagnostic says so in-band.
    assert!(
        resp.get("certificate").is_none(),
        "a degraded response must never look certified: {resp:?}"
    );
    assert!(got.contains(&"TS004".to_owned()), "{got:?}");

    service.handle().shutdown();
    let snap = service.join();
    assert_eq!(snap.failed, 2);
    assert_eq!(snap.completed_degraded, 1);
    assert_eq!(snap.panics, 0);
}

/// A deadline too small for any rung to produce a design yields a typed
/// `deadline` error carrying `TS003` — not a hang, not a silent drop.
#[test]
fn exhausted_deadline_yields_a_typed_ts003_error() {
    let service = Service::start(ServiceConfig {
        default_deadline: Duration::from_secs(10),
        drain_deadline: Duration::from_secs(3),
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = service.local_addr();

    // Area 1700 blocks the warm start (greedy bottoms out at 1790), the
    // 60-op mobility makes the LP outlast 300 ms, so every rung times
    // out inside an exhausted budget.
    let line = format!(
        "{{\"id\":\"storm\",\"cmd\":\"synth\",\"dfg\":\"{}\",\"catalog\":\"table1\",\
         \"lambda_det\":66,\"lambda_rec\":62,\"area\":1700,\"deadline_ms\":300}}",
        inline(&chain_dfg("bigchain", 60))
    );
    let resp = roundtrip(addr, &line, Duration::from_secs(15)).expect("storm response");
    assert_eq!(status(&resp), "error", "{resp:?}");
    assert_eq!(resp.get("kind").and_then(Json::as_str), Some("deadline"));
    assert!(codes(&resp).contains(&"TS003".to_owned()), "{resp:?}");
    assert!(resp.get("certificate").is_none(), "{resp:?}");

    service.handle().shutdown();
    let snap = service.join();
    assert_eq!(snap.failed, 1);
    assert_eq!(snap.panics, 0);
}

/// The seeded soak: concurrent clients mixing good traffic with the four
/// service-level fault families (malformed JSON, slowloris frames,
/// mid-request disconnects, deadline storms). Every request that reads a
/// response gets exactly one well-formed typed outcome; the daemon
/// survives all of it (`panics == 0`), answers a liveness probe
/// afterwards, and drains within its bound.
#[test]
fn seeded_soak_terminates_every_request_with_a_typed_outcome() {
    let seed: u64 = std::env::var("TROY_SOAK_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1);

    let frame_deadline = Duration::from_millis(300);
    let service = Service::start(ServiceConfig {
        max_inflight: 2,
        queue_depth: 2,
        default_deadline: Duration::from_secs(3),
        drain_deadline: Duration::from_secs(3),
        frame_deadline,
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = service.local_addr();

    const CLIENTS: usize = 6;
    const REQUESTS: usize = 4;
    let mut workers = Vec::new();
    for client in 0..CLIENTS {
        workers.push(std::thread::spawn(move || {
            let chaos = Chaos::seeded(seed);
            // (responses_seen, malformed_sent, slowloris_sent)
            let mut tally = (0usize, 0usize, 0usize);
            for request in 0..REQUESTS {
                match chaos.fault_for_request(client, request) {
                    None => {
                        let id = format!("c{client}r{request}");
                        let resp = roundtrip(addr, &tiny_synth(&id, 1500), Duration::from_secs(8))
                            .unwrap_or_else(|| panic!("good request {id} must get a response"));
                        assert!(
                            matches!(status(&resp), "ok" | "degraded" | "rejected" | "error"),
                            "{resp:?}"
                        );
                        assert_eq!(resp.get("id").and_then(Json::as_str), Some(id.as_str()));
                        assert_certificate_discipline(&resp);
                        tally.0 += 1;
                    }
                    Some(ServiceFault::MalformedJson) => {
                        let resp = roundtrip(addr, "{\"id\":1,]]]", Duration::from_secs(5))
                            .expect("malformed lines are diagnosed, not dropped");
                        assert_eq!(status(&resp), "rejected", "{resp:?}");
                        assert_eq!(resp.get("kind").and_then(Json::as_str), Some("malformed"));
                        tally.0 += 1;
                        tally.1 += 1;
                    }
                    Some(ServiceFault::Slowloris) => {
                        let mut stream = connect(addr);
                        stream.write_all(b"{\"id\":\"slow").expect("partial frame");
                        std::thread::sleep(frame_deadline + Duration::from_millis(400));
                        let line = read_line(&mut stream, Duration::from_secs(5))
                            .expect("the frame deadline cuts a slowloris with a diagnosis");
                        let resp = Json::parse(&line).expect("slowloris rejection parses");
                        assert_eq!(status(&resp), "rejected", "{resp:?}");
                        assert_eq!(resp.get("kind").and_then(Json::as_str), Some("malformed"));
                        tally.0 += 1;
                        tally.2 += 1;
                    }
                    Some(ServiceFault::Disconnect) => {
                        let mut stream = connect(addr);
                        stream
                            .write_all(b"{\"id\":\"gone\",\"cmd\":")
                            .expect("half frame");
                        drop(stream); // no response owed; the daemon must shrug
                    }
                    Some(ServiceFault::DeadlineStorm) => {
                        let id = format!("c{client}storm{request}");
                        let resp = roundtrip(addr, &tiny_synth(&id, 1), Duration::from_secs(8))
                            .expect("storm requests still get typed outcomes");
                        assert!(
                            matches!(status(&resp), "ok" | "degraded" | "rejected" | "error"),
                            "{resp:?}"
                        );
                        assert_certificate_discipline(&resp);
                        tally.0 += 1;
                    }
                }
            }
            tally
        }));
    }
    let mut responses = 0;
    let mut malformed_sent = 0;
    let mut slowloris_sent = 0;
    for worker in workers {
        let (r, m, s) = worker.join().expect("client thread must not die");
        responses += r;
        malformed_sent += m;
        slowloris_sent += s;
    }
    assert!(responses > 0, "the schedule must exercise response paths");

    // The daemon took the whole storm and still answers.
    let pong = roundtrip(
        addr,
        "{\"id\":\"alive\",\"cmd\":\"ping\"}",
        Duration::from_secs(2),
    )
    .expect("liveness probe after the soak");
    assert_eq!(status(&pong), "pong");

    service.handle().shutdown();
    let t0 = Instant::now();
    let snap = service.join();
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "drain must respect its deadline"
    );
    assert_eq!(snap.panics, 0, "no request may poison the daemon: {snap:?}");
    assert_eq!(
        snap.malformed,
        (malformed_sent + slowloris_sent) as u64,
        "every hostile frame is diagnosed exactly once: {snap:?}"
    );
}
