//! `troy-service`: a hardened synthesis daemon.
//!
//! The paper's run-time protection story assumes the synthesis pipeline
//! itself stays available while designs are being produced and
//! re-synthesized; this crate gives the workspace that serving layer. It
//! exposes the supervised synthesis path (`troy-resilience` over the
//! `troy-portfolio` solvers) as a long-running TCP daemon speaking a
//! newline-delimited JSON protocol, with the robustness contract the
//! chaos suite pins down:
//!
//! - every request terminates in exactly one of {valid design, typed
//!   degradation, typed rejection} — no hangs, no silent drops;
//! - overload is shed at admission with a `retry_after_ms` hint, never
//!   buffered unboundedly ([`Admission`]);
//! - a flapping back end trips a per-backend circuit breaker
//!   ([`Breakers`]) and is skipped before burning its retry budget;
//! - a panicking request costs one connection, never the daemon;
//! - `shutdown` drains gracefully within a bounded deadline.
//!
//! Start one with [`Service::start`], or from the CLI via
//! `troyhls serve`.

pub mod admission;
pub mod breaker;
pub mod json;
pub mod protocol;
pub mod server;
pub mod stats;

pub use admission::{Admission, Admitted, Permit};
pub use breaker::{Breaker, BreakerConfig, BreakerDecision, Breakers};
pub use json::{escape, Json};
pub use protocol::{parse_request, Cmd, RejectKind, Request, Response};
pub use server::{build_problem, request_key, Service, ServiceConfig, ServiceHandle, MAX_LINE};
pub use stats::{ServiceStats, StatsSnapshot};
