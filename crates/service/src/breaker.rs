//! Per-backend circuit breakers: closed → open → half-open.
//!
//! A breaker protects the supervisor's retry budget from a back end that
//! is currently flapping (panicking, miscosting, timing out): after
//! `failure_threshold` consecutive failures the breaker *opens* and the
//! back end is excluded from supervised runs (via
//! [`SupervisorConfig::disabled`](troy_resilience::SupervisorConfig))
//! until `cooldown` has elapsed. Once the cooldown passes, the breaker is
//! *half-open*: the rung runs again, and the next recorded outcome either
//! re-closes the breaker (success) or re-opens it for another cooldown
//! (failure).
//!
//! Timing is deterministic by construction: every method takes `now` as
//! a parameter instead of reading a clock, so tests (and the chaos
//! harness) drive breakers through any schedule they like. The half-open
//! probe is not rationed — between cooldown expiry and the next recorded
//! outcome, several in-flight requests may all try the rung; that is a
//! deliberate simplification, bounded by the supervisor's own deadlines.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use troy_portfolio::Backend;

/// Breaker policy, shared by all backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker excludes its back end.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(10),
        }
    }
}

/// One backend's breaker state.
#[derive(Debug, Clone, Copy, Default)]
struct BreakerState {
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

/// The full breaker panel: one breaker per [`Backend`], indexed by
/// [`Backend::priority`].
#[derive(Debug)]
pub struct Breakers {
    config: BreakerConfig,
    states: Mutex<[BreakerState; Backend::ALL.len()]>,
}

impl Breakers {
    /// A panel with every breaker closed.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        Breakers {
            config,
            states: Mutex::new([BreakerState::default(); Backend::ALL.len()]),
        }
    }

    /// Back ends whose breaker is open at `now` — the supervisor's
    /// `disabled` list for a request admitted at that instant. A breaker
    /// whose cooldown has expired is half-open and NOT listed (the next
    /// run is its probe).
    #[must_use]
    pub fn open_at(&self, now: Instant) -> Vec<Backend> {
        let states = self.states.lock().expect("breaker lock");
        Backend::ALL
            .into_iter()
            .filter(|b| {
                states[b.priority()]
                    .open_until
                    .is_some_and(|until| now < until)
            })
            .collect()
    }

    /// How long until the soonest open breaker half-opens; `None` when
    /// no breaker is open at `now`.
    #[must_use]
    pub fn retry_after(&self, now: Instant) -> Option<Duration> {
        let states = self.states.lock().expect("breaker lock");
        states
            .iter()
            .filter_map(|s| s.open_until)
            .filter(|&until| now < until)
            .map(|until| until - now)
            .min()
    }

    /// Records a successful run of `backend`: the breaker re-closes and
    /// the failure streak resets.
    pub fn record_success(&self, backend: Backend, _now: Instant) {
        let mut states = self.states.lock().expect("breaker lock");
        states[backend.priority()] = BreakerState::default();
    }

    /// Records a failed run of `backend`; at the threshold the breaker
    /// opens until `now + cooldown`. A failure while half-open re-opens
    /// immediately (the probe failed).
    pub fn record_failure(&self, backend: Backend, now: Instant) {
        let mut states = self.states.lock().expect("breaker lock");
        let state = &mut states[backend.priority()];
        let half_open_probe_failed = state
            .open_until
            .is_some_and(|until| now >= until && state.consecutive_failures > 0);
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        if state.consecutive_failures >= self.config.failure_threshold || half_open_probe_failed {
            state.open_until = Some(now + self.config.cooldown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel(threshold: u32, cooldown_ms: u64) -> Breakers {
        Breakers::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn opens_at_the_threshold_and_half_opens_after_cooldown() {
        let b = panel(3, 100);
        let t0 = Instant::now();
        assert!(b.open_at(t0).is_empty());
        b.record_failure(Backend::Ilp, t0);
        b.record_failure(Backend::Ilp, t0);
        assert!(b.open_at(t0).is_empty(), "below threshold stays closed");
        b.record_failure(Backend::Ilp, t0);
        assert_eq!(b.open_at(t0), vec![Backend::Ilp]);
        assert_eq!(b.retry_after(t0), Some(Duration::from_millis(100)));
        // Injected clock: after the cooldown the breaker is half-open.
        let later = t0 + Duration::from_millis(150);
        assert!(b.open_at(later).is_empty(), "half-open allows a probe");
        assert_eq!(b.retry_after(later), None);
    }

    #[test]
    fn half_open_probe_outcome_decides() {
        let b = panel(2, 100);
        let t0 = Instant::now();
        b.record_failure(Backend::Exact, t0);
        b.record_failure(Backend::Exact, t0);
        let probe_time = t0 + Duration::from_millis(120);
        assert!(b.open_at(probe_time).is_empty());
        // A failing probe re-opens for a full cooldown immediately.
        b.record_failure(Backend::Exact, probe_time);
        assert_eq!(b.open_at(probe_time), vec![Backend::Exact]);
        assert_eq!(b.retry_after(probe_time), Some(Duration::from_millis(100)));
        // A succeeding probe re-closes and resets the streak.
        let again = probe_time + Duration::from_millis(120);
        b.record_success(Backend::Exact, again);
        assert!(b.open_at(again).is_empty());
        b.record_failure(Backend::Exact, again);
        assert!(b.open_at(again).is_empty(), "streak was reset by success");
    }

    #[test]
    fn breakers_are_independent_per_backend() {
        let b = panel(1, 100);
        let t0 = Instant::now();
        b.record_failure(Backend::Annealing, t0);
        assert_eq!(b.open_at(t0), vec![Backend::Annealing]);
        for other in [Backend::Exact, Backend::Ilp, Backend::Greedy] {
            assert!(!b.open_at(t0).contains(&other));
        }
    }
}
