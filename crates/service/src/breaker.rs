//! Per-backend circuit breakers: closed → open → half-open.
//!
//! A breaker protects the supervisor's retry budget from a back end that
//! is currently flapping (panicking, miscosting, timing out): after
//! `failure_threshold` consecutive failures the breaker *opens* and the
//! back end is excluded from supervised runs (via
//! [`SupervisorConfig::disabled`](troy_resilience::SupervisorConfig))
//! until `cooldown` has elapsed. Once the cooldown passes, the breaker is
//! *half-open*: the rung runs again, and the next recorded outcome either
//! re-closes the breaker (success) or re-opens it for another cooldown
//! (failure).
//!
//! Timing is deterministic by construction: every method takes `now` as
//! a parameter instead of reading a clock, so tests (and the chaos
//! harness) drive breakers through any schedule they like. The panel's
//! half-open probe is not rationed — between cooldown expiry and the
//! next recorded outcome, several in-flight requests may all try the
//! rung; that is a deliberate simplification, bounded by the
//! supervisor's own deadlines.
//!
//! [`Breaker`] is the rationed single-entity variant used for cluster
//! worker health: at most one half-open trial is admitted at a time
//! ([`BreakerDecision::Admit`] with `probe: true`); concurrent callers
//! get a typed [`BreakerDecision::Reject`] with a retry hint instead of
//! all storming the recovering worker — or hanging.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use troy_portfolio::Backend;

/// Breaker policy, shared by all backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker excludes its back end.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(10),
        }
    }
}

/// One backend's breaker state.
#[derive(Debug, Clone, Copy, Default)]
struct BreakerState {
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

/// The full breaker panel: one breaker per [`Backend`], indexed by
/// [`Backend::priority`].
#[derive(Debug)]
pub struct Breakers {
    config: BreakerConfig,
    states: Mutex<[BreakerState; Backend::ALL.len()]>,
}

impl Breakers {
    /// A panel with every breaker closed.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        Breakers {
            config,
            states: Mutex::new([BreakerState::default(); Backend::ALL.len()]),
        }
    }

    /// Back ends whose breaker is open at `now` — the supervisor's
    /// `disabled` list for a request admitted at that instant. A breaker
    /// whose cooldown has expired is half-open and NOT listed (the next
    /// run is its probe).
    #[must_use]
    pub fn open_at(&self, now: Instant) -> Vec<Backend> {
        let states = self.states.lock().expect("breaker lock");
        Backend::ALL
            .into_iter()
            .filter(|b| {
                states[b.priority()]
                    .open_until
                    .is_some_and(|until| now < until)
            })
            .collect()
    }

    /// How long until the soonest open breaker half-opens; `None` when
    /// no breaker is open at `now`.
    #[must_use]
    pub fn retry_after(&self, now: Instant) -> Option<Duration> {
        let states = self.states.lock().expect("breaker lock");
        states
            .iter()
            .filter_map(|s| s.open_until)
            .filter(|&until| now < until)
            .map(|until| until - now)
            .min()
    }

    /// Records a successful run of `backend`: the breaker re-closes and
    /// the failure streak resets.
    pub fn record_success(&self, backend: Backend, _now: Instant) {
        let mut states = self.states.lock().expect("breaker lock");
        states[backend.priority()] = BreakerState::default();
    }

    /// Records a failed run of `backend`; at the threshold the breaker
    /// opens until `now + cooldown`. A failure while half-open re-opens
    /// immediately (the probe failed).
    pub fn record_failure(&self, backend: Backend, now: Instant) {
        let mut states = self.states.lock().expect("breaker lock");
        let state = &mut states[backend.priority()];
        let half_open_probe_failed = state
            .open_until
            .is_some_and(|until| now >= until && state.consecutive_failures > 0);
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        if state.consecutive_failures >= self.config.failure_threshold || half_open_probe_failed {
            state.open_until = Some(now + self.config.cooldown);
        }
    }
}

/// What a rationed [`Breaker`] decides for one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Proceed. `probe` is `true` when this admission is the single
    /// half-open trial; the caller must report the outcome through
    /// [`Breaker::record_success`]/[`Breaker::record_failure`] (an
    /// abandoned probe claim expires after one cooldown, so a crashed
    /// prober cannot wedge the breaker open forever).
    Admit {
        /// This admission is the half-open trial request.
        probe: bool,
    },
    /// Typed rejection: the breaker is open, or another caller already
    /// holds the half-open probe slot.
    Reject {
        /// Hint until the next worthwhile attempt.
        retry_after: Duration,
    },
}

/// A rationed closed → open → half-open breaker for a single entity
/// (one cluster worker), sharing [`BreakerConfig`] with the panel.
///
/// Unlike [`Breakers`], the half-open state admits exactly one trial at
/// a time: the first `admit` after the cooldown claims the probe slot,
/// and every concurrent caller is rejected with a retry hint until the
/// probe's outcome is recorded. Methods take `now` explicitly, so the
/// transition schedule is fully deterministic under test.
#[derive(Debug)]
pub struct Breaker {
    config: BreakerConfig,
    state: Mutex<RationedState>,
}

#[derive(Debug, Clone, Copy, Default)]
struct RationedState {
    consecutive_failures: u32,
    open_until: Option<Instant>,
    /// When the outstanding half-open probe was admitted, if any.
    probe_started: Option<Instant>,
}

impl Breaker {
    /// A closed breaker.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        Breaker {
            config,
            state: Mutex::new(RationedState::default()),
        }
    }

    /// Decides one admission at `now`: closed admits freely, open
    /// rejects with the remaining cooldown, half-open admits exactly one
    /// probe and rejects everyone else until its outcome lands.
    pub fn admit(&self, now: Instant) -> BreakerDecision {
        let mut state = self.state.lock().expect("breaker lock");
        match state.open_until {
            None => BreakerDecision::Admit { probe: false },
            Some(until) if now < until => BreakerDecision::Reject {
                retry_after: until - now,
            },
            Some(_) => {
                // Cooldown elapsed: half-open. A live probe claim blocks
                // further trials; a stale one (prober died without
                // reporting) is reclaimed after a full cooldown.
                let claimed = state
                    .probe_started
                    .is_some_and(|t0| now.saturating_duration_since(t0) < self.config.cooldown);
                if claimed {
                    BreakerDecision::Reject {
                        retry_after: self.config.cooldown / 4,
                    }
                } else {
                    state.probe_started = Some(now);
                    BreakerDecision::Admit { probe: true }
                }
            }
        }
    }

    /// `true` while the breaker is open and its cooldown has not yet
    /// elapsed at `now` (half-open is *not* open: a probe may run).
    #[must_use]
    pub fn is_open(&self, now: Instant) -> bool {
        let state = self.state.lock().expect("breaker lock");
        state.open_until.is_some_and(|until| now < until)
    }

    /// Remaining cooldown at `now`; `None` when closed or half-open.
    #[must_use]
    pub fn retry_after(&self, now: Instant) -> Option<Duration> {
        let state = self.state.lock().expect("breaker lock");
        state
            .open_until
            .filter(|&until| now < until)
            .map(|until| until - now)
    }

    /// Records a success: the breaker closes and the streak resets
    /// (this is also how a half-open probe's win is reported).
    pub fn record_success(&self, _now: Instant) {
        let mut state = self.state.lock().expect("breaker lock");
        *state = RationedState::default();
    }

    /// Puts the breaker straight into the half-open state at `now`: the
    /// next `admit` is the single probation trial, whose outcome closes
    /// or re-opens the breaker as usual. The respawn supervisor arms a
    /// revived worker's breaker this way, so a newcomer earns back full
    /// traffic with one successful trial instead of inheriting either a
    /// dead slot's open cooldown or unconditional trust.
    pub fn arm_probation(&self, now: Instant) {
        let mut state = self.state.lock().expect("breaker lock");
        *state = RationedState {
            consecutive_failures: 0,
            // `open_until == now` means the cooldown has already elapsed:
            // half-open, probe slot free.
            open_until: Some(now),
            probe_started: None,
        };
    }

    /// Records a failure; at the threshold the breaker opens until
    /// `now + cooldown`. A failure while half-open (the probe losing)
    /// re-opens immediately for another full cooldown.
    pub fn record_failure(&self, now: Instant) {
        let mut state = self.state.lock().expect("breaker lock");
        let half_open_probe_failed = state.open_until.is_some_and(|until| now >= until);
        state.probe_started = None;
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        if state.consecutive_failures >= self.config.failure_threshold || half_open_probe_failed {
            state.open_until = Some(now + self.config.cooldown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel(threshold: u32, cooldown_ms: u64) -> Breakers {
        Breakers::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn opens_at_the_threshold_and_half_opens_after_cooldown() {
        let b = panel(3, 100);
        let t0 = Instant::now();
        assert!(b.open_at(t0).is_empty());
        b.record_failure(Backend::Ilp, t0);
        b.record_failure(Backend::Ilp, t0);
        assert!(b.open_at(t0).is_empty(), "below threshold stays closed");
        b.record_failure(Backend::Ilp, t0);
        assert_eq!(b.open_at(t0), vec![Backend::Ilp]);
        assert_eq!(b.retry_after(t0), Some(Duration::from_millis(100)));
        // Injected clock: after the cooldown the breaker is half-open.
        let later = t0 + Duration::from_millis(150);
        assert!(b.open_at(later).is_empty(), "half-open allows a probe");
        assert_eq!(b.retry_after(later), None);
    }

    #[test]
    fn half_open_probe_outcome_decides() {
        let b = panel(2, 100);
        let t0 = Instant::now();
        b.record_failure(Backend::Exact, t0);
        b.record_failure(Backend::Exact, t0);
        let probe_time = t0 + Duration::from_millis(120);
        assert!(b.open_at(probe_time).is_empty());
        // A failing probe re-opens for a full cooldown immediately.
        b.record_failure(Backend::Exact, probe_time);
        assert_eq!(b.open_at(probe_time), vec![Backend::Exact]);
        assert_eq!(b.retry_after(probe_time), Some(Duration::from_millis(100)));
        // A succeeding probe re-closes and resets the streak.
        let again = probe_time + Duration::from_millis(120);
        b.record_success(Backend::Exact, again);
        assert!(b.open_at(again).is_empty());
        b.record_failure(Backend::Exact, again);
        assert!(b.open_at(again).is_empty(), "streak was reset by success");
    }

    fn rationed(threshold: u32, cooldown_ms: u64) -> Breaker {
        Breaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn rationed_breaker_walks_closed_open_half_open() {
        let b = rationed(2, 100);
        let t0 = Instant::now();
        assert_eq!(b.admit(t0), BreakerDecision::Admit { probe: false });
        b.record_failure(t0);
        assert_eq!(b.admit(t0), BreakerDecision::Admit { probe: false });
        b.record_failure(t0);
        assert!(b.is_open(t0));
        assert_eq!(
            b.admit(t0),
            BreakerDecision::Reject {
                retry_after: Duration::from_millis(100)
            }
        );
        assert_eq!(b.retry_after(t0), Some(Duration::from_millis(100)));
        // Cooldown elapsed: exactly one probe is admitted.
        let half_open = t0 + Duration::from_millis(150);
        assert!(!b.is_open(half_open));
        assert_eq!(b.admit(half_open), BreakerDecision::Admit { probe: true });
        // The probe succeeding re-closes; the streak is gone.
        b.record_success(half_open);
        assert_eq!(b.admit(half_open), BreakerDecision::Admit { probe: false });
        b.record_failure(half_open);
        assert!(!b.is_open(half_open), "streak was reset by the success");
    }

    #[test]
    fn failed_probe_reopens_for_a_full_cooldown() {
        let b = rationed(2, 100);
        let t0 = Instant::now();
        b.record_failure(t0);
        b.record_failure(t0);
        let probe_time = t0 + Duration::from_millis(120);
        assert_eq!(b.admit(probe_time), BreakerDecision::Admit { probe: true });
        b.record_failure(probe_time);
        assert!(b.is_open(probe_time));
        assert_eq!(b.retry_after(probe_time), Some(Duration::from_millis(100)));
    }

    #[test]
    fn half_open_admits_exactly_one_probe_under_concurrency() {
        // Satellite contract: N concurrent admissions against a
        // half-open breaker yield exactly one trial; every loser gets a
        // typed rejection with a retry hint — immediately, not a hang.
        let b = rationed(1, 50);
        let t0 = Instant::now();
        b.record_failure(t0);
        assert!(b.is_open(t0));
        let half_open = t0 + Duration::from_millis(80);
        let decisions: Vec<BreakerDecision> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| scope.spawn(|| b.admit(half_open)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        let probes = decisions
            .iter()
            .filter(|d| matches!(d, BreakerDecision::Admit { probe: true }))
            .count();
        assert_eq!(probes, 1, "exactly one trial admitted: {decisions:?}");
        for d in &decisions {
            match d {
                BreakerDecision::Admit { probe } => assert!(*probe, "only the trial may pass"),
                BreakerDecision::Reject { retry_after } => {
                    assert!(*retry_after > Duration::ZERO, "losers get a usable hint");
                }
            }
        }
        // While the probe is outstanding, later arrivals keep losing…
        let later = half_open + Duration::from_millis(1);
        assert!(matches!(b.admit(later), BreakerDecision::Reject { .. }));
        // …and its success re-opens the floodgates for everyone.
        b.record_success(later);
        assert_eq!(b.admit(later), BreakerDecision::Admit { probe: false });
    }

    #[test]
    fn abandoned_probe_claim_expires_after_one_cooldown() {
        let b = rationed(1, 50);
        let t0 = Instant::now();
        b.record_failure(t0);
        let half_open = t0 + Duration::from_millis(60);
        assert_eq!(b.admit(half_open), BreakerDecision::Admit { probe: true });
        // The prober dies without reporting: the claim goes stale after
        // a cooldown and the next caller may try again.
        let stale = half_open + Duration::from_millis(55);
        assert_eq!(b.admit(stale), BreakerDecision::Admit { probe: true });
    }

    #[test]
    fn armed_probation_rations_one_trial_and_its_outcome_decides() {
        // A respawned worker starts in probation: exactly one trial is
        // admitted; success opens the floodgates, failure re-opens for a
        // full cooldown.
        let b = rationed(3, 100);
        let t0 = Instant::now();
        b.arm_probation(t0);
        assert!(!b.is_open(t0), "probation is half-open, not open");
        assert_eq!(b.admit(t0), BreakerDecision::Admit { probe: true });
        assert!(
            matches!(b.admit(t0), BreakerDecision::Reject { .. }),
            "the probe slot is rationed during probation too"
        );
        b.record_success(t0);
        assert_eq!(b.admit(t0), BreakerDecision::Admit { probe: false });
        // Re-arm and fail the trial: one failure is enough to re-open,
        // regardless of the threshold.
        b.arm_probation(t0);
        assert_eq!(b.admit(t0), BreakerDecision::Admit { probe: true });
        b.record_failure(t0);
        assert!(b.is_open(t0), "a failed probation trial re-opens");
        assert_eq!(b.retry_after(t0), Some(Duration::from_millis(100)));
    }

    #[test]
    fn breakers_are_independent_per_backend() {
        let b = panel(1, 100);
        let t0 = Instant::now();
        b.record_failure(Backend::Annealing, t0);
        assert_eq!(b.open_at(t0), vec![Backend::Annealing]);
        for other in [Backend::Exact, Backend::Ilp, Backend::Greedy] {
            assert!(!b.open_at(t0).contains(&other));
        }
    }
}
