//! Bounded admission: an in-flight budget plus a bounded wait queue,
//! with typed load shedding when both are full.
//!
//! The invariant the daemon sells is *no unbounded buffering*: a request
//! either gets a permit (possibly after a bounded queue wait), or it is
//! shed with an explicit `Overloaded { retry_after }` — it is never
//! parked indefinitely, and memory use is bounded by
//! `max_inflight + queue_depth` requests regardless of client count.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// The admission decision.
#[derive(Debug)]
pub enum Admitted<'a> {
    /// Admitted; drop the permit to release the slot.
    Permit(Permit<'a>),
    /// Shed: the queue was full, or the queue wait exceeded its budget.
    Shed {
        /// Back-pressure hint: how long the client should wait before
        /// retrying, scaled by the queue depth observed at rejection.
        retry_after: Duration,
    },
}

#[derive(Debug, Default)]
struct Gate {
    inflight: usize,
    queued: usize,
}

/// The admission gate.
#[derive(Debug)]
pub struct Admission {
    max_inflight: usize,
    queue_depth: usize,
    gate: Mutex<Gate>,
    freed: Condvar,
}

impl Admission {
    /// A gate admitting `max_inflight` concurrent requests with at most
    /// `queue_depth` more waiting. Both are clamped to ≥ 1.
    #[must_use]
    pub fn new(max_inflight: usize, queue_depth: usize) -> Self {
        Admission {
            max_inflight: max_inflight.max(1),
            queue_depth: queue_depth.max(1),
            gate: Mutex::new(Gate::default()),
            freed: Condvar::new(),
        }
    }

    /// Requests admission, waiting in the bounded queue for at most
    /// `wait_budget`.
    pub fn acquire(&self, wait_budget: Duration) -> Admitted<'_> {
        let mut gate = self.gate.lock().expect("admission lock");
        if gate.inflight < self.max_inflight {
            gate.inflight += 1;
            return Admitted::Permit(Permit { admission: self });
        }
        if gate.queued >= self.queue_depth {
            let retry_after = retry_hint(gate.queued);
            return Admitted::Shed { retry_after };
        }
        gate.queued += 1;
        let deadline = Instant::now() + wait_budget;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                gate.queued -= 1;
                let retry_after = retry_hint(gate.queued);
                return Admitted::Shed { retry_after };
            }
            let (g, timeout) = self
                .freed
                .wait_timeout(gate, remaining)
                .expect("admission lock");
            gate = g;
            if gate.inflight < self.max_inflight {
                gate.queued -= 1;
                gate.inflight += 1;
                return Admitted::Permit(Permit { admission: self });
            }
            if timeout.timed_out() {
                gate.queued -= 1;
                let retry_after = retry_hint(gate.queued);
                return Admitted::Shed { retry_after };
            }
        }
    }

    /// Current (inflight, queued) occupancy, for drain reporting.
    #[must_use]
    pub fn occupancy(&self) -> (usize, usize) {
        let gate = self.gate.lock().expect("admission lock");
        (gate.inflight, gate.queued)
    }

    fn release(&self) {
        let mut gate = self.gate.lock().expect("admission lock");
        gate.inflight = gate.inflight.saturating_sub(1);
        drop(gate);
        self.freed.notify_one();
    }
}

/// 100 ms per request already queued ahead, floor 100 ms: a rough,
/// monotone congestion signal rather than a latency model.
fn retry_hint(queued: usize) -> Duration {
    Duration::from_millis(100) * (queued as u32 + 1)
}

/// RAII admission permit; dropping it frees the in-flight slot and wakes
/// one queued waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_the_budget_then_sheds_past_the_queue() {
        let a = Admission::new(2, 1);
        let p1 = match a.acquire(Duration::ZERO) {
            Admitted::Permit(p) => p,
            Admitted::Shed { .. } => panic!("slot 1 free"),
        };
        let p2 = match a.acquire(Duration::ZERO) {
            Admitted::Permit(p) => p,
            Admitted::Shed { .. } => panic!("slot 2 free"),
        };
        // Budget full, zero wait: queued momentarily, then shed.
        let Admitted::Shed { retry_after } = a.acquire(Duration::ZERO) else {
            panic!("must shed at zero wait budget");
        };
        assert!(retry_after >= Duration::from_millis(100));
        drop(p1);
        let _p3 = match a.acquire(Duration::ZERO) {
            Admitted::Permit(p) => p,
            Admitted::Shed { .. } => panic!("released slot reusable"),
        };
        drop(p2);
        assert_eq!(a.occupancy().0, 1);
    }

    #[test]
    fn queue_bound_is_enforced_without_waiting() {
        let a = Arc::new(Admission::new(1, 2));
        let p = match a.acquire(Duration::ZERO) {
            Admitted::Permit(p) => p,
            Admitted::Shed { .. } => panic!("first slot free"),
        };
        // Two threads park in the queue; a third must shed instantly.
        let mut waiters = Vec::new();
        for _ in 0..2 {
            let a = Arc::clone(&a);
            waiters.push(std::thread::spawn(move || {
                matches!(a.acquire(Duration::from_secs(5)), Admitted::Permit(_))
            }));
        }
        // Wait until both are queued.
        while a.occupancy().1 < 2 {
            std::thread::yield_now();
        }
        let Admitted::Shed { retry_after } = a.acquire(Duration::from_secs(5)) else {
            panic!("queue full: must shed immediately, not wait");
        };
        assert!(retry_after >= Duration::from_millis(300), "{retry_after:?}");
        drop(p);
        // Exactly one queued waiter gets the slot each time it frees; let
        // both finish by releasing sequentially.
        let mut admitted = 0;
        for w in waiters {
            if w.join().expect("waiter") {
                admitted += 1;
            }
            // Free the slot the admitted waiter holds (its permit was
            // dropped inside the closure when `matches!` finished).
        }
        assert_eq!(admitted, 2, "queued waiters are admitted in turn");
        assert_eq!(a.occupancy(), (0, 0));
    }

    #[test]
    fn queue_wait_times_out_to_a_typed_shed() {
        let a = Admission::new(1, 4);
        let _p = match a.acquire(Duration::ZERO) {
            Admitted::Permit(p) => p,
            Admitted::Shed { .. } => panic!("first slot free"),
        };
        let t0 = Instant::now();
        let Admitted::Shed { .. } = a.acquire(Duration::from_millis(50)) else {
            panic!("no slot ever frees: must time out to a shed");
        };
        assert!(t0.elapsed() >= Duration::from_millis(45));
        assert_eq!(a.occupancy(), (1, 0), "timed-out waiter left the queue");
    }
}
