//! The newline-delimited JSON request/response protocol.
//!
//! One request per line, one response line per request, in order:
//!
//! ```text
//! {"id":"r1","cmd":"synth","benchmark":"polynom","mode":"recovery",
//!  "catalog":"table1","lambda_det":4,"lambda_rec":3,"area":22000,
//!  "deadline_ms":2000,"no_degrade":false}
//! {"id":"r2","cmd":"ping"}
//! {"id":"r3","cmd":"stats"}
//! {"id":"r4","cmd":"shutdown"}
//! ```
//!
//! A `synth` request names either a built-in `benchmark` or carries the
//! graph inline as `dfg` text (the `troy-dfg` format with `\n` escapes).
//! A `probe` request has the same shape but only consults the result
//! cache: `ok` (with the cached design) on a hit, `miss` otherwise —
//! no solver ever runs. Every response carries `status` — `ok`,
//! `degraded`, `miss`, `rejected` or `error` — plus a `stats` trailer
//! with the daemon's counters, so a client always learns both its own
//! outcome and the service's health.

use std::time::Duration;

use troyhls::{Catalog, Mode};

use crate::json::{escape, Json};
use crate::stats::StatsSnapshot;

/// What a request asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmd {
    /// Synthesize a design.
    Synth,
    /// Result-cache lookup only: a `synth`-shaped request that answers
    /// `ok` (with the cached design and its certificate) on a hit and
    /// `miss` without running any solver otherwise. This is the peer
    /// cache protocol: a cluster router probes the key-owning worker's
    /// cache over the wire before dispatching the synthesis elsewhere,
    /// so one worker's warm result serves requests landing on another.
    Probe,
    /// Result-cache insert: a `synth`-shaped request carrying a
    /// serialized cache entry (`entry`) that the daemon re-validates
    /// against the rebuilt problem — the same certified-store gate the
    /// synthesis path uses — and stores on success. This is the
    /// replication protocol: a cluster router writes a fresh result
    /// behind to the key's ring successors so the entry outlives its
    /// owner. Admission-bypassing like `probe`; no solver ever runs.
    Put,
    /// Liveness probe.
    Ping,
    /// Report the serve-path counters.
    Stats,
    /// Begin a graceful drain.
    Shutdown,
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: String,
    /// The command.
    pub cmd: Cmd,
    /// Built-in benchmark name (`synth`).
    pub benchmark: Option<String>,
    /// Inline DFG text (`synth`), alternative to `benchmark`.
    pub dfg: Option<String>,
    /// Protection mode; defaults to detection+recovery.
    pub mode: Mode,
    /// Vendor catalog; defaults to the paper's 8-vendor catalog.
    pub catalog: Catalog,
    /// Detection-phase latency override.
    pub lambda_det: Option<usize>,
    /// Recovery-phase latency override.
    pub lambda_rec: Option<usize>,
    /// Area cap; defaults to unlimited.
    pub area: u64,
    /// Per-request deadline; `None` means the server default.
    pub deadline: Option<Duration>,
    /// `true` pins the run to the primary rung (no ladder descent).
    pub no_degrade: bool,
    /// Serialized cache entry (re-rendered JSON object) carried by a
    /// `put` request.
    pub entry: Option<String>,
    /// `true` asks a `probe` hit to embed the raw cache entry in the
    /// response (`entry` field) so the prober can replicate it onward.
    pub want_entry: bool,
}

/// Parses one request line. The error string is relayed verbatim to the
/// client in a `malformed` rejection.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let json = Json::parse(line).ok_or("request is not valid protocol JSON")?;
    if !matches!(json, Json::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let id = match json.get("id") {
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Num(n)) => n.to_string(),
        None => return Err("request is missing `id`".into()),
        Some(_) => return Err("`id` must be a string or integer".into()),
    };
    let cmd = match json.get("cmd").and_then(Json::as_str) {
        Some("synth") => Cmd::Synth,
        Some("probe") => Cmd::Probe,
        Some("put") => Cmd::Put,
        Some("ping") => Cmd::Ping,
        Some("stats") => Cmd::Stats,
        Some("shutdown") => Cmd::Shutdown,
        Some(other) => return Err(format!("unknown cmd `{other}`")),
        None => return Err("request is missing `cmd`".into()),
    };
    let mode = match json.get("mode").and_then(Json::as_str) {
        None | Some("recovery") => Mode::DetectionRecovery,
        Some("detection") => Mode::DetectionOnly,
        Some(other) => return Err(format!("unknown mode `{other}`")),
    };
    let catalog = match json.get("catalog").and_then(Json::as_str) {
        None | Some("paper8") => Catalog::paper8(),
        Some("table1") => Catalog::table1(),
        Some(other) => return Err(format!("unknown catalog `{other}`")),
    };
    let opt_usize = |key: &str| -> Result<Option<usize>, String> {
        match json.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(Json::Num(n)) => Ok(Some(*n as usize)),
            Some(_) => Err(format!("`{key}` must be a non-negative integer")),
        }
    };
    let deadline = match json.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(Json::Num(n)) => {
            if *n == 0 {
                return Err("`deadline_ms` must be positive".into());
            }
            Some(Duration::from_millis(*n))
        }
        Some(_) => return Err("`deadline_ms` must be a positive integer".into()),
    };
    Ok(Request {
        id,
        cmd,
        benchmark: json
            .get("benchmark")
            .and_then(Json::as_str)
            .map(str::to_owned),
        dfg: json.get("dfg").and_then(Json::as_str).map(str::to_owned),
        mode,
        catalog,
        lambda_det: opt_usize("lambda_det")?,
        lambda_rec: opt_usize("lambda_rec")?,
        area: match json.get("area") {
            None | Some(Json::Null) => u64::MAX,
            Some(Json::Num(n)) => *n,
            Some(_) => return Err("`area` must be a non-negative integer".into()),
        },
        deadline,
        no_degrade: match json.get("no_degrade") {
            None | Some(Json::Null) => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("`no_degrade` must be a boolean".into()),
        },
        entry: match json.get("entry") {
            None | Some(Json::Null) => {
                if cmd == Cmd::Put {
                    return Err("`put` requires an `entry` object".into());
                }
                None
            }
            Some(obj @ Json::Obj(_)) => Some(obj.render()),
            Some(_) => return Err("`entry` must be a JSON object".into()),
        },
        want_entry: match json.get("want_entry") {
            None | Some(Json::Null) => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("`want_entry` must be a boolean".into()),
        },
    })
}

/// Why a request was rejected or failed — the `kind` field of a
/// `rejected`/`error` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// Shed at admission: queue and in-flight budget full.
    Overloaded,
    /// Every solver back end's circuit breaker is open.
    CircuitOpen,
    /// The line was not a parseable request.
    Malformed,
    /// The problem statement is invalid (bad DFG, unknown benchmark…).
    BadRequest,
    /// The deadline expired before any back end produced a design.
    Deadline,
    /// The problem is provably infeasible or every rung failed.
    Failed,
    /// The request handler panicked (isolated; the daemon survives).
    Internal,
    /// The daemon is draining and no longer accepts work.
    Draining,
    /// No live worker could accept the request (cluster router: every
    /// worker dead, draining or breaker-demoted). Carries
    /// `retry_after_ms` like the other back-pressure rejections.
    Unavailable,
}

impl RejectKind {
    /// Stable wire tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RejectKind::Overloaded => "overloaded",
            RejectKind::CircuitOpen => "circuit_open",
            RejectKind::Malformed => "malformed",
            RejectKind::BadRequest => "bad_request",
            RejectKind::Deadline => "deadline",
            RejectKind::Failed => "failed",
            RejectKind::Internal => "internal",
            RejectKind::Draining => "draining",
            RejectKind::Unavailable => "unavailable",
        }
    }

    /// `rejected` covers loads the service *chose* not to take
    /// (typed load shedding); `error` covers requests it took and could
    /// not complete.
    #[must_use]
    pub fn status(self) -> &'static str {
        match self {
            RejectKind::Overloaded
            | RejectKind::CircuitOpen
            | RejectKind::Malformed
            | RejectKind::BadRequest
            | RejectKind::Draining
            | RejectKind::Unavailable => "rejected",
            RejectKind::Deadline | RejectKind::Failed | RejectKind::Internal => "error",
        }
    }
}

/// One response line under construction.
#[derive(Debug, Clone, Default)]
pub struct Response {
    /// Echoed request id (`None` when the request was unparseable).
    pub id: Option<String>,
    /// `ok`, `degraded`, `rejected`, `error` or `pong`.
    pub status: &'static str,
    /// License cost, on success.
    pub cost: Option<u64>,
    /// Winning back end, on success.
    pub backend: Option<String>,
    /// Whether the cost was proven optimal.
    pub proven: Option<bool>,
    /// Latency relaxation applied (cycles), on success.
    pub relaxation: Option<usize>,
    /// Wall-clock handling time.
    pub elapsed_ms: Option<u64>,
    /// Whether the design came from the result cache.
    pub cached: bool,
    /// `TS0xx`/`TR0xx` diagnostic codes attached to this outcome.
    pub codes: Vec<String>,
    /// Pre-rendered security-certificate JSON object (`troy-analysis`),
    /// present only on non-degraded successes whose design the prover
    /// certified. Degraded, rejected and failed outcomes never carry
    /// one — an uncertified design must not look certified.
    pub certificate: Option<String>,
    /// Rejection/error kind.
    pub kind: Option<RejectKind>,
    /// Human-readable detail for rejections and errors.
    pub message: Option<String>,
    /// Back-pressure hint for `overloaded`/`circuit_open` rejections.
    pub retry_after_ms: Option<u64>,
    /// Raw serialized cache entry (pre-rendered JSON object), embedded
    /// only in `probe` hits that asked for it via `want_entry` — the
    /// replication side channel. The cluster router strips this field
    /// before relaying a response to a client.
    pub entry: Option<String>,
}

impl Response {
    /// A success/degraded skeleton.
    #[must_use]
    pub fn outcome(id: &str, status: &'static str) -> Self {
        Response {
            id: Some(id.to_owned()),
            status,
            ..Response::default()
        }
    }

    /// A typed rejection/error.
    #[must_use]
    pub fn reject(id: Option<&str>, kind: RejectKind, message: impl Into<String>) -> Self {
        Response {
            id: id.map(str::to_owned),
            status: kind.status(),
            kind: Some(kind),
            message: Some(message.into()),
            ..Response::default()
        }
    }

    /// Renders the single response line (no trailing newline), appending
    /// the serve-path counters as the `stats` trailer.
    #[must_use]
    pub fn render(&self, stats: &StatsSnapshot) -> String {
        self.render_with(&stats.to_json())
    }

    /// Renders the single response line with a caller-supplied `stats`
    /// trailer (pre-rendered JSON object) — the cluster router reports
    /// its own counters in the same frame shape the daemon uses.
    #[must_use]
    pub fn render_with(&self, stats_json: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(192);
        s.push('{');
        match &self.id {
            Some(id) => {
                s.push_str("\"id\":");
                s.push_str(&escape(id));
            }
            None => s.push_str("\"id\":null"),
        }
        s.push_str(",\"status\":");
        s.push_str(&escape(self.status));
        if let Some(cost) = self.cost {
            let _ = write!(s, ",\"cost\":{cost}");
        }
        if let Some(backend) = &self.backend {
            s.push_str(",\"backend\":");
            s.push_str(&escape(backend));
        }
        if let Some(proven) = self.proven {
            let _ = write!(s, ",\"proven\":{proven}");
        }
        if let Some(relaxation) = self.relaxation {
            let _ = write!(s, ",\"relaxation\":{relaxation}");
        }
        if let Some(elapsed) = self.elapsed_ms {
            let _ = write!(s, ",\"elapsed_ms\":{elapsed}");
        }
        if self.cached {
            s.push_str(",\"cached\":true");
        }
        if !self.codes.is_empty() {
            s.push_str(",\"codes\":[");
            for (i, code) in self.codes.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&escape(code));
            }
            s.push(']');
        }
        if let Some(cert) = &self.certificate {
            s.push_str(",\"certificate\":");
            s.push_str(cert);
        }
        if let Some(kind) = self.kind {
            s.push_str(",\"kind\":");
            s.push_str(&escape(kind.as_str()));
        }
        if let Some(message) = &self.message {
            s.push_str(",\"message\":");
            s.push_str(&escape(message));
        }
        if let Some(retry) = self.retry_after_ms {
            let _ = write!(s, ",\"retry_after_ms\":{retry}");
        }
        if let Some(entry) = &self.entry {
            s.push_str(",\"entry\":");
            s.push_str(entry);
        }
        s.push_str(",\"stats\":");
        s.push_str(stats_json);
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_synth_request() {
        let r = parse_request(
            r#"{"id":"r1","cmd":"synth","benchmark":"polynom","mode":"recovery","catalog":"table1","lambda_det":4,"lambda_rec":3,"area":22000,"deadline_ms":2000}"#,
        )
        .expect("well-formed");
        assert_eq!(r.id, "r1");
        assert_eq!(r.cmd, Cmd::Synth);
        assert_eq!(r.benchmark.as_deref(), Some("polynom"));
        assert_eq!(r.lambda_det, Some(4));
        assert_eq!(r.lambda_rec, Some(3));
        assert_eq!(r.area, 22000);
        assert_eq!(r.deadline, Some(Duration::from_secs(2)));
        assert!(!r.no_degrade);
    }

    #[test]
    fn put_requests_carry_a_re_rendered_entry_object() {
        let r = parse_request(
            r#"{"id":"p1","cmd":"put","benchmark":"polynom","entry":{"cost":4160,"proven_optimal":true,"timed_out":false,"winner":"exact","num_ops":9,"assignments":[[0,0,0,0]]}}"#,
        )
        .expect("well-formed");
        assert_eq!(r.cmd, Cmd::Put);
        let entry = r.entry.expect("entry survives the parse");
        let back = Json::parse(&entry).expect("re-rendered entry parses");
        assert_eq!(back.get("cost").and_then(Json::as_u64), Some(4160));
        assert_eq!(back.get("winner").and_then(Json::as_str), Some("exact"));

        let probe =
            parse_request(r#"{"id":"p2","cmd":"probe","benchmark":"polynom","want_entry":true}"#)
                .expect("well-formed");
        assert!(probe.want_entry);
        assert!(probe.entry.is_none());
    }

    #[test]
    fn typed_parse_failures() {
        for (line, fragment) in [
            ("not json", "not valid"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"cmd":"synth"}"#, "missing `id`"),
            (r#"{"id":"x"}"#, "missing `cmd`"),
            (r#"{"id":"x","cmd":"dance"}"#, "unknown cmd"),
            (r#"{"id":"x","cmd":"synth","mode":"zen"}"#, "unknown mode"),
            (
                r#"{"id":"x","cmd":"synth","deadline_ms":0}"#,
                "must be positive",
            ),
            (
                r#"{"id":"x","cmd":"synth","lambda_det":"four"}"#,
                "non-negative integer",
            ),
            (
                r#"{"id":"x","cmd":"put","benchmark":"polynom"}"#,
                "requires an `entry`",
            ),
            (
                r#"{"id":"x","cmd":"put","entry":[1]}"#,
                "must be a JSON object",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(fragment), "{line}: {err}");
        }
    }

    #[test]
    fn response_renders_to_one_parseable_line() {
        let stats = StatsSnapshot::default();
        let mut resp = Response::outcome("r7", "degraded");
        resp.cost = Some(4160);
        resp.backend = Some("exact".into());
        resp.proven = Some(true);
        resp.relaxation = Some(1);
        resp.elapsed_ms = Some(42);
        resp.codes = vec!["TR001".into(), "TS002".into()];
        resp.certificate = Some(
            r#"{"design":"polynom","mode":"detection-only","single_vendor_safe":true}"#.to_owned(),
        );
        let line = resp.render(&stats);
        assert!(!line.contains('\n'));
        let back = Json::parse(&line).expect("response parses");
        assert_eq!(back.get("id").and_then(Json::as_str), Some("r7"));
        assert_eq!(back.get("cost").and_then(Json::as_u64), Some(4160));
        assert!(back.get("stats").is_some());
        let cert = back.get("certificate").expect("certificate embeds");
        assert_eq!(cert.get("design").and_then(Json::as_str), Some("polynom"));
        assert_eq!(cert.get("single_vendor_safe"), Some(&Json::Bool(true)));

        let reject = Response::reject(None, RejectKind::Overloaded, "queue full");
        let line = reject.render(&stats);
        let back = Json::parse(&line).expect("rejection parses");
        assert_eq!(back.get("id"), Some(&Json::Null));
        assert_eq!(back.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(back.get("status").and_then(Json::as_str), Some("rejected"));
    }
}
