//! The hardened synthesis daemon.
//!
//! One accept loop, one thread per connection, newline-delimited JSON
//! frames. Every layer is bounded:
//!
//! - **Admission** — at most `max_inflight` concurrent syntheses plus a
//!   `queue_depth`-bounded wait queue; past that, requests are shed with
//!   a typed `overloaded` rejection carrying a `retry_after_ms` hint
//!   ([`crate::admission`]).
//! - **Circuit breakers** — a per-backend closed → open → half-open
//!   panel ([`crate::breaker`]) layered over the `troy-resilience`
//!   supervisor via [`SupervisorConfig::disabled`], so a flapping rung
//!   is skipped before it burns its retry budget; with every breaker
//!   open the request is rejected `circuit_open` up front.
//! - **Deadlines** — each request's budget flows through
//!   [`Cancellation`] children of a server root token, so a drain can
//!   cancel all in-flight work at once.
//! - **Frames** — a connection may dribble a frame (slowloris) for at
//!   most `frame_deadline` and a line may be at most [`MAX_LINE`] bytes;
//!   violations close the connection.
//! - **Panics** — request handling runs under `catch_unwind`; a
//!   poisoned request yields an `internal` error and closes that one
//!   connection, never the daemon.
//!
//! Graceful drain: a `shutdown` request (or [`ServiceHandle::shutdown`])
//! stops the accept loop, lets in-flight requests finish within
//! `drain_deadline`, then cancels the root token and gives stragglers a
//! short grace before [`Service::join`] returns the final counters.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use troy_dfg::{benchmarks, parse_dfg};
use troy_ilp::Cancellation;
use troy_portfolio::{cache_key, Backend, CacheKey, CachedEntry, PortfolioResult, ResultCache};
use troy_resilience::{
    supervise, AttemptOutcome, Chaos, Degradation, SupervisorConfig, SupervisorErrorKind, LADDER,
};
use troyhls::{SolveOptions, SynthesisProblem};

use crate::admission::{Admission, Admitted};
use crate::breaker::{BreakerConfig, Breakers};
use crate::protocol::{parse_request, Cmd, RejectKind, Request, Response};
use crate::stats::{ServiceStats, StatsSnapshot};

use troy_analysis::Code;

/// Hard bound on one request line; longer frames are hostile.
pub const MAX_LINE: usize = 256 * 1024;

/// How the daemon runs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address, e.g. `127.0.0.1:7788` (`:0` picks a free port).
    pub addr: String,
    /// Concurrent syntheses admitted at once.
    pub max_inflight: usize,
    /// Requests allowed to wait for a slot; past this, shed.
    pub queue_depth: usize,
    /// Deadline applied when a request carries no `deadline_ms`.
    pub default_deadline: Duration,
    /// How long a drain waits for in-flight work before cancelling it.
    pub drain_deadline: Duration,
    /// Longest a connection may take to deliver one complete frame once
    /// its first byte has arrived (the slowloris bound).
    pub frame_deadline: Duration,
    /// Circuit-breaker policy shared by all back ends.
    pub breaker: BreakerConfig,
    /// Result-cache directory; `None` keeps the cache in memory.
    pub cache_dir: Option<PathBuf>,
    /// Fault injector threaded into every supervised run.
    pub chaos: Chaos,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_inflight: 4,
            queue_depth: 8,
            default_deadline: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
            frame_deadline: Duration::from_secs(2),
            breaker: BreakerConfig::default(),
            cache_dir: None,
            chaos: Chaos::disabled(),
        }
    }
}

/// State shared by the accept loop, every connection, and the handle.
struct Shared {
    stats: ServiceStats,
    admission: Admission,
    breakers: Breakers,
    cache: ResultCache,
    /// Parent of every request token; cancelled at hard drain.
    root: Cancellation,
    /// Set once by `shutdown`; never cleared.
    draining: AtomicBool,
    /// Set by [`ServiceHandle::kill`]: crash-stop — pending responses
    /// are dropped, never written, as an abrupt process death would.
    killed: AtomicBool,
    /// Live connection threads (drain waits for this to reach zero).
    connections_live: AtomicU64,
    chaos: Chaos,
    default_deadline: Duration,
    frame_deadline: Duration,
}

impl Shared {
    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }
}

/// A handle that can drain the daemon from another thread.
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    /// Begins a graceful drain: stop accepting, finish (or cancel, after
    /// the drain deadline) in-flight work. Idempotent.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// `true` once a drain has begun.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.is_draining()
    }

    /// Crash-stops the daemon, the way a power loss or `SIGKILL` would:
    /// stop accepting, cancel in-flight work, and *drop* any response
    /// not yet written — peers see connection resets and EOF, never a
    /// typed goodbye. This is the chaos harness's worker-kill primitive;
    /// a graceful stop is [`ServiceHandle::shutdown`]. Idempotent.
    pub fn kill(&self) {
        self.shared.killed.store(true, Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.root.cancel();
    }

    /// `true` once the daemon has been crash-stopped.
    #[must_use]
    pub fn is_killed(&self) -> bool {
        self.shared.is_killed()
    }

    /// Point-in-time serve-path counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }
}

/// A running daemon.
pub struct Service {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    drain_deadline: Duration,
}

impl Service {
    /// Binds `config.addr` and starts the accept loop.
    ///
    /// # Errors
    /// Propagates bind/cache-directory I/O failures.
    pub fn start(config: ServiceConfig) -> std::io::Result<Service> {
        let ServiceConfig {
            addr,
            max_inflight,
            queue_depth,
            default_deadline,
            drain_deadline,
            frame_deadline,
            breaker,
            cache_dir,
            chaos,
        } = config;
        let listener = TcpListener::bind(&addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let cache = match cache_dir {
            Some(dir) => ResultCache::on_disk(dir)?,
            None => ResultCache::in_memory(),
        };
        let shared = Arc::new(Shared {
            stats: ServiceStats::default(),
            admission: Admission::new(max_inflight, queue_depth),
            breakers: Breakers::new(breaker),
            cache,
            root: Cancellation::new(),
            draining: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            connections_live: AtomicU64::new(0),
            chaos,
            default_deadline,
            frame_deadline,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Service {
            local_addr,
            shared,
            accept,
            drain_deadline,
        })
    }

    /// The bound address (useful with `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A drain handle, cloneable across threads.
    #[must_use]
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Point-in-time serve-path counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Blocks until the daemon has drained (a `shutdown` request or
    /// [`ServiceHandle::shutdown`] call, then completion of in-flight
    /// work within the drain deadline), and returns the final counters.
    ///
    /// The drain ladder: stop accepting; wait up to `drain_deadline` for
    /// connections to finish; cancel the root token; wait a short grace
    /// for cancelled work to unwind. Connections still live after that
    /// are abandoned (their threads die with the process).
    #[must_use]
    pub fn join(self) -> StatsSnapshot {
        while !self.shared.is_draining() {
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = self.accept.join();
        let drained_by = Instant::now() + self.drain_deadline;
        while self.shared.connections_live.load(Ordering::SeqCst) > 0 && Instant::now() < drained_by
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Past the drain deadline: cancel everything still running and
        // give it one bounded grace to unwind through the token checks.
        self.shared.root.cancel();
        let grace_until = Instant::now() + Duration::from_secs(2);
        while self.shared.connections_live.load(Ordering::SeqCst) > 0
            && Instant::now() < grace_until
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shared.stats.snapshot()
    }
}

/// Accepts until drain begins. Nonblocking + poll so the loop can notice
/// the drain flag without a wake-up connection.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.is_draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                ServiceStats::bump(&shared.stats.connections);
                shared.connections_live.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    handle_connection(stream, &shared);
                    shared.connections_live.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Reads frames off one connection until it closes, misbehaves, or the
/// daemon drains. Never panics out: request handling is firewalled.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut stream = stream;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Start of the frame currently being assembled, set when its first
    // byte arrives: the slowloris clock.
    let mut frame_start: Option<Instant> = None;
    loop {
        // Drain a complete line if one is buffered.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            frame_start = if buf.is_empty() {
                None
            } else {
                Some(Instant::now())
            };
            let line = String::from_utf8_lossy(&line[..nl]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            match serve_line(&line, shared, &mut stream) {
                LineVerdict::KeepGoing => {}
                LineVerdict::Close => return,
            }
        }
        if shared.is_draining() {
            // Idle (or mid-frame) connection during a drain: nothing
            // in-flight here, so close.
            return;
        }
        if buf.len() > MAX_LINE {
            let reject = Response::reject(
                None,
                RejectKind::Malformed,
                format!("frame exceeds the {MAX_LINE}-byte line limit"),
            );
            ServiceStats::bump(&shared.stats.malformed);
            let _ = write_response(&mut stream, &reject, shared);
            return;
        }
        if let Some(t0) = frame_start {
            if t0.elapsed() > shared.frame_deadline {
                let reject = Response::reject(
                    None,
                    RejectKind::Malformed,
                    format!(
                        "partial frame: no newline within {:?} of the first byte",
                        shared.frame_deadline
                    ),
                );
                ServiceStats::bump(&shared.stats.malformed);
                let _ = write_response(&mut stream, &reject, shared);
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed; any partial frame is dropped
            Ok(n) => {
                if buf.is_empty() && frame_start.is_none() {
                    frame_start = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

enum LineVerdict {
    KeepGoing,
    Close,
}

/// Parses and executes one frame, writing exactly one response line.
fn serve_line(line: &str, shared: &Arc<Shared>, stream: &mut TcpStream) -> LineVerdict {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(msg) => {
            ServiceStats::bump(&shared.stats.malformed);
            let reject = Response::reject(None, RejectKind::Malformed, msg);
            // A peer speaking a broken protocol gets one diagnosis, then
            // the connection closes: no error loops.
            let _ = write_response(stream, &reject, shared);
            return LineVerdict::Close;
        }
    };
    let id = request.id.clone();
    let close_after = request.cmd == Cmd::Shutdown;
    // The panic firewall: a poisoned request is converted into a typed
    // internal error and costs its own connection, never the daemon.
    let response = match catch_unwind(AssertUnwindSafe(|| handle_request(&request, shared))) {
        Ok(response) => response,
        Err(payload) => {
            ServiceStats::bump(&shared.stats.panics);
            let detail = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            Response::reject(
                Some(&id),
                RejectKind::Internal,
                format!("request handler panicked: {detail}"),
            )
        }
    };
    let panicked = response.kind == Some(RejectKind::Internal);
    if write_response(stream, &response, shared).is_err() || close_after || panicked {
        LineVerdict::Close
    } else {
        LineVerdict::KeepGoing
    }
}

fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    shared: &Arc<Shared>,
) -> std::io::Result<()> {
    if shared.is_killed() {
        // A crash-stopped daemon writes nothing: the peer must observe
        // silence (EOF/reset), exactly as a dead process would behave.
        return Err(std::io::Error::new(ErrorKind::BrokenPipe, "killed"));
    }
    let mut line = response.render(&shared.stats.snapshot());
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Executes one parsed request. May run for up to the request deadline
/// (plus the supervisor's documented grace slack).
fn handle_request(request: &Request, shared: &Arc<Shared>) -> Response {
    match request.cmd {
        Cmd::Ping => Response::outcome(&request.id, "pong"),
        Cmd::Stats => Response::outcome(&request.id, "ok"),
        Cmd::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            let mut r = Response::outcome(&request.id, "ok");
            r.message = Some("draining: no further requests will be accepted".to_owned());
            r
        }
        Cmd::Synth => handle_synth(request, shared),
        Cmd::Probe => handle_probe(request, shared),
        Cmd::Put => handle_put(request, shared),
    }
}

/// Answers a peer cache lookup: a `synth`-shaped request that only
/// consults the result cache. Probes bypass admission (they never run a
/// solver) and are answered even while draining — they are reads, not
/// work. This is the worker-side half of the cluster's shared cache
/// tier: the router probes the key-owning worker before dispatching a
/// synthesis to anyone else.
fn handle_probe(request: &Request, shared: &Arc<Shared>) -> Response {
    let t0 = Instant::now();
    ServiceStats::bump(&shared.stats.probes);
    let problem = match build_problem(request) {
        Ok(p) => p,
        Err(msg) => {
            return Response::reject(Some(&request.id), RejectKind::BadRequest, msg);
        }
    };
    let key = cache_key(&problem, "serve", &SolveOptions::default());
    if let Some(hit) = shared.cache.lookup(&key, &problem) {
        ServiceStats::bump(&shared.stats.probe_hits);
        let mut r = cache_hit_response(&request.id, &problem, &hit, t0);
        if request.want_entry {
            // The prober asked for the raw entry so it can replicate it
            // onward (read-repair); the receiving end re-validates.
            r.entry = Some(CachedEntry::from_result(&hit).to_json());
        }
        return r;
    }
    Response::outcome(&request.id, "miss")
}

/// Accepts a replicated cache entry from a peer: a `synth`-shaped
/// request whose `entry` payload is parsed and re-validated against the
/// rebuilt problem — the exact certified-store gate the cache's own
/// lookup path enforces (valid design, matching cost) — and stored on
/// success. An entry that fails the gate is rejected `bad_request` and
/// never stored: replication must not become a cache-poisoning channel.
/// Puts bypass admission and are accepted even while draining — they
/// are cache writes, not solver work.
fn handle_put(request: &Request, shared: &Arc<Shared>) -> Response {
    ServiceStats::bump(&shared.stats.puts);
    let problem = match build_problem(request) {
        Ok(p) => p,
        Err(msg) => {
            return Response::reject(Some(&request.id), RejectKind::BadRequest, msg);
        }
    };
    let Some(entry) = request.entry.as_deref().and_then(CachedEntry::from_json) else {
        return Response::reject(
            Some(&request.id),
            RejectKind::BadRequest,
            "`entry` does not parse as a cache entry",
        );
    };
    let Some(result) = entry.to_result(&problem) else {
        return Response::reject(
            Some(&request.id),
            RejectKind::BadRequest,
            "`entry` failed re-validation against the request's problem",
        );
    };
    let key = cache_key(&problem, "serve", &SolveOptions::default());
    shared.cache.store(&key, &result);
    ServiceStats::bump(&shared.stats.put_stores);
    let mut r = Response::outcome(&request.id, "ok");
    r.message = Some("entry stored".to_owned());
    r
}

/// Renders a result-cache hit as a full `ok` response, certificate
/// included — byte-compatible with the synth path's cache fast path.
fn cache_hit_response(
    id: &str,
    problem: &SynthesisProblem,
    hit: &PortfolioResult,
    t0: Instant,
) -> Response {
    let mut r = Response::outcome(id, "ok");
    r.cost = Some(hit.synthesis.cost);
    r.backend = Some(hit.winner.name().to_owned());
    r.proven = Some(hit.synthesis.proven_optimal);
    r.relaxation = Some(0);
    r.cached = true;
    r.certificate = certificate_for(problem, &hit.synthesis.implementation);
    r.elapsed_ms = Some(t0.elapsed().as_millis() as u64);
    r
}

fn handle_synth(request: &Request, shared: &Arc<Shared>) -> Response {
    let t0 = Instant::now();
    if shared.is_draining() {
        return Response::reject(
            Some(&request.id),
            RejectKind::Draining,
            "the daemon is draining",
        );
    }
    let deadline = request.deadline.unwrap_or(shared.default_deadline);

    // Admission: bounded queue wait (half the deadline, capped), then a
    // typed shed. The permit is held for the whole synthesis.
    let wait_budget = (deadline / 2).min(Duration::from_secs(2));
    let _permit = match shared.admission.acquire(wait_budget) {
        Admitted::Permit(p) => p,
        Admitted::Shed { retry_after } => {
            ServiceStats::bump(&shared.stats.shed_overload);
            let mut r = Response::reject(
                Some(&request.id),
                RejectKind::Overloaded,
                "admission queue and in-flight budget are full",
            );
            r.retry_after_ms = Some(retry_after.as_millis() as u64);
            r.codes = vec![Code::ServiceOverloaded.as_str().to_owned()];
            return r;
        }
    };
    ServiceStats::bump(&shared.stats.accepted);

    // Circuit breakers: skip open rungs; with the whole panel open the
    // request is shed before any solver runs.
    let now = Instant::now();
    let open = shared.breakers.open_at(now);
    if open.len() == Backend::ALL.len() {
        ServiceStats::bump(&shared.stats.shed_circuit);
        let mut r = Response::reject(
            Some(&request.id),
            RejectKind::CircuitOpen,
            "every solver back end's circuit breaker is open",
        );
        r.retry_after_ms = shared
            .breakers
            .retry_after(now)
            .map(|d| d.as_millis().max(1) as u64);
        r.codes = vec![Code::CircuitOpen.as_str().to_owned()];
        return r;
    }

    let problem = match build_problem(request) {
        Ok(p) => p,
        Err(msg) => {
            ServiceStats::bump(&shared.stats.failed);
            return Response::reject(Some(&request.id), RejectKind::BadRequest, msg);
        }
    };

    // Cache: keyed on the problem under normalized options (engine
    // "serve"), deliberately ignoring the per-request deadline so
    // identical problems hit regardless of each client's budget. Only
    // un-degraded results are ever stored (best-effort ones included —
    // the `proven` flag travels with the entry), so a hit can be served
    // as `ok` unconditionally.
    let key = cache_key(&problem, "serve", &SolveOptions::default());
    if let Some(hit) = shared.cache.lookup(&key, &problem) {
        ServiceStats::bump(&shared.stats.cache_hits);
        ServiceStats::bump(&shared.stats.completed_ok);
        let mut r = cache_hit_response(&request.id, &problem, &hit, t0);
        if request.want_entry {
            r.entry = Some(CachedEntry::from_result(&hit).to_json());
        }
        return r;
    }

    let config = SupervisorConfig {
        deadline,
        degrade: !request.no_degrade,
        disabled: open.clone(),
        options: SolveOptions {
            cancel: shared.root.child(),
            ..SolveOptions::default()
        },
        ..SupervisorConfig::default()
    };
    match supervise(&problem, &config, &shared.chaos) {
        Ok(sup) => {
            record_breaker_outcomes(shared, &sup.degradation);
            let degraded = sup.degraded();
            let mut codes = Vec::new();
            if !open.is_empty() {
                codes.push(Code::CircuitOpen.as_str().to_owned());
            }
            if sup.backend != LADDER[0] || sup.degradation.grace {
                codes.push(Code::DegradedBackend.as_str().to_owned());
            }
            if sup.relaxation > 0 {
                codes.push(Code::ConstraintRelaxed.as_str().to_owned());
            }
            let mut entry_json = None;
            if degraded {
                ServiceStats::bump(&shared.stats.completed_degraded);
            } else {
                ServiceStats::bump(&shared.stats.completed_ok);
                let result = PortfolioResult {
                    synthesis: sup.synthesis.clone(),
                    winner: sup.backend,
                    timed_out: false,
                    from_cache: false,
                    elapsed: sup.elapsed,
                };
                shared.cache.store(&key, &result);
                if request.want_entry {
                    // Only un-degraded results travel as entries — the
                    // same rule the cache's own store path enforces.
                    entry_json = Some(CachedEntry::from_result(&result).to_json());
                }
            }
            let mut r = Response::outcome(&request.id, if degraded { "degraded" } else { "ok" });
            r.cost = Some(sup.synthesis.cost);
            r.backend = Some(sup.backend.name().to_owned());
            r.proven = Some(sup.synthesis.proven_optimal);
            r.relaxation = Some(sup.relaxation);
            if degraded {
                // A degraded result may have been solved against a
                // relaxed problem, so no certificate can honestly bind
                // it to the request; say so in-band instead.
                codes.push(Code::UncertifiedResponse.as_str().to_owned());
            } else {
                r.certificate = certificate_for(&problem, &sup.synthesis.implementation);
            }
            r.entry = entry_json;
            r.codes = codes;
            r.elapsed_ms = Some(t0.elapsed().as_millis() as u64);
            r
        }
        Err(e) => {
            record_breaker_outcomes(shared, &e.degradation);
            ServiceStats::bump(&shared.stats.failed);
            let (kind, code) = match e.kind {
                SupervisorErrorKind::DeadlineExhausted { .. } => (
                    RejectKind::Deadline,
                    Some(Code::RequestDeadlineExhausted.as_str().to_owned()),
                ),
                SupervisorErrorKind::Infeasible { .. } | SupervisorErrorKind::Exhausted => {
                    (RejectKind::Failed, None)
                }
            };
            let mut r = Response::reject(Some(&request.id), kind, e.to_string());
            r.codes = code.into_iter().collect();
            r.elapsed_ms = Some(t0.elapsed().as_millis() as u64);
            r
        }
    }
}

/// Runs the security prover over a finished binding and pre-renders its
/// certificate for the wire. `None` when the prover refuses — a response
/// must never claim a certificate the prover did not issue.
fn certificate_for(
    problem: &SynthesisProblem,
    implementation: &troyhls::Implementation,
) -> Option<String> {
    troy_analysis::certify(problem, implementation)
        .ok()
        .map(|cert| cert.to_json())
}

/// The content-addressed cache key a `synth`/`probe` request resolves to
/// under the daemon's normalized cache options. The cluster router hashes
/// this same fingerprint onto its consistent-hash ring, so request
/// placement and worker-side cache addressing can never disagree.
///
/// # Errors
/// The request does not describe a well-formed synthesis problem; the
/// message is suitable for a `bad_request` rejection.
pub fn request_key(request: &Request) -> Result<CacheKey, String> {
    let problem = build_problem(request)?;
    Ok(cache_key(&problem, "serve", &SolveOptions::default()))
}

/// Builds the synthesis problem a request describes.
///
/// # Errors
/// The request names no DFG, an unknown benchmark, unparsable inline
/// `dfg` text, or constraints the problem builder rejects.
pub fn build_problem(request: &Request) -> Result<SynthesisProblem, String> {
    let dfg = match (&request.benchmark, &request.dfg) {
        (Some(name), _) => {
            benchmarks::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?
        }
        (None, Some(text)) => parse_dfg(text).map_err(|e| format!("bad `dfg`: {e}"))?,
        (None, None) => return Err("synth needs `benchmark` or `dfg`".to_owned()),
    };
    let mut builder = SynthesisProblem::builder(dfg, request.catalog.clone())
        .mode(request.mode)
        .area_limit(request.area);
    if let Some(l) = request.lambda_det {
        builder = builder.detection_latency(l);
    }
    if let Some(l) = request.lambda_rec {
        builder = builder.recovery_latency(l);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Feeds a supervised run's rung outcomes into the breaker panel.
///
/// Per executed rung, the *final* attempt decides: success closes the
/// breaker, a deterministic failure (panic, invalid design, timeout,
/// typed failure) counts toward opening it. Infeasibility and spurious
/// cancellation are neutral — they indict the problem or the schedule,
/// not the back end.
fn record_breaker_outcomes(shared: &Arc<Shared>, degradation: &Degradation) {
    let now = Instant::now();
    for rung in &degradation.rungs {
        if rung.skipped {
            continue;
        }
        match rung.attempts.last().map(|a| &a.outcome) {
            Some(AttemptOutcome::Success { .. }) => {
                shared.breakers.record_success(rung.backend, now);
            }
            Some(
                AttemptOutcome::Panicked(_)
                | AttemptOutcome::InvalidDesign
                | AttemptOutcome::Timeout
                | AttemptOutcome::Failed(_),
            ) => {
                shared.breakers.record_failure(rung.backend, now);
            }
            Some(AttemptOutcome::SpuriousCancel | AttemptOutcome::Infeasible) | None => {}
        }
    }
}
