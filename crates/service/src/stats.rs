//! Serve-path counters, reported in every response's `stats` trailer.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters. One instance lives for the daemon's lifetime;
/// all increments are relaxed (they are monotonic telemetry, not
/// synchronization).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests admitted into synthesis.
    pub accepted: AtomicU64,
    /// Requests shed at admission (queue + in-flight budget full).
    pub shed_overload: AtomicU64,
    /// Requests rejected because every breaker was open.
    pub shed_circuit: AtomicU64,
    /// Admitted requests that completed un-degraded.
    pub completed_ok: AtomicU64,
    /// Admitted requests that completed degraded (fallback rung,
    /// relaxation, grace pass, or an open breaker skipping a rung).
    pub completed_degraded: AtomicU64,
    /// Admitted requests that ended in a typed error.
    pub failed: AtomicU64,
    /// Request handlers that panicked (isolated by the firewall).
    pub panics: AtomicU64,
    /// Lines that failed protocol parsing.
    pub malformed: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Synth responses served from the result cache.
    pub cache_hits: AtomicU64,
    /// Peer cache lookups answered (`probe` requests).
    pub probes: AtomicU64,
    /// Peer cache lookups answered with a hit.
    pub probe_hits: AtomicU64,
    /// Replicated cache inserts received (`put` requests).
    pub puts: AtomicU64,
    /// Replicated cache inserts that passed re-validation and stored.
    pub put_stores: AtomicU64,
}

impl ServiceStats {
    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy for rendering.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            shed_circuit: self.shed_circuit.load(Ordering::Relaxed),
            completed_ok: self.completed_ok.load(Ordering::Relaxed),
            completed_degraded: self.completed_degraded.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            probe_hits: self.probe_hits.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            put_stores: self.put_stores.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ServiceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on ServiceStats
pub struct StatsSnapshot {
    pub accepted: u64,
    pub shed_overload: u64,
    pub shed_circuit: u64,
    pub completed_ok: u64,
    pub completed_degraded: u64,
    pub failed: u64,
    pub panics: u64,
    pub malformed: u64,
    pub connections: u64,
    pub cache_hits: u64,
    pub probes: u64,
    pub probe_hits: u64,
    pub puts: u64,
    pub put_stores: u64,
}

impl StatsSnapshot {
    /// Renders the counters as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"shed_overload\":{},\"shed_circuit\":{},\
             \"completed_ok\":{},\"completed_degraded\":{},\"failed\":{},\
             \"panics\":{},\"malformed\":{},\"connections\":{},\"cache_hits\":{},\
             \"probes\":{},\"probe_hits\":{},\"puts\":{},\"put_stores\":{}}}",
            self.accepted,
            self.shed_overload,
            self.shed_circuit,
            self.completed_ok,
            self.completed_degraded,
            self.failed,
            self.panics,
            self.malformed,
            self.connections,
            self.cache_hits,
            self.probes,
            self.probe_hits,
            self.puts,
            self.put_stores,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn snapshot_renders_as_json() {
        let stats = ServiceStats::default();
        ServiceStats::bump(&stats.accepted);
        ServiceStats::bump(&stats.accepted);
        ServiceStats::bump(&stats.shed_overload);
        let snap = stats.snapshot();
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.shed_overload, 1);
        let json = Json::parse(&snap.to_json()).expect("stats render parses");
        assert_eq!(json.get("accepted").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("cache_hits").and_then(Json::as_u64), Some(0));
    }
}
