//! A minimal JSON reader/writer for the wire protocol.
//!
//! The workspace's `serde` is an offline API stub, so the protocol layer
//! parses and renders its own JSON — deliberately a subset: objects,
//! arrays, strings (with `\" \\ \/ \n \t \r` escapes), unsigned
//! integers, booleans and `null`. That subset is closed under what the
//! daemon emits, and anything outside it in a *request* is exactly what
//! the protocol wants to reject as malformed.
//!
//! The parser is hardened for adversarial input: recursion is depth-
//! capped, and the caller bounds input length by reading at most one
//! framed line.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`Json::parse`]; protocol messages
/// are at most two levels deep, so anything deeper is hostile.
const MAX_DEPTH: usize = 16;

/// A parsed JSON value (protocol subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the protocol has no floats or negatives).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as a single JSON value with nothing but whitespace
    /// after it. Returns `None` on any deviation from the subset.
    #[must_use]
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }

    /// Object field lookup (first occurrence); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value back to compact wire JSON, preserving object
    /// field order — the inverse of [`Json::parse`] on the subset, which
    /// is what lets the cluster router annotate a relayed worker
    /// response (worker id, failover codes, cluster stats) without
    /// re-deriving it.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(key));
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, token: &[u8]) -> Option<()> {
    if bytes[*pos..].starts_with(token) {
        *pos += token.len();
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Json> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'n' => eat(bytes, pos, b"null").map(|()| Json::Null),
        b't' => eat(bytes, pos, b"true").map(|()| Json::Bool(true)),
        b'f' => eat(bytes, pos, b"false").map(|()| Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'0'..=b'9' => parse_number(bytes, pos).map(Json::Num),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                eat(bytes, pos, b":")?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(fields));
                    }
                    _ => return None,
                }
            }
        }
        _ => None,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    // A fraction or exponent is outside the subset: fail rather than
    // silently truncate.
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return None;
    }
    std::str::from_utf8(&bytes[start..*pos]).ok()?.parse().ok()
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).ok();
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    _ => return None,
                }
                *pos += 1;
            }
            // A raw control byte inside a string is malformed; anything
            // else (including multi-byte UTF-8) passes through.
            b if *b < 0x20 => return None,
            b => {
                out.push(*b);
                *pos += 1;
            }
        }
    }
}

/// Renders `s` as a quoted JSON string with the subset's escapes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            // Other control characters cannot round-trip through the
            // subset; replace rather than emit an unparsable frame.
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_objects() {
        let j = Json::parse(
            r#"{"id":"r1","cmd":"synth","benchmark":"polynom","deadline_ms":500,"no_degrade":false,"codes":["TS001"],"extra":null}"#,
        )
        .expect("well-formed");
        assert_eq!(j.get("id").and_then(Json::as_str), Some("r1"));
        assert_eq!(j.get("deadline_ms").and_then(Json::as_u64), Some(500));
        assert_eq!(j.get("no_degrade").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("extra"), Some(&Json::Null));
        assert_eq!(
            j.get("codes"),
            Some(&Json::Arr(vec![Json::Str("TS001".into())]))
        );
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn escaped_strings_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ slash";
        let rendered = escape(original);
        let back = Json::parse(&rendered).expect("escape output parses");
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn rejects_out_of_subset_and_hostile_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "1.5",
            "1e9",
            "-3",
            "\"unterminated",
            "\"bad\\qescape\"",
            "{\"a\":1} trailing",
            "nulll",
            "\"raw\u{1}control\"",
        ] {
            assert_eq!(Json::parse(bad), None, "{bad:?}");
        }
        // Depth bomb: 64 nested arrays.
        let bomb = format!("{}{}", "[".repeat(64), "]".repeat(64));
        assert_eq!(Json::parse(&bomb), None);
        // At the cap it still parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_some());
    }

    #[test]
    fn render_is_the_inverse_of_parse_on_the_subset() {
        for line in [
            r#"{"id":"r1","status":"ok","cost":4160,"proven":true,"cached":false,"codes":["TS001","TR002"],"extra":null}"#,
            r#"{"nested":{"a":[1,2,{"b":"x"}]},"s":"quote \" slash \\ nl \n"}"#,
            "[]",
            "{}",
            r#""just a string""#,
            "42",
        ] {
            let parsed = Json::parse(line).expect("fixture parses");
            let rendered = parsed.render();
            assert_eq!(
                Json::parse(&rendered).expect("render parses"),
                parsed,
                "{line}"
            );
            // Compact input with the subset's escapes round-trips byte
            // for byte (field order is preserved).
            assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
        }
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let j = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : true } ").expect("ok");
        assert_eq!(
            j.get("a"),
            Some(&Json::Arr(vec![Json::Num(1), Json::Num(2)]))
        );
    }
}
