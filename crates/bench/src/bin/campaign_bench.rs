//! `campaign-bench`: committed Trojan-injection campaign record.
//!
//! ```text
//! cargo run --release -p troy-bench --bin campaign-bench            # regenerate BENCH_campaign.json
//! cargo run --release -p troy-bench --bin campaign-bench -- --check # gate against the committed file
//! ```
//!
//! Runs the fixed campaign grid — three benchmarks × both modes × the
//! default stratified Trojan corpus (rarity {0,4,12} × payload
//! {xor,offset,latched} × coalition {1,2} × trigger {comb,seq} + a clean
//! control) — under a pinned master seed and commits the deterministic
//! per-cell detection/recovery rows plus informational latency to
//! `BENCH_campaign.json` at the repo root. All counts are pure functions
//! of the seed, so the file reproduces bit-for-bit on any machine
//! (`latency_us` aside). `--check` re-runs the grid and fails on
//!
//! - any escaped corrupting activation in the hard-guarantee slice
//!   (`DetectionRecovery` + memory-less payload + single infected vendor
//!   + rare trigger), each printed as a replayable (seed, cell) witness;
//! - a detection-rate regression of more than 2 percentage points on
//!   `DetectionRecovery` cells versus the committed record.
//!
//! `TROY_CAMPAIGN_SEED=N` overrides the master seed (exploration only:
//! a non-default seed never rewrites the committed file).

use std::path::PathBuf;
use std::time::Instant;

use troy_portfolio::default_jobs;
use troy_sim::{run_grid, CampaignReport, DesignUnderTest, GridConfig};
use troyhls::{ExactSolver, Mode, SolveOptions};

/// Pinned master seed of the committed record.
const COMMITTED_SEED: u64 = 0x00DA_C014;

/// Benchmarks in the committed grid (paper Table 3 workloads that the
/// exact solver closes quickly at critical-path + 1 slack).
const BENCHMARKS: [&str; 3] = ["polynom", "diff2", "dtmf"];

/// Mission steps per cell.
const STEPS: usize = 24;

fn grid_config(seed: u64) -> GridConfig {
    GridConfig {
        seed,
        steps: STEPS,
        ..GridConfig::default()
    }
}

fn synthesize_designs() -> Vec<DesignUnderTest> {
    let solver = ExactSolver::new();
    let options = SolveOptions::quick();
    let mut designs = Vec::new();
    for name in BENCHMARKS {
        for mode in [Mode::DetectionOnly, Mode::DetectionRecovery] {
            let t0 = Instant::now();
            let d = DesignUnderTest::synthesize(name, mode, &solver, &options)
                .unwrap_or_else(|e| panic!("synthesize {name}: {e}"));
            eprintln!(
                "synthesized {name}/{} in {:.0} ms",
                d.mode_tag(),
                t0.elapsed().as_secs_f64() * 1e3
            );
            designs.push(d);
        }
    }
    designs
}

/// Repo-root path of the committed campaign record.
fn bench_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json")
}

/// Pulls a `"key": <float>` value out of the committed JSON — a string
/// scan over our own fixed format, so no JSON dependency is needed.
fn committed_value(text: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let at = text.find(&tag)? + tag.len();
    let digits: String = text[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    digits.parse().ok()
}

fn check(report: &CampaignReport) -> i32 {
    let mut failures = 0;

    let escapes = report.guarantee_escapes();
    if escapes.is_empty() {
        println!("guarantee slice: no escaped corrupting activations");
    } else {
        for e in &escapes {
            eprintln!(
                "FAIL: escape in guarantee slice: cell={} step={} \
                 (replay: seed {:#x}, cell-id above)",
                e.cell, e.step, e.seed
            );
        }
        failures += escapes.len();
    }

    let path = bench_path();
    let Ok(committed) = std::fs::read_to_string(&path) else {
        eprintln!("FAIL: no committed record at {}", path.display());
        return 1;
    };
    let Some(baseline) = committed_value(&committed, "detection_rate_recovery") else {
        eprintln!("FAIL: committed record lacks detection_rate_recovery");
        return 1;
    };
    let fresh = report.detection_rate(Some(Mode::DetectionRecovery));
    // >2 percentage points below the committed baseline is a regression;
    // better is progress (regenerate the file to bank it).
    let limit = baseline - 0.02;
    let verdict = if fresh < limit { "REGRESSION" } else { "ok" };
    println!(
        "detection_rate_recovery: committed {baseline:.4}, fresh {fresh:.4} \
         (limit {limit:.4}) {verdict}"
    );
    if fresh < limit {
        failures += 1;
    }

    if let Some(committed_escapes) = committed_value(&committed, "guarantee_escapes") {
        if committed_escapes > 0.0 {
            eprintln!("FAIL: committed record itself carries guarantee escapes");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("FAIL: {failures} campaign gate(s) tripped");
        1
    } else {
        println!("all campaign gates passed");
        0
    }
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    let seed = std::env::var("TROY_CAMPAIGN_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(COMMITTED_SEED);

    let designs = synthesize_designs();
    let config = grid_config(seed);
    let jobs = default_jobs();
    let t0 = Instant::now();
    let report = run_grid(&designs, &config, jobs);
    eprintln!(
        "ran {} cells ({} steps) across {jobs} workers in {:.0} ms",
        report.cells.len(),
        report.steps(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    print!("{}", report.summary_text());

    if check_mode {
        std::process::exit(check(&report));
    }
    if seed != COMMITTED_SEED {
        println!("non-default seed {seed:#x}: not rewriting the committed file");
        if !report.guarantee_escapes().is_empty() {
            std::process::exit(1);
        }
        return;
    }
    if !report.guarantee_escapes().is_empty() {
        for e in report.guarantee_escapes() {
            eprintln!(
                "FAIL: escape in guarantee slice: cell={} step={} seed={:#x}",
                e.cell, e.step, e.seed
            );
        }
        eprintln!("refusing to commit a record with guarantee escapes");
        std::process::exit(1);
    }
    let path = bench_path();
    std::fs::write(&path, report.to_json(true)).expect("write BENCH_campaign.json");
    println!("wrote {}", path.display());
}
