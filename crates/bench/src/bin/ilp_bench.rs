//! `ilp-bench`: committed benchmark of the sparse revised simplex against
//! the dense baseline on the paper's ILP formulation.
//!
//! ```text
//! cargo run --release -p troy-bench --bin ilp-bench            # regenerate BENCH_ilp.json
//! cargo run --release -p troy-bench --bin ilp-bench -- --check # diff against the committed file
//! ```
//!
//! Every row runs the *same* branch-and-bound tree twice — once with the
//! sparse engine (LU + eta file, devex pricing, warm-started children) and
//! once with the dense Gauss-Jordan baseline (Dantzig pricing, cold
//! starts) — under identical node caps and no wall-clock limit, so the
//! iteration counts are bit-for-bit reproducible across machines. Wall
//! time is recorded for context but never compared: only the
//! deterministic `lp_iterations` column gates CI (>20% regression on the
//! sparse engine fails `--check`).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use troy_bench::{motivational_problem, problem_for, table3_specs};
use troy_ilp::{LpEngine, SolveParams, SolveStatus};
use troyhls::{
    formulate, FormulatedIlp, FormulationOptions, GreedySolver, SolveOptions, SynthesisProblem,
    Synthesizer,
};

/// One benchmarked instance: a named problem plus the node cap that keeps
/// the dense baseline tractable (both engines get the identical cap).
struct BenchCase {
    name: &'static str,
    problem: SynthesisProblem,
    node_limit: usize,
    /// Known optimum the sparse engine must land on (Fig. 5 oracle).
    expect_cost: Option<f64>,
}

/// Measured result of one engine on one case.
struct EngineStats {
    wall_ms: f64,
    lp_iterations: usize,
    nodes: usize,
    refactorizations: usize,
    status: &'static str,
    objective: Option<f64>,
}

fn cases() -> Vec<BenchCase> {
    let t3 = table3_specs();
    let t3_case = |idx: usize, name: &'static str, node_limit: usize| BenchCase {
        name,
        problem: problem_for(&t3[idx]),
        node_limit,
        expect_cost: None,
    };
    vec![
        BenchCase {
            name: "fig5-polynom",
            problem: motivational_problem(),
            node_limit: 40_000,
            expect_cost: Some(4160.0),
        },
        t3_case(0, "table3-polynom-l3", 200),
        t3_case(1, "table3-polynom-l6", 12),
        // The two largest rows of Table 3 — the ones the sparse engine
        // exists for. The dense baseline only gets through a thin slice
        // of the tree, so the cap is small and shared by both engines.
        t3_case(9, "table3-ellipticicass-l16", 60),
        t3_case(11, "table3-fir16-l12", 40),
    ]
}

fn status_name(s: SolveStatus) -> &'static str {
    match s {
        SolveStatus::Optimal => "Optimal",
        SolveStatus::Feasible => "Feasible",
        SolveStatus::Infeasible => "Infeasible",
        SolveStatus::Unknown => "Unknown",
    }
}

fn run_engine(
    ilp: &FormulatedIlp,
    mip_start: Option<Vec<f64>>,
    engine: LpEngine,
    node_limit: usize,
) -> EngineStats {
    let params = SolveParams {
        time_limit: None,
        node_limit,
        integral_objective: true,
        mip_start,
        branch_priority: ilp.branch_priorities(),
        lp_engine: engine,
        // The dense baseline has no warm-start path; leaving the flag on
        // is harmless there and exercises the production default here.
        warm_start: true,
        ..SolveParams::default()
    };
    let t0 = Instant::now();
    let r = ilp.model.solve(&params);
    EngineStats {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        lp_iterations: r.lp_iterations(),
        nodes: r.nodes(),
        refactorizations: r.refactorizations(),
        status: status_name(r.status()),
        objective: r.objective(),
    }
}

struct CaseResult {
    name: &'static str,
    node_limit: usize,
    sparse: EngineStats,
    dense: EngineStats,
}

impl CaseResult {
    fn iteration_speedup(&self) -> f64 {
        self.dense.lp_iterations as f64 / self.sparse.lp_iterations.max(1) as f64
    }
}

fn run_case(case: &BenchCase) -> CaseResult {
    let ilp = formulate(&case.problem, &FormulationOptions::default());
    let mip_start = GreedySolver::new()
        .synthesize(&case.problem, &SolveOptions::quick())
        .ok()
        .and_then(|s| ilp.encode(&s.implementation));
    let sparse = run_engine(&ilp, mip_start.clone(), LpEngine::Sparse, case.node_limit);
    let dense = run_engine(&ilp, mip_start, LpEngine::Dense, case.node_limit);
    if let Some(expect) = case.expect_cost {
        for (label, stats) in [("sparse", &sparse), ("dense", &dense)] {
            let got = stats.objective.unwrap_or(f64::NAN);
            assert!(
                (got - expect).abs() < 0.5,
                "{}: {label} engine landed on {got}, expected {expect}",
                case.name
            );
        }
    }
    CaseResult {
        name: case.name,
        node_limit: case.node_limit,
        sparse,
        dense,
    }
}

fn engine_json(out: &mut String, label: &str, s: &EngineStats) {
    let obj = s
        .objective
        .map_or_else(|| "null".to_owned(), |o| format!("{o:.1}"));
    let _ = write!(
        out,
        "      \"{label}\": {{ \"wall_ms\": {:.1}, \"lp_iterations\": {}, \"nodes\": {}, \
         \"refactorizations\": {}, \"status\": \"{}\", \"objective\": {obj} }}",
        s.wall_ms, s.lp_iterations, s.nodes, s.refactorizations, s.status
    );
}

fn render_json(results: &[CaseResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n");
    out.push_str("  \"note\": \"lp_iterations/nodes/refactorizations are deterministic; wall_ms is informational only\",\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"node_limit\": {},", r.node_limit);
        engine_json(&mut out, "sparse", &r.sparse);
        out.push_str(",\n");
        engine_json(&mut out, "dense", &r.dense);
        out.push_str(",\n");
        let _ = writeln!(
            out,
            "      \"iteration_speedup\": {:.2}",
            r.iteration_speedup()
        );
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Repo-root path of the committed benchmark file.
fn bench_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ilp.json")
}

/// Pulls `"lp_iterations": N` of the `sparse` block for `name` out of the
/// committed JSON — a string scan over our own fixed format, so no JSON
/// dependency is needed.
fn committed_sparse_iterations(text: &str, name: &str) -> Option<usize> {
    let row = text.find(&format!("\"name\": \"{name}\""))?;
    let sparse = row + text[row..].find("\"sparse\"")?;
    let key = sparse + text[sparse..].find("\"lp_iterations\": ")?;
    let digits: String = text[key + "\"lp_iterations\": ".len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn check(results: &[CaseResult]) -> i32 {
    let path = bench_path();
    let Ok(committed) = std::fs::read_to_string(&path) else {
        eprintln!("FAIL: no committed benchmark at {}", path.display());
        return 1;
    };
    let mut failures = 0;
    for r in results {
        let Some(baseline) = committed_sparse_iterations(&committed, r.name) else {
            eprintln!("FAIL: {} missing from the committed file", r.name);
            failures += 1;
            continue;
        };
        let fresh = r.sparse.lp_iterations;
        // >20% more simplex iterations than the committed baseline is a
        // regression; fewer is progress (regenerate the file to bank it).
        let limit = baseline + baseline.div_ceil(5);
        let verdict = if fresh > limit { "REGRESSION" } else { "ok" };
        println!(
            "{:<26} sparse iters: committed {baseline:>8}, fresh {fresh:>8}  (limit {limit}) {verdict}",
            r.name
        );
        if fresh > limit {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("FAIL: {failures} row(s) regressed past the 20% iteration budget");
        1
    } else {
        println!("all rows within the iteration budget");
        0
    }
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    // TROY_ILP_BENCH_CASES=fig5,fir16 narrows the grid (substring match) —
    // handy when calibrating node caps for one row.
    let filter = std::env::var("TROY_ILP_BENCH_CASES").ok();
    let selected: Vec<BenchCase> = cases()
        .into_iter()
        .filter(|c| {
            filter.as_ref().is_none_or(|f| {
                f.split(',')
                    .any(|pat| !pat.is_empty() && c.name.contains(pat.trim()))
            })
        })
        .collect();
    let results: Vec<CaseResult> = selected
        .iter()
        .map(|c| {
            eprintln!("running {} (node cap {})...", c.name, c.node_limit);
            run_case(c)
        })
        .collect();

    println!(
        "{:<26} {:>9} {:>12} {:>7} {:>7} | {:>12} {:>7} | {:>8}",
        "case", "nodes≤", "sparse iters", "nodes", "refact", "dense iters", "nodes", "speedup"
    );
    for r in &results {
        println!(
            "{:<26} {:>9} {:>12} {:>7} {:>7} | {:>12} {:>7} | {:>7.2}x",
            r.name,
            r.node_limit,
            r.sparse.lp_iterations,
            r.sparse.nodes,
            r.sparse.refactorizations,
            r.dense.lp_iterations,
            r.dense.nodes,
            r.iteration_speedup()
        );
    }

    if check_mode {
        std::process::exit(check(&results));
    }
    if filter.is_some() {
        println!("case filter active: not rewriting the committed file");
        return;
    }
    let path = bench_path();
    std::fs::write(&path, render_json(&results)).expect("write BENCH_ilp.json");
    println!("wrote {}", path.display());
}
