//! Dynamic demonstrations of the paper's figures on the run-time simulator.
//!
//! ```text
//! cargo run --release -p troy-bench --bin figures -- [fig1|fig2|fig3|fig4|matrix|campaign|all]
//! ```

use troy_bench::{harness_options, motivational_problem};
use troy_dfg::{benchmarks, IpTypeId, NodeId};
use troy_sim::{
    eval_op, naive_reexecution_recovery_rate, run_campaign, CampaignConfig, CoreLibrary,
    InputVector, Payload, PhaseController, Trigger, Trojan, TrojanState,
};
use troyhls::{ExactSolver, License, Role, Synthesizer};

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    match what.as_str() {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "campaign" => campaign(),
        "matrix" => matrix(),
        "all" => {
            fig1();
            fig2();
            fig3();
            fig4();
            matrix();
            campaign();
        }
        other => {
            eprintln!("unknown figure `{other}`; expected fig1|fig2|fig3|fig4|matrix|campaign|all");
            std::process::exit(2);
        }
    }
}

/// Figure 1: NC/RC duplication on diverse vendors detects an activated
/// Trojan.
fn fig1() {
    println!("Figure 1 — Trojan detection using IP cores from diverse vendors");
    let p = motivational_problem();
    let d = ExactSolver::new()
        .synthesize(&p, &harness_options())
        .expect("motivational instance solves");
    let imp = &d.implementation;
    let iv = InputVector::from_seed(p.dfg(), 2024);
    let victim = NodeId::new(2); // t3 = b*c, feeds the output directly
    let vendor = imp.assignment(victim, Role::Nc).unwrap().vendor;
    let mut lib = CoreLibrary::new();
    lib.infect(
        License {
            vendor,
            ip_type: IpTypeId::MULTIPLIER,
        },
        Trojan {
            trigger: Trigger::on_operand_a(iv.values(victim)[0]),
            payload: Payload::XorMask(0xDEAD_BEEF),
        },
    );
    let mut ctrl = PhaseController::new(&p, imp, &lib);
    let r = ctrl.run(&iv);
    println!("  infected product: {vendor}/multiplier (hosts NC copy of {victim})");
    println!("  NC outputs: {:?}", r.nc);
    println!("  RC outputs: {:?}", r.rc);
    println!(
        "  mismatch detected: {}  (paper: comparison flags the Trojan)",
        r.mismatch
    );
    println!();
}

/// Figure 2: combinational vs sequential trigger mechanisms on one core.
fn fig2() {
    println!("Figure 2 — trigger mechanisms");
    // (a) combinational: payload active while A = 0 and B = 0 (low bits).
    let comb = Trojan {
        trigger: Trigger::Combinational {
            mask_a: 0xFF,
            pattern_a: 0,
            mask_b: 0xFF,
            pattern_b: 0,
        },
        payload: Payload::XorMask(0x1),
    };
    let mut st = TrojanState::new();
    let clean = eval_op(troy_dfg::OpKind::Add, 0x100, 0x200);
    println!(
        "  (a) combinational: add(0x100,0x200) -> {:#x} (corrupted from {:#x})",
        comb.apply(&mut st, 0x100, 0x200, clean),
        clean
    );
    println!(
        "      off-pattern:   add(0x101,0x200) -> {:#x} (clean)",
        comb.apply(
            &mut st,
            0x101,
            0x200,
            eval_op(troy_dfg::OpKind::Add, 0x101, 0x200)
        )
    );
    // (b) sequential: counter reaches threshold after consecutive matches.
    let seq = Trojan {
        trigger: Trigger::Sequential {
            mask: 0,
            pattern: 0,
            threshold: 3,
        },
        payload: Payload::XorMask(0x1),
    };
    let mut st = TrojanState::new();
    for i in 1..=4 {
        let out = seq.apply(&mut st, i, i, 10);
        println!("  (b) sequential: execution {i} -> {out} (fires at count 3)");
    }
    println!();
}

/// Figure 3: a payload with a memory element keeps corrupting after the
/// trigger clears — why the paper scopes recovery to memory-less payloads.
fn fig3() {
    println!("Figure 3 — payload with memory element (excluded from recovery scope)");
    let latched = Trojan {
        trigger: Trigger::on_operand_a(42),
        payload: Payload::Latched(0xF0),
    };
    let mut st = TrojanState::new();
    println!("  before trigger: {:#x}", latched.apply(&mut st, 1, 1, 0));
    println!("  trigger hits:   {:#x}", latched.apply(&mut st, 42, 1, 0));
    println!(
        "  trigger gone:   {:#x}  <- corruption persists (latch set: {})",
        latched.apply(&mut st, 1, 1, 0),
        st.is_latched()
    );
    println!();
}

/// Figure 4: fast recovery by re-binding deactivates the Trojan.
fn fig4() {
    println!("Figure 4 — fast recovery by re-binding operations to different IP cores");
    let p = motivational_problem();
    let d = ExactSolver::new()
        .synthesize(&p, &harness_options())
        .expect("motivational instance solves");
    let imp = &d.implementation;
    let iv = InputVector::from_seed(p.dfg(), 7);
    let victim = NodeId::new(2);
    let det = imp.assignment(victim, Role::Nc).unwrap().vendor;
    let rec = imp.assignment(victim, Role::Recovery).unwrap().vendor;
    let mut lib = CoreLibrary::new();
    lib.infect(
        License {
            vendor: det,
            ip_type: IpTypeId::MULTIPLIER,
        },
        Trojan {
            trigger: Trigger::on_operand_a(iv.values(victim)[0]),
            payload: Payload::AddOffset(1_000_000),
        },
    );
    let mut ctrl = PhaseController::new(&p, imp, &lib);
    let r = ctrl.run(&iv);
    println!("  victim op {victim}: detection vendor {det}, recovery re-bound to {rec}");
    println!("  detection mismatch: {}", r.mismatch);
    println!("  golden:   {:?}", r.golden);
    println!(
        "  recovery: {:?}",
        r.recovery.as_ref().expect("recovery ran")
    );
    println!("  recovered correctly: {}", r.delivered_correct());
    println!();
}

/// Section 3.2's fault-model comparison as a live table: which recovery
/// strategy fixes which fault class.
fn matrix() {
    use troy_sim::{recovery_matrix, FaultClass, RecoveryStrategy};
    println!("Section 3.2 — fault model vs recovery strategy (polynom design)");
    let p = motivational_problem();
    let d = ExactSolver::new()
        .synthesize(&p, &harness_options())
        .expect("motivational instance solves");
    let iv = InputVector::from_seed(p.dfg(), 31);
    let cells = recovery_matrix(&p, &d.implementation, NodeId::new(2), &iv);
    println!(
        "{:<16} {:>20} {:>20}",
        "fault class", "naive re-execution", "rule-based re-bind"
    );
    for fault in [
        FaultClass::SoftTransient,
        FaultClass::HardPermanent,
        FaultClass::Trojan,
    ] {
        let get = |s: RecoveryStrategy| {
            cells
                .iter()
                .find(|c| c.fault == fault && c.strategy == s)
                .map_or("-", |c| if c.recovered { "recovers" } else { "FAILS" })
        };
        println!(
            "{:<16} {:>20} {:>20}",
            format!("{fault:?}"),
            get(RecoveryStrategy::NaiveReexecution),
            get(RecoveryStrategy::RuleBasedRebinding)
        );
    }
    println!();
}

/// Monte-Carlo campaign: detection & recovery rates vs the naive
/// re-execution baseline of Section 3.2.
fn campaign() {
    println!("Campaign — Monte-Carlo Trojan injection (diff2, 8-vendor catalog)");
    let p = troyhls::SynthesisProblem::builder(benchmarks::diff2(), troyhls::Catalog::paper8())
        .mode(troyhls::Mode::DetectionRecovery)
        .detection_latency(5)
        .recovery_latency(5)
        .build()
        .expect("diff2 instance");
    let d = ExactSolver::new()
        .synthesize(&p, &harness_options())
        .expect("diff2 solves");
    for rarity in [4u32, 6, 8] {
        let cfg = CampaignConfig {
            runs: 400,
            rarity_bits: rarity,
            targeted_percent: 70,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&p, &d.implementation, &cfg);
        let naive = naive_reexecution_recovery_rate(&p, &d.implementation, &cfg);
        println!(
            "  rarity {rarity:>2} bits: {} runs, {} corrupting activations, \
             detection {:.1}%, recovery {:.1}% (naive re-execution: {:.1}%)",
            r.runs,
            r.corrupted,
            100.0 * r.detection_rate(),
            100.0 * r.recovery_rate(),
            100.0 * naive,
        );
    }
    println!();
}
