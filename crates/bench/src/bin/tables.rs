//! Regenerates the paper's tables.
//!
//! ```text
//! cargo run --release -p troy-bench --bin tables -- [table1|table3|table4|fig5|overhead|all]
//! ```

use troy_bench::{
    format_table, harness_options, motivational_problem, run_rows, table3_specs, table4_specs,
};
use troy_dfg::{benchmarks, IpTypeId};
use troy_portfolio::BatchConfig;
use troyhls::{
    unprotected_cost, Catalog, ExactSolver, Mode, SolveOptions, SynthesisProblem, Synthesizer,
};

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    match what.as_str() {
        "table1" => table1(),
        "table3" => table(3),
        "table4" => table(4),
        "fig5" => fig5(),
        "overhead" => overhead(),
        "all" => {
            table1();
            fig5();
            table(3);
            table(4);
            overhead();
        }
        other => {
            eprintln!("unknown table `{other}`; expected table1|table3|table4|fig5|overhead|all");
            std::process::exit(2);
        }
    }
}

/// Table 1: the 4-vendor motivational catalog.
fn table1() {
    println!("Table 1 — area and cost for each type of computational IP");
    println!(
        "{:<8} {:<12} {:>12} {:>10}",
        "vendor", "type", "area", "cost"
    );
    let cat = Catalog::table1();
    for v in cat.vendors() {
        for t in [IpTypeId::ADDER, IpTypeId::MULTIPLIER] {
            if let Some(off) = cat.offering(v, t) {
                println!(
                    "{:<8} {:<12} {:>12} {:>10}",
                    v.to_string(),
                    t.to_string(),
                    off.area,
                    format!("${}", off.cost)
                );
            }
        }
    }
    println!();
}

/// Figure 5: the motivational example and its $4160 optimum.
fn fig5() {
    println!("Figure 5 — motivational example (polynom, Table 1 catalog,");
    println!("           lambda_det = 4, lambda_rec = 3, area <= 22000)");
    let p = motivational_problem();
    match ExactSolver::new().synthesize(&p, &harness_options()) {
        Ok(s) => {
            let stats = s.implementation.stats(&p);
            println!("  minimum purchasing cost: ${} (paper: $4160)", s.cost);
            println!("  proven optimal: {}", s.proven_optimal);
            println!("  {stats}");
            println!("  licenses:");
            for l in s.implementation.licenses_used(&p) {
                let off = p.catalog().offering_of(l).expect("used license");
                println!("    {l:<22} area {:>6}  ${}", off.area, off.cost);
            }
        }
        Err(e) => println!("  FAILED: {e}"),
    }
    println!();
}

fn table(which: usize) {
    let (title, specs) = if which == 3 {
        (
            "Table 3 — designs with detection only (8-vendor catalog)",
            table3_specs(),
        )
    } else {
        (
            "Table 4 — designs with detection and recovery (8-vendor catalog)",
            table4_specs(),
        )
    };
    // Rows are independent: spread them over the batch pool (TROY_JOBS or
    // the machine width) with the same exact engine as before.
    let config = BatchConfig {
        portfolio: false,
        options: harness_options(),
        ..BatchConfig::default()
    };
    let results = run_rows(&specs, &config, None);
    println!("{}", format_table(title, &results));
    // The paper's headline observation: detection-only underestimates the
    // diversity (and cost) a recoverable design needs.
    if which == 4 {
        println!(
            "note: mc' columns of Table 4 exceed Table 3 on every benchmark —\n\
             the detection-only flow underestimates the required IP diversity."
        );
    }
    println!();
}

/// Derived table: the license-cost price of each protection level relative
/// to an unprotected single-computation design (not in the paper, but the
/// number a procurement decision actually turns on).
fn overhead() {
    println!("Cost of security — license bill by protection level (8-vendor catalog)");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "benchmark", "unprotected", "detection", "recovery", "det x", "rec x"
    );
    let options = SolveOptions {
        time_limit: std::time::Duration::from_secs(30),
        ..harness_options()
    };
    for g in benchmarks::paper_suite() {
        let cp = g.critical_path_len();
        let base = unprotected_cost(&g, &Catalog::paper8()).expect("catalog covers all types");
        let solve = |mode: Mode| -> Option<u64> {
            let p = SynthesisProblem::builder(g.clone(), Catalog::paper8())
                .mode(mode)
                .detection_latency(cp + 1)
                .recovery_latency(cp + 1)
                .build()
                .ok()?;
            ExactSolver::new()
                .synthesize(&p, &options)
                .ok()
                .map(|s| s.cost)
        };
        let det = solve(Mode::DetectionOnly);
        let rec = solve(Mode::DetectionRecovery);
        let fmt = |c: Option<u64>| c.map_or("-".to_owned(), |c| format!("${c}"));
        let ratio =
            |c: Option<u64>| c.map_or("-".to_owned(), |c| format!("{:.2}", c as f64 / base as f64));
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>8} {:>8}",
            g.name(),
            format!("${base}"),
            fmt(det),
            fmt(rec),
            ratio(det),
            ratio(rec),
        );
    }
    println!();
}
