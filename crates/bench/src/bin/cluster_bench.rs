//! `cluster-bench`: committed self-healing cluster record.
//!
//! ```text
//! cargo run --release -p troy-bench --bin cluster-bench            # regenerate BENCH_cluster.json
//! cargo run --release -p troy-bench --bin cluster-bench -- --check # gate against the committed file
//! ```
//!
//! Two phases, both against an in-process [`troy_cluster::Cluster`]:
//!
//! 1. **Replica drill** (chaos off, deterministic): solve the six tiny
//!    workload keys through a three-worker router with replication 2,
//!    wait for write-behind to land, kill one key's owner, and re-request
//!    every key — each must come back from cache, so killing an owner
//!    costs **zero re-solves**.
//! 2. **Chaos sweep** (seeds 1..=12): the soak workload — ten requests
//!    per seed against three workers — with respawn, replication and the
//!    dispatch journal all enabled under seeded dispatch + self-heal
//!    faults, accumulating availability, failover count and the
//!    replica-hit rate.
//!
//! `--check` re-runs both phases and fails on: any lost request (ever),
//! a drill re-solve, availability more than 5 points below the committed
//! record, a replica-hit rate more than 10 points below it, or a sweep
//! in which failover or respawn never fired.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use troy_cluster::{Cluster, ClusterConfig, ClusterSnapshot};
use troy_resilience::Chaos;
use troy_service::{parse_request, BreakerConfig, Json};

/// Chaos seeds of the committed sweep.
const SWEEP_SEEDS: std::ops::RangeInclusive<u64> = 1..=12;

/// Requests per sweep seed (mirrors the cluster soak).
const REQUESTS_PER_SEED: usize = 10;

// ---------------------------------------------------------------- client

fn roundtrip(addr: SocketAddr, line: &str, budget: Duration) -> Option<Json> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_nodelay(true).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok()?;
    stream.write_all(line.as_bytes()).ok()?;
    stream.write_all(b"\n").ok()?;
    let deadline = Instant::now() + budget;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    while Instant::now() < deadline {
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let text = String::from_utf8_lossy(&buf[..nl]).into_owned();
            return Json::parse(&text);
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    None
}

fn tiny_variant(id: &str, variant: usize, deadline_ms: u64) -> String {
    let dfg = "dfg tiny\\nop a add\\nop b add\\nop c mul\\nedge a b\\nedge b c\\n";
    let (det, rec) = [(6, 5), (7, 5), (8, 5), (6, 4), (7, 4), (8, 4)][variant % 6];
    format!(
        "{{\"id\":\"{id}\",\"cmd\":\"synth\",\"dfg\":\"{dfg}\",\"catalog\":\"table1\",\
         \"lambda_det\":{det},\"lambda_rec\":{rec},\"deadline_ms\":{deadline_ms}}}"
    )
}

fn wait_for(budget: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + budget;
    loop {
        if probe() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

// ---------------------------------------------------------------- phases

#[derive(Default)]
struct Drill {
    keys: usize,
    cached: usize,
    resolves: usize,
    lost: usize,
}

/// Phase 1: deterministic replica drill (chaos off).
fn run_drill() -> Drill {
    let config = ClusterConfig {
        workers: 3,
        replication: 2,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("drill cluster");
    let router = cluster.local_addr();
    let handle = cluster.handle();

    let mut drill = Drill {
        keys: 6,
        ..Drill::default()
    };
    for v in 0..6 {
        let resp = roundtrip(
            router,
            &tiny_variant(&format!("warm{v}"), v, 8000),
            Duration::from_secs(15),
        )
        .expect("drill warmup");
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "drill warmup must solve: {resp:?}"
        );
    }
    // Write-behind is asynchronous: each fresh solve puts one replica.
    let landed = wait_for(Duration::from_secs(10), || {
        cluster.stats().replicas_put >= 6
    });
    assert!(landed, "write-behind must land all six replicas");

    let victim = tiny_variant("warm0", 0, 8000);
    let owner = handle
        .placement(&parse_request(&victim).expect("victim parses"))
        .expect("placement")[0];
    assert!(handle.kill_worker(owner), "drill kills one owner");

    for v in 0..6 {
        match roundtrip(
            router,
            &tiny_variant(&format!("again{v}"), v, 8000),
            Duration::from_secs(15),
        ) {
            Some(resp) => {
                if resp.get("cached") == Some(&Json::Bool(true)) {
                    drill.cached += 1;
                } else {
                    drill.resolves += 1;
                }
            }
            None => drill.lost += 1,
        }
    }

    handle.shutdown();
    let _ = cluster.join();
    drill
}

#[derive(Default)]
struct Sweep {
    requests: u64,
    answered: u64,
    ok: u64,
    degraded: u64,
    rejected: u64,
    error: u64,
    latency_us_total: u128,
    totals: ClusterSnapshot,
}

impl Sweep {
    fn lost(&self) -> u64 {
        self.requests - self.answered
    }

    fn availability(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.ok + self.degraded) as f64 / self.requests as f64
    }

    fn replica_hit_rate(&self) -> f64 {
        if self.totals.probes == 0 {
            return 0.0;
        }
        self.totals.probe_hits as f64 / self.totals.probes as f64
    }
}

/// Phase 2: the seeded chaos sweep with every self-healing layer on.
fn run_sweep() -> Sweep {
    let mut sweep = Sweep::default();
    for seed in SWEEP_SEEDS {
        let wal_dir = std::env::temp_dir().join(format!(
            "troy-cluster-bench-wal-{seed}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let config = ClusterConfig {
            workers: 3,
            chaos: Chaos::seeded(seed),
            health_interval: Duration::from_millis(50),
            health_timeout: Duration::from_millis(150),
            worker_breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(200),
            },
            default_deadline: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(3),
            dispatch_grace: Duration::from_millis(400),
            respawn: true,
            max_respawns: 32,
            replication: 2,
            journal_dir: Some(wal_dir.clone()),
            ..ClusterConfig::default()
        };
        let cluster = Cluster::start(config).expect("sweep cluster");
        let router = cluster.local_addr();
        for i in 0..REQUESTS_PER_SEED {
            let variant = (i % 4) + usize::try_from(seed % 3).expect("small");
            let line = tiny_variant(&format!("s{seed}r{i}"), variant, 3000);
            sweep.requests += 1;
            let t0 = Instant::now();
            // A `None` is a lost request; the gate catches it.
            if let Some(resp) = roundtrip(router, &line, Duration::from_secs(10)) {
                sweep.answered += 1;
                sweep.latency_us_total += t0.elapsed().as_micros();
                match resp.get("status").and_then(Json::as_str) {
                    Some("ok") => sweep.ok += 1,
                    Some("degraded") => sweep.degraded += 1,
                    Some("rejected") => sweep.rejected += 1,
                    _ => sweep.error += 1,
                }
            }
        }
        cluster.handle().shutdown();
        let snap = cluster.join();
        let _ = std::fs::remove_dir_all(&wal_dir);
        let t = &mut sweep.totals;
        t.failovers += snap.failovers;
        t.probes += snap.probes;
        t.probe_hits += snap.probe_hits;
        t.respawns += snap.respawns;
        t.replicas_put += snap.replicas_put;
        t.read_repairs += snap.read_repairs;
        t.warmed += snap.warmed;
        t.journal_appends += snap.journal_appends;
        t.chaos_kills += snap.chaos_kills;
        t.chaos_partitions += snap.chaos_partitions;
        t.chaos_torn += snap.chaos_torn;
        t.chaos_stalls += snap.chaos_stalls;
        t.chaos_respawn_storms += snap.chaos_respawn_storms;
        t.chaos_replica_drops += snap.chaos_replica_drops;
        t.chaos_journal_torn += snap.chaos_journal_torn;
    }
    sweep
}

// ---------------------------------------------------------------- record

fn bench_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cluster.json")
}

fn render(drill: &Drill, sweep: &Sweep) -> String {
    let latency_us_mean = if sweep.answered == 0 {
        0
    } else {
        sweep.latency_us_total / u128::from(sweep.answered)
    };
    let t = &sweep.totals;
    format!(
        "{{\n  \"schema\": 1,\n  \"note\": \"counts are deterministic in the \
         chaos seeds; availability and replica_hit_rate carry small timing \
         jitter (gated with tolerance); latency_us_mean is informational \
         only\",\n  \"drill\": {{ \"keys\": {}, \"cached\": {}, \"resolves\": {}, \
         \"lost\": {} }},\n  \"sweep\": {{\n    \"seeds\": {}, \"requests\": {}, \
         \"answered\": {}, \"lost\": {},\n    \"ok\": {}, \"degraded\": {}, \
         \"rejected\": {}, \"error\": {},\n    \"availability\": {:.4},\n    \
         \"failovers\": {}, \"probes\": {}, \"probe_hits\": {}, \
         \"replica_hit_rate\": {:.4},\n    \"respawns\": {}, \"replicas_put\": {}, \
         \"read_repairs\": {}, \"warmed\": {}, \"journal_appends\": {},\n    \
         \"chaos\": {{ \"kills\": {}, \"partitions\": {}, \"torn\": {}, \
         \"stalls\": {}, \"respawn_storms\": {}, \"replica_drops\": {}, \
         \"journal_torn\": {} }},\n    \"latency_us_mean\": {}\n  }}\n}}\n",
        drill.keys,
        drill.cached,
        drill.resolves,
        drill.lost,
        SWEEP_SEEDS.count(),
        sweep.requests,
        sweep.answered,
        sweep.lost(),
        sweep.ok,
        sweep.degraded,
        sweep.rejected,
        sweep.error,
        sweep.availability(),
        t.failovers,
        t.probes,
        t.probe_hits,
        sweep.replica_hit_rate(),
        t.respawns,
        t.replicas_put,
        t.read_repairs,
        t.warmed,
        t.journal_appends,
        t.chaos_kills,
        t.chaos_partitions,
        t.chaos_torn,
        t.chaos_stalls,
        t.chaos_respawn_storms,
        t.chaos_replica_drops,
        t.chaos_journal_torn,
        latency_us_mean,
    )
}

/// Pulls a `"key": <number>` value out of the committed JSON — a string
/// scan over our own fixed format, so no JSON dependency is needed.
fn committed_value(text: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let at = text.find(&tag)? + tag.len();
    let digits: String = text[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    digits.parse().ok()
}

fn check(drill: &Drill, sweep: &Sweep) -> i32 {
    let mut failures = 0;

    // Lost requests are a hard zero — the cluster contract.
    if sweep.lost() == 0 && drill.lost == 0 {
        println!("lost requests: 0 (contract holds)");
    } else {
        eprintln!(
            "FAIL: lost requests: drill {} sweep {}",
            drill.lost,
            sweep.lost()
        );
        failures += 1;
    }

    // The drill's whole point: a dead owner costs zero re-solves.
    if drill.resolves == 0 && drill.cached == drill.keys {
        println!(
            "replica drill: {}/{} keys served from cache after the owner kill",
            drill.cached, drill.keys
        );
    } else {
        eprintln!(
            "FAIL: replica drill re-solved {} of {} keys (cached {})",
            drill.resolves, drill.keys, drill.cached
        );
        failures += 1;
    }

    if sweep.totals.failovers == 0 {
        eprintln!("FAIL: the sweep never exercised failover");
        failures += 1;
    }
    if sweep.totals.respawns == 0 {
        eprintln!("FAIL: the sweep never exercised respawn");
        failures += 1;
    }

    let path = bench_path();
    let Ok(committed) = std::fs::read_to_string(&path) else {
        eprintln!("FAIL: no committed record at {}", path.display());
        return 1;
    };
    for (key, fresh, slack) in [
        ("availability", sweep.availability(), 0.05),
        ("replica_hit_rate", sweep.replica_hit_rate(), 0.10),
    ] {
        let Some(baseline) = committed_value(&committed, key) else {
            eprintln!("FAIL: committed record lacks {key}");
            failures += 1;
            continue;
        };
        let limit = baseline - slack;
        let verdict = if fresh < limit { "REGRESSION" } else { "ok" };
        println!("{key}: committed {baseline:.4}, fresh {fresh:.4} (limit {limit:.4}) {verdict}");
        if fresh < limit {
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("FAIL: {failures} cluster gate(s) tripped");
        1
    } else {
        println!("all cluster gates passed");
        0
    }
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");

    let t0 = Instant::now();
    let drill = run_drill();
    eprintln!(
        "replica drill done in {:.0} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    let t0 = Instant::now();
    let sweep = run_sweep();
    eprintln!(
        "chaos sweep ({} seeds) done in {:.0} ms",
        SWEEP_SEEDS.count(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    print!("{}", render(&drill, &sweep));

    if check_mode {
        std::process::exit(check(&drill, &sweep));
    }
    if sweep.lost() > 0 || drill.lost > 0 || drill.resolves > 0 {
        eprintln!("refusing to commit a record with lost requests or drill re-solves");
        std::process::exit(1);
    }
    let path = bench_path();
    std::fs::write(&path, render(&drill, &sweep)).expect("write BENCH_cluster.json");
    println!("wrote {}", path.display());
}
