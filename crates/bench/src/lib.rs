//! Benchmark harness for the TroyHLS reproduction: the exact experiment
//! grid of the DAC'14 paper's Tables 3 and 4 (plus the Figure 5
//! motivational instance), with the paper's reported numbers carried along
//! for side-by-side comparison.
//!
//! The binaries `tables` and `figures` regenerate every table and figure;
//! the Criterion benches under `benches/` measure the solvers and the
//! run-time simulator on the same grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use troy_dfg::benchmarks;
use troy_portfolio::{solve_batch, BatchConfig, ResultCache};
use troyhls::{
    Catalog, DesignStats, ExactSolver, Implementation, Mode, SolveOptions, SynthesisProblem,
    Synthesizer,
};

/// One experiment row: a benchmark under constraints, plus what the paper
/// reported for it.
#[derive(Debug, Clone, Copy)]
pub struct RowSpec {
    /// Benchmark name (see [`troy_dfg::benchmarks::by_name`]).
    pub benchmark: &'static str,
    /// Protection mode (Table 3 = detection only, Table 4 = +recovery).
    pub mode: Mode,
    /// The paper's λ: total schedule length. Detection-only rows use it as
    /// the detection window; recovery rows split it across both phases.
    pub lambda: usize,
    /// The paper's area bound `A̅`.
    pub area: u64,
    /// Paper-reported columns.
    pub paper: PaperRow,
}

/// The paper's reported result columns for one row.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// IP-core instances used.
    pub u: usize,
    /// Distinct licenses bought.
    pub t: usize,
    /// Distinct vendors used.
    pub v: usize,
    /// Minimum license cost in dollars.
    pub mc: u64,
    /// `true` for rows the paper marks `*` (best within an hour).
    pub approx: bool,
}

/// Outcome of re-running one row with this implementation.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// The spec that was run.
    pub spec: RowSpec,
    /// Design statistics, when a design was found.
    pub stats: Option<DesignStats>,
    /// The synthesized design itself.
    pub implementation: Option<Implementation>,
    /// Whether our solver proved optimality.
    pub proven_optimal: bool,
    /// Wall-clock solve time.
    pub elapsed: Duration,
}

/// Table 3 of the paper: designs with detection only (12 rows).
#[must_use]
pub fn table3_specs() -> Vec<RowSpec> {
    let row = |benchmark, lambda, area, u, t, v, mc, approx| RowSpec {
        benchmark,
        mode: Mode::DetectionOnly,
        lambda,
        area,
        paper: PaperRow {
            u,
            t,
            v,
            mc,
            approx,
        },
    };
    vec![
        row("polynom", 3, 30_000, 8, 6, 4, 3580, false),
        row("polynom", 6, 20_000, 6, 6, 5, 3320, false),
        row("diff2", 4, 50_000, 14, 7, 5, 4130, false),
        row("diff2", 14, 30_000, 9, 7, 5, 4130, false),
        row("dtmf", 4, 70_000, 16, 5, 5, 2960, false),
        row("dtmf", 8, 30_000, 9, 5, 5, 2960, false),
        row("mof2", 7, 80_000, 18, 4, 4, 2440, false),
        row("mof2", 14, 40_000, 8, 4, 4, 2440, false),
        row("ellipticicass", 8, 30_000, 28, 6, 5, 2690, false),
        row("ellipticicass", 16, 20_000, 29, 7, 6, 3240, true),
        row("fir16", 6, 200_000, 41, 5, 5, 2960, false),
        row("fir16", 12, 140_000, 31, 5, 5, 2960, false),
    ]
}

/// Table 4 of the paper: designs with detection and recovery (12 rows).
#[must_use]
pub fn table4_specs() -> Vec<RowSpec> {
    let row = |benchmark, lambda, area, u, t, v, mc, approx| RowSpec {
        benchmark,
        mode: Mode::DetectionRecovery,
        lambda,
        area,
        paper: PaperRow {
            u,
            t,
            v,
            mc,
            approx,
        },
    };
    vec![
        row("polynom", 6, 60_000, 10, 9, 7, 5140, false),
        row("polynom", 12, 30_000, 9, 9, 6, 5140, false),
        row("diff2", 8, 80_000, 17, 9, 7, 5140, false),
        row("diff2", 14, 30_000, 9, 9, 6, 5190, false),
        row("dtmf", 8, 70_000, 20, 6, 5, 3830, false),
        row("dtmf", 15, 35_000, 12, 6, 5, 3830, false),
        row("mof2", 14, 80_000, 17, 6, 5, 3830, false),
        row("mof2", 24, 40_000, 22, 6, 5, 3830, false),
        row("ellipticicass", 16, 50_000, 31, 7, 6, 3180, true),
        row("ellipticicass", 24, 40_000, 44, 9, 8, 4850, true),
        row("fir16", 12, 220_000, 39, 6, 5, 3830, false),
        row("fir16", 16, 180_000, 40, 6, 4, 4390, true),
    ]
}

/// The Figure 5 motivational instance: polynom on the Table 1 catalog,
/// λ_det = 4, λ_rec = 3, area ≤ 22000. The paper's optimum is **$4160**.
///
/// # Panics
///
/// Panics if the instance fails validation (it cannot — constants are
/// known-good).
#[must_use]
pub fn motivational_problem() -> SynthesisProblem {
    SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
        .mode(Mode::DetectionRecovery)
        .detection_latency(4)
        .recovery_latency(3)
        .area_limit(22_000)
        .build()
        .expect("the motivational instance is well-formed")
}

/// Builds the [`SynthesisProblem`] for a row (8-vendor experiment catalog).
///
/// # Panics
///
/// Panics on an unknown benchmark name or invalid constraints — the specs
/// in this crate are known-good.
#[must_use]
pub fn problem_for(spec: &RowSpec) -> SynthesisProblem {
    let dfg = benchmarks::by_name(spec.benchmark)
        .unwrap_or_else(|| panic!("unknown benchmark {}", spec.benchmark));
    let builder = SynthesisProblem::builder(dfg, Catalog::paper8()).mode(spec.mode);
    let builder = match spec.mode {
        Mode::DetectionOnly => builder.detection_latency(spec.lambda),
        Mode::DetectionRecovery => builder.total_latency(spec.lambda),
    };
    builder
        .area_limit(spec.area)
        .build()
        .expect("table rows are well-formed")
}

/// Runs one row with the exact solver.
#[must_use]
pub fn run_row(spec: &RowSpec, options: &SolveOptions) -> RowResult {
    let problem = problem_for(spec);
    let t0 = Instant::now();
    match ExactSolver::new().synthesize(&problem, options) {
        Ok(s) => RowResult {
            spec: *spec,
            stats: Some(s.implementation.stats(&problem)),
            proven_optimal: s.proven_optimal,
            implementation: Some(s.implementation),
            elapsed: t0.elapsed(),
        },
        Err(_) => RowResult {
            spec: *spec,
            stats: None,
            implementation: None,
            proven_optimal: false,
            elapsed: t0.elapsed(),
        },
    }
}

/// Runs a whole table's rows concurrently over the portfolio batch pool,
/// returning results in spec order.
///
/// With `config.portfolio` off and [`troy_portfolio::Backend::Exact`]
/// selected (the [`BatchConfig::default`] backend) every row is solved by
/// the same engine [`run_row`] uses, so the two paths agree row for row;
/// the win is wall-clock (rows spread over `config.jobs` workers) and,
/// when `cache` is given, free re-runs of unchanged grids.
#[must_use]
pub fn run_rows(
    specs: &[RowSpec],
    config: &BatchConfig,
    cache: Option<&ResultCache>,
) -> Vec<RowResult> {
    let problems: Vec<SynthesisProblem> = specs.iter().map(problem_for).collect();
    let results = solve_batch(&problems, config, cache);
    specs
        .iter()
        .zip(problems.iter())
        .zip(results)
        .map(|((spec, problem), outcome)| match outcome {
            Ok(r) => RowResult {
                spec: *spec,
                stats: Some(r.synthesis.implementation.stats(problem)),
                proven_optimal: r.synthesis.proven_optimal,
                implementation: Some(r.synthesis.implementation),
                elapsed: r.elapsed,
            },
            Err(_) => RowResult {
                spec: *spec,
                stats: None,
                implementation: None,
                proven_optimal: false,
                elapsed: Duration::ZERO,
            },
        })
        .collect()
}

/// Formats a full table (header + one line per row result), paper numbers
/// beside measured ones.
#[must_use]
pub fn format_table(title: &str, results: &[RowResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<14} {:>3} {:>3} {:>7} | {:>3} {:>2} {:>2} {:>6} | {:>3} {:>2} {:>2} {:>6} {:>5} {:>10}",
        "benchmark", "n", "lam", "A", "u", "t", "v", "mc", "u'", "t'", "v'", "mc'", "opt", "time"
    );
    let _ = writeln!(
        out,
        "{:-<14} {:-<3} {:-<3} {:-<7} + {:-<17} + {:-<33}",
        "", "", "", "", " paper ", " measured "
    );
    for r in results {
        let n = troy_dfg::benchmarks::by_name(r.spec.benchmark).map_or(0, |g| g.len());
        let paper_mc = format!(
            "{}{}",
            r.spec.paper.mc,
            if r.spec.paper.approx { "*" } else { "" }
        );
        match &r.stats {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "{:<14} {:>3} {:>3} {:>7} | {:>3} {:>2} {:>2} {:>6} | {:>3} {:>2} {:>2} {:>6} {:>5} {:>10}",
                    r.spec.benchmark,
                    n,
                    r.spec.lambda,
                    r.spec.area,
                    r.spec.paper.u,
                    r.spec.paper.t,
                    r.spec.paper.v,
                    paper_mc,
                    s.instances_used,
                    s.licenses_used,
                    s.vendors_used,
                    format!(
                        "{}{}",
                        s.license_cost,
                        if r.proven_optimal { "" } else { "*" }
                    ),
                    if r.proven_optimal { "yes" } else { "no" },
                    format!("{:.1?}", r.elapsed),
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<14} {:>3} {:>3} {:>7} | {:>3} {:>2} {:>2} {:>6} | {:>33}",
                    r.spec.benchmark,
                    n,
                    r.spec.lambda,
                    r.spec.area,
                    r.spec.paper.u,
                    r.spec.paper.t,
                    r.spec.paper.v,
                    paper_mc,
                    "no design found",
                );
            }
        }
    }
    out
}

/// Default harness budget: generous enough for every row on a laptop.
#[must_use]
pub fn harness_options() -> SolveOptions {
    SolveOptions {
        time_limit: Duration::from_secs(60),
        node_limit: 500_000,
        ..SolveOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_all_benchmarks_twice() {
        for specs in [table3_specs(), table4_specs()] {
            assert_eq!(specs.len(), 12);
            for name in ["polynom", "diff2", "dtmf", "mof2", "ellipticicass", "fir16"] {
                assert_eq!(
                    specs.iter().filter(|s| s.benchmark == name).count(),
                    2,
                    "{name}"
                );
            }
        }
    }

    #[test]
    fn every_spec_builds_a_problem() {
        for spec in table3_specs().iter().chain(table4_specs().iter()) {
            let p = problem_for(spec);
            assert_eq!(p.mode(), spec.mode);
            assert_eq!(p.total_latency(), spec.lambda);
            assert_eq!(p.area_limit(), spec.area);
        }
    }

    #[test]
    fn motivational_problem_matches_figure5() {
        let p = motivational_problem();
        assert_eq!(p.detection_latency(), 4);
        assert_eq!(p.recovery_latency(), 3);
        assert_eq!(p.area_limit(), 22_000);
        assert_eq!(p.dfg().len(), 5);
    }

    #[test]
    fn run_row_produces_valid_design_on_easy_row() {
        let spec = table3_specs()[0];
        let r = run_row(&spec, &SolveOptions::quick());
        let stats = r.stats.expect("polynom lam=3 is feasible");
        assert!(stats.license_cost > 0);
        let p = problem_for(&spec);
        assert!(troyhls::validate(&p, r.implementation.as_ref().unwrap()).is_empty());
    }

    #[test]
    fn run_rows_agrees_with_run_row() {
        let specs = vec![table3_specs()[0], table3_specs()[1]];
        let config = BatchConfig {
            jobs: 2,
            portfolio: false,
            options: SolveOptions::quick(),
            ..BatchConfig::default()
        };
        let batch = run_rows(&specs, &config, None);
        assert_eq!(batch.len(), specs.len());
        for (spec, b) in specs.iter().zip(&batch) {
            let single = run_row(spec, &SolveOptions::quick());
            assert_eq!(
                single.stats.as_ref().map(|s| s.license_cost),
                b.stats.as_ref().map(|s| s.license_cost),
                "{}",
                spec.benchmark
            );
            assert_eq!(single.proven_optimal, b.proven_optimal);
        }
    }

    #[test]
    fn run_rows_cache_serves_second_pass() {
        let specs = vec![table3_specs()[0]];
        let config = BatchConfig {
            jobs: 1,
            portfolio: false,
            options: SolveOptions::quick(),
            ..BatchConfig::default()
        };
        let cache = ResultCache::in_memory();
        let cold = run_rows(&specs, &config, Some(&cache));
        let warm = run_rows(&specs, &config, Some(&cache));
        assert_eq!(
            cold[0].stats.as_ref().map(|s| s.license_cost),
            warm[0].stats.as_ref().map(|s| s.license_cost)
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn format_table_contains_paper_and_measured_columns() {
        let spec = table3_specs()[0];
        let r = run_row(&spec, &SolveOptions::quick());
        let text = format_table("Table 3", &[r]);
        assert!(text.contains("polynom"));
        assert!(text.contains("3580")); // paper value present
        assert!(text.contains("measured"));
    }
}
