//! Figure 5: solve the motivational instance to its $4160 optimum.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use troy_bench::{harness_options, motivational_problem};
use troyhls::{ExactSolver, GreedySolver, Synthesizer};

fn bench_motivational(c: &mut Criterion) {
    let problem = motivational_problem();
    let options = harness_options();

    // Sanity: the result this bench times must be the paper's optimum.
    let s = ExactSolver::new()
        .synthesize(&problem, &options)
        .expect("feasible");
    assert_eq!(s.cost, 4160, "Figure 5 optimum");

    let mut g = c.benchmark_group("fig5_motivational");
    g.sample_size(20);
    g.bench_function("exact_4160", |b| {
        b.iter(|| {
            let s = ExactSolver::new()
                .synthesize(black_box(&problem), &options)
                .expect("feasible");
            assert_eq!(s.cost, 4160);
            s.cost
        });
    });
    g.bench_function("greedy_upper_bound", |b| {
        b.iter(|| {
            GreedySolver::new()
                .synthesize(black_box(&problem), &options)
                .expect("feasible")
                .cost
        });
    });
    g.finish();
}

criterion_group!(benches, bench_motivational);
criterion_main!(benches);
