//! Run-time simulation throughput: mission steps and injection campaigns.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use troy_bench::{harness_options, motivational_problem};
use troy_sim::{run_campaign, CampaignConfig, CoreLibrary, InputVector, PhaseController};
use troyhls::{ExactSolver, Synthesizer};

fn bench_runtime(c: &mut Criterion) {
    let problem = motivational_problem();
    let design = ExactSolver::new()
        .synthesize(&problem, &harness_options())
        .expect("feasible");
    let library = CoreLibrary::new();

    let mut g = c.benchmark_group("runtime_sim");
    g.sample_size(30).measurement_time(Duration::from_secs(3));

    g.bench_function("mission_step_clean", |b| {
        let mut ctrl = PhaseController::new(&problem, &design.implementation, &library);
        let inputs = InputVector::from_seed(problem.dfg(), 11);
        b.iter(|| {
            let report = ctrl.run(black_box(&inputs));
            assert!(!report.mismatch);
            report.nc.len()
        });
    });

    g.bench_function("campaign_50_runs", |b| {
        let cfg = CampaignConfig {
            runs: 50,
            rarity_bits: 6,
            targeted_percent: 70,
            ..CampaignConfig::default()
        };
        b.iter(|| run_campaign(&problem, black_box(&design.implementation), &cfg).detected);
    });

    g.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
