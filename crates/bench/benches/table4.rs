//! Table 4: detection+recovery synthesis across the six benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use troy_bench::{harness_options, problem_for, table4_specs};
use troyhls::{ExactSolver, Synthesizer};

fn bench_table4(c: &mut Criterion) {
    let options = harness_options();
    let mut g = c.benchmark_group("table4_detection_recovery");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for spec in table4_specs() {
        let problem = problem_for(&spec);
        let id = format!("{}_lam{}", spec.benchmark, spec.lambda);
        g.bench_function(&id, |b| {
            b.iter(|| {
                ExactSolver::new()
                    .synthesize(black_box(&problem), &options)
                    .map(|s| s.cost)
                    .ok()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
