//! Table 3: detection-only synthesis across the six benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use troy_bench::{harness_options, problem_for, table3_specs};
use troyhls::{ExactSolver, Synthesizer};

fn bench_table3(c: &mut Criterion) {
    let options = harness_options();
    let mut g = c.benchmark_group("table3_detection_only");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for spec in table3_specs() {
        let problem = problem_for(&spec);
        let id = format!("{}_lam{}", spec.benchmark, spec.lambda);
        g.bench_function(&id, |b| {
            b.iter(|| {
                // Some tight rows legitimately return best-effort results;
                // the bench times whatever the harness row produces.
                ExactSolver::new()
                    .synthesize(black_box(&problem), &options)
                    .map(|s| s.cost)
                    .ok()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
