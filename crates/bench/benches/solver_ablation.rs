//! Ablation: exact domain search vs the paper's ILP (tight and literal
//! big-Z linking) vs the greedy heuristic, on instances all three handle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use troy_dfg::benchmarks;
use troyhls::{
    AnnealingSolver, Catalog, ExactSolver, FormulationOptions, GreedySolver, IlpSolver, Mode,
    SolveOptions, SynthesisProblem, Synthesizer,
};

fn polynom_detection() -> SynthesisProblem {
    SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
        .mode(Mode::DetectionOnly)
        .detection_latency(4)
        .area_limit(40_000)
        .build()
        .expect("well-formed")
}

fn bench_ablation(c: &mut Criterion) {
    let problem = polynom_detection();
    let options = SolveOptions {
        time_limit: Duration::from_secs(60),
        ..SolveOptions::default()
    };

    // All back ends must agree on the optimal cost before we time them.
    let exact = ExactSolver::new()
        .synthesize(&problem, &options)
        .expect("feasible");
    let ilp = IlpSolver::new()
        .synthesize(&problem, &options)
        .expect("feasible");
    assert_eq!(exact.cost, ilp.cost, "solver disagreement");

    let mut g = c.benchmark_group("solver_ablation_polynom_detection");
    g.sample_size(10).measurement_time(Duration::from_secs(5));

    g.bench_function("exact_domain_search", |b| {
        b.iter(|| {
            ExactSolver::new()
                .synthesize(black_box(&problem), &options)
                .expect("feasible")
                .cost
        });
    });
    g.bench_function("greedy_heuristic", |b| {
        b.iter(|| {
            GreedySolver::new()
                .synthesize(black_box(&problem), &options)
                .expect("feasible")
                .cost
        });
    });
    g.bench_function("annealing_metaheuristic", |b| {
        b.iter(|| {
            AnnealingSolver::new()
                .synthesize(black_box(&problem), &options)
                .expect("feasible")
                .cost
        });
    });
    g.bench_function("ilp_tight_linking", |b| {
        b.iter(|| {
            IlpSolver::new()
                .synthesize(black_box(&problem), &options)
                .expect("feasible")
                .cost
        });
    });
    g.bench_function("ilp_model_build_only", |b| {
        b.iter(|| {
            troyhls::formulate(black_box(&problem), &FormulationOptions::default())
                .model
                .num_vars()
        });
    });
    g.bench_function("ilp_model_build_big_z", |b| {
        let opts = FormulationOptions {
            faithful_big_z: true,
            ..FormulationOptions::default()
        };
        b.iter(|| {
            troyhls::formulate(black_box(&problem), &opts)
                .model
                .num_vars()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
