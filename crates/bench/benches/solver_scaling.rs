//! Scaling: exact-solver time vs DFG size, on the extra benchmarks and
//! seeded random graphs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use troy_dfg::{benchmarks, random_dfg, Dfg, RandomDfgConfig};
use troyhls::{Catalog, ExactSolver, Mode, SolveOptions, SynthesisProblem, Synthesizer};

fn problem(dfg: Dfg, mode: Mode) -> SynthesisProblem {
    let cp = dfg.critical_path_len();
    SynthesisProblem::builder(dfg, Catalog::paper8())
        .mode(mode)
        .detection_latency(cp + 1)
        .recovery_latency(cp + 1)
        .build()
        .expect("feasible construction")
}

fn bench_scaling(c: &mut Criterion) {
    let options = SolveOptions {
        time_limit: Duration::from_secs(30),
        node_limit: 300_000,
        ..SolveOptions::default()
    };
    let mut g = c.benchmark_group("solver_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    // Fixed extra benchmarks beyond the paper's suite.
    for name in ["ar_filter", "fft8", "dct8", "ewf34"] {
        let dfg = benchmarks::by_name(name).expect("known");
        let p = problem(dfg, Mode::DetectionRecovery);
        g.bench_function(format!("{name}_recovery"), |b| {
            b.iter(|| {
                ExactSolver::new()
                    .synthesize(black_box(&p), &options)
                    .map(|s| s.cost)
                    .ok()
            });
        });
    }

    // Random layered DAGs of growing size.
    for ops in [12usize, 24, 48] {
        let cfg = RandomDfgConfig {
            ops,
            max_depth: 6,
            mul_ratio_percent: 40,
            edge_bias_percent: 80,
        };
        let p = problem(random_dfg(&cfg, 2024), Mode::DetectionRecovery);
        g.bench_function(format!("random_{ops}ops_recovery"), |b| {
            b.iter(|| {
                ExactSolver::new()
                    .synthesize(black_box(&p), &options)
                    .map(|s| s.cost)
                    .ok()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
