//! Micro-benchmarks for the `troy-ilp` substrate on classic 0-1 programs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use troy_ilp::{LinExpr, Model, SolveParams, SolveStatus};

/// Deterministic pseudo-random stream for reproducible instances.
fn stream(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed;
    move || {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn knapsack(items: usize, seed: u64) -> Model {
    let mut next = stream(seed);
    let mut m = Model::maximize();
    let mut obj = LinExpr::new();
    let mut cap = LinExpr::new();
    let mut weight_sum = 0.0;
    for i in 0..items {
        let v = m.binary(format!("x{i}"));
        let value = (next() % 90 + 10) as f64;
        let weight = (next() % 90 + 10) as f64;
        obj.add_term(value, v);
        cap.add_term(weight, v);
        weight_sum += weight;
    }
    m.set_objective(obj);
    m.add_le("cap", cap, weight_sum / 2.0);
    m
}

fn assignment(n: usize, seed: u64) -> Model {
    let mut next = stream(seed);
    let mut m = Model::minimize();
    let mut vars = vec![vec![]; n];
    let mut obj = LinExpr::new();
    for (i, row) in vars.iter_mut().enumerate() {
        for j in 0..n {
            let v = m.binary(format!("x{i}_{j}"));
            obj.add_term((next() % 100) as f64, v);
            row.push(v);
        }
    }
    m.set_objective(obj);
    #[allow(clippy::needless_range_loop)] // row/column duality reads clearer indexed
    for i in 0..n {
        m.add_eq(format!("row{i}"), LinExpr::sum(vars[i].clone()), 1.0);
        m.add_eq(
            format!("col{i}"),
            LinExpr::sum((0..n).map(|r| vars[r][i])),
            1.0,
        );
    }
    m
}

fn bench_ilp(c: &mut Criterion) {
    let params = SolveParams {
        time_limit: Some(Duration::from_secs(30)),
        ..SolveParams::default()
    };
    let mut g = c.benchmark_group("ilp_micro");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    for items in [10usize, 16, 22] {
        let model = knapsack(items, 42);
        g.bench_function(format!("knapsack_{items}"), |b| {
            b.iter(|| {
                let r = black_box(&model).solve(&params);
                assert_eq!(r.status(), SolveStatus::Optimal);
                r.objective().unwrap()
            });
        });
    }
    for n in [4usize, 6] {
        let model = assignment(n, 7);
        g.bench_function(format!("assignment_{n}x{n}"), |b| {
            b.iter(|| {
                let r = black_box(&model).solve(&params);
                assert_eq!(r.status(), SolveStatus::Optimal);
                r.objective().unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ilp);
criterion_main!(benches);
