//! Implementation of the `troyhls` command-line tool.
//!
//! The binary is a thin wrapper around [`run`], which parses arguments,
//! executes the requested action and writes the report to the supplied
//! writer — keeping the whole tool unit-testable without spawning
//! processes.
//!
//! ```text
//! troyhls-cli list
//! troyhls-cli show <benchmark|file.dfg>
//! troyhls-cli synth <benchmark|file.dfg> [options]
//! troyhls-cli profile <benchmark|file.dfg> [--samples N] [--distance D]
//!
//! synth options:
//!   --mode detection|recovery     protection level   (default recovery)
//!   --catalog table1|paper8       vendor library     (default paper8)
//!   --lambda-det N                detection window   (default: critical path)
//!   --lambda-rec N                recovery window    (default: critical path)
//!   --area N                      area cap           (default: unlimited)
//!   --solver exact|greedy|ilp|annealing              (default exact)
//!   --time-limit SECS             solve budget       (default 60)
//!   --chart --dot --markdown --verilog --vcd         extra report sections
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Duration;

use troy_dfg::{parse_dfg, Dfg};
use troyhls::{
    emit_verilog, implementation_dot, markdown_summary, schedule_chart, validate, AnnealingSolver,
    Catalog, ExactSolver, GreedySolver, IlpSolver, Mode, SolveOptions, SynthesisProblem,
    Synthesizer,
};

/// Errors surfaced to the CLI user (exit code 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Runs the CLI with `args` (excluding the program name); human-readable
/// output is appended to `out`.
///
/// # Errors
///
/// Returns a [`CliError`] describing bad usage, unreadable inputs or an
/// infeasible/failed synthesis.
pub fn run(args: &[String], out: &mut String) -> Result<(), CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("list") => {
            let _ = writeln!(out, "built-in benchmarks:");
            for name in [
                "polynom",
                "diff2",
                "dtmf",
                "mof2",
                "ellipticicass",
                "fir16",
                "ewf34",
                "ar_filter",
                "fft8",
                "dct8",
            ] {
                let g = troy_dfg::benchmarks::by_name(name).expect("built-in");
                let _ = writeln!(
                    out,
                    "  {name:<14} {:>3} ops, depth {}",
                    g.len(),
                    g.critical_path_len()
                );
            }
            Ok(())
        }
        Some("show") => {
            let target = it.next().ok_or_else(|| err("show: missing <dfg>"))?;
            let g = load_dfg(target)?;
            let _ = writeln!(out, "{g}");
            Ok(())
        }
        Some("profile") => {
            let target = it.next().ok_or_else(|| err("profile: missing <dfg>"))?;
            let rest: Vec<String> = it.cloned().collect();
            profile(target, &rest, out)
        }
        Some("synth") => {
            let target = it.next().ok_or_else(|| err("synth: missing <dfg>"))?;
            let rest: Vec<String> = it.cloned().collect();
            synth(target, &rest, out)
        }
        Some(other) => Err(err(format!(
            "unknown command `{other}`; expected list|show|synth|profile"
        ))),
        None => Err(err("usage: troyhls <list|show|synth|profile> ...")),
    }
}

fn load_dfg(target: &str) -> Result<Dfg, CliError> {
    if let Some(g) = troy_dfg::benchmarks::by_name(target) {
        return Ok(g);
    }
    let text =
        std::fs::read_to_string(target).map_err(|e| err(format!("cannot read `{target}`: {e}")))?;
    parse_dfg(&text).map_err(|e| err(format!("cannot parse `{target}`: {e}")))
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, CliError> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| err(format!("{flag}: missing value")))
}

fn profile(target: &str, args: &[String], out: &mut String) -> Result<(), CliError> {
    let g = load_dfg(target)?;
    let mut cfg = troy_sim::ProfileConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--samples" => {
                cfg.samples = take_value(args, &mut i, "--samples")?
                    .parse()
                    .map_err(|_| err("--samples: expected a number"))?;
            }
            "--distance" => {
                cfg.max_distance = take_value(args, &mut i, "--distance")?
                    .parse()
                    .map_err(|_| err("--distance: expected a number"))?;
            }
            other => return Err(err(format!("profile: unknown flag `{other}`"))),
        }
        i += 1;
    }
    let pairs = troy_sim::profile_related_pairs(&g, &cfg);
    if pairs.is_empty() {
        let _ = writeln!(
            out,
            "no closely-related pairs under uniform random stimulus \
             ({} samples, distance {})",
            cfg.samples, cfg.max_distance
        );
    } else {
        let _ = writeln!(out, "closely-related pairs (rule 2 for fast recovery):");
        for (a, b) in pairs {
            let _ = writeln!(out, "  {a} ~ {b}");
        }
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn synth(target: &str, args: &[String], out: &mut String) -> Result<(), CliError> {
    let g = load_dfg(target)?;
    let mut mode = Mode::DetectionRecovery;
    let mut catalog = Catalog::paper8();
    let mut lambda_det = None;
    let mut lambda_rec = None;
    let mut area = u64::MAX;
    let mut solver_name = "exact".to_owned();
    let mut time_limit = 60u64;
    let (mut chart, mut dot, mut markdown, mut verilog, mut vcd) =
        (false, false, false, false, false);

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                mode = match take_value(args, &mut i, "--mode")? {
                    "detection" => Mode::DetectionOnly,
                    "recovery" => Mode::DetectionRecovery,
                    other => return Err(err(format!("--mode: unknown `{other}`"))),
                };
            }
            "--catalog" => {
                catalog = match take_value(args, &mut i, "--catalog")? {
                    "table1" => Catalog::table1(),
                    "paper8" => Catalog::paper8(),
                    other => return Err(err(format!("--catalog: unknown `{other}`"))),
                };
            }
            "--lambda-det" => {
                lambda_det = Some(
                    take_value(args, &mut i, "--lambda-det")?
                        .parse()
                        .map_err(|_| err("--lambda-det: expected a number"))?,
                );
            }
            "--lambda-rec" => {
                lambda_rec = Some(
                    take_value(args, &mut i, "--lambda-rec")?
                        .parse()
                        .map_err(|_| err("--lambda-rec: expected a number"))?,
                );
            }
            "--area" => {
                area = take_value(args, &mut i, "--area")?
                    .parse()
                    .map_err(|_| err("--area: expected a number"))?;
            }
            "--solver" => {
                solver_name = take_value(args, &mut i, "--solver")?.to_owned();
            }
            "--time-limit" => {
                time_limit = take_value(args, &mut i, "--time-limit")?
                    .parse()
                    .map_err(|_| err("--time-limit: expected seconds"))?;
            }
            "--chart" => chart = true,
            "--dot" => dot = true,
            "--markdown" => markdown = true,
            "--verilog" => verilog = true,
            "--vcd" => vcd = true,
            other => return Err(err(format!("synth: unknown flag `{other}`"))),
        }
        i += 1;
    }

    let mut builder = SynthesisProblem::builder(g, catalog)
        .mode(mode)
        .area_limit(area);
    if let Some(l) = lambda_det {
        builder = builder.detection_latency(l);
    }
    if let Some(l) = lambda_rec {
        builder = builder.recovery_latency(l);
    }
    let problem = builder.build().map_err(|e| err(format!("{e}")))?;

    let options = SolveOptions {
        time_limit: Duration::from_secs(time_limit),
        ..SolveOptions::default()
    };
    let solver: Box<dyn Synthesizer> = match solver_name.as_str() {
        "exact" => Box::new(ExactSolver::new()),
        "greedy" => Box::new(GreedySolver::new()),
        "ilp" => Box::new(IlpSolver::new()),
        "annealing" => Box::new(AnnealingSolver::new()),
        other => return Err(err(format!("--solver: unknown `{other}`"))),
    };
    let result = solver
        .synthesize(&problem, &options)
        .map_err(|e| err(format!("synthesis failed: {e}")))?;
    debug_assert!(validate(&problem, &result.implementation).is_empty());

    let stats = result.implementation.stats(&problem);
    let _ = writeln!(
        out,
        "{} on {} ({}): ${}{}",
        solver.name(),
        problem.dfg().name(),
        mode,
        result.cost,
        if result.proven_optimal {
            ""
        } else {
            " (best effort)"
        },
    );
    let _ = writeln!(out, "{stats}");
    let _ = writeln!(out, "licenses:");
    for l in result.implementation.licenses_used(&problem) {
        let off = problem.catalog().offering_of(l).expect("used license");
        let _ = writeln!(out, "  {l:<22} area {:>6}  ${}", off.area, off.cost);
    }
    if chart {
        let _ = writeln!(
            out,
            "\n{}",
            schedule_chart(&problem, &result.implementation)
        );
    }
    if markdown {
        let _ = writeln!(
            out,
            "\n{}",
            markdown_summary(&problem, &result.implementation)
        );
    }
    if dot {
        let _ = writeln!(
            out,
            "\n{}",
            implementation_dot(&problem, &result.implementation)
        );
    }
    if verilog {
        let _ = writeln!(out, "\n{}", emit_verilog(&problem, &result.implementation));
    }
    if vcd {
        // Trace one clean mission step so the schedule can be inspected in
        // a waveform viewer.
        let trace = troy_sim::trace_run(
            &problem,
            &result.implementation,
            &troy_sim::CoreLibrary::new(),
            &troy_sim::InputVector::from_seed(problem.dfg(), 1),
        );
        let _ = writeln!(out, "\n{trace}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        let mut out = String::new();
        run(&args, &mut out).map(|()| out)
    }

    #[test]
    fn list_names_all_benchmarks() {
        let out = cli(&["list"]).unwrap();
        for name in ["polynom", "fir16", "fft8"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn show_prints_the_graph() {
        let out = cli(&["show", "diff2"]).unwrap();
        assert!(out.contains("dfg diff2"));
        assert!(out.contains("11 ops"));
    }

    #[test]
    fn synth_motivational_example() {
        let out = cli(&[
            "synth",
            "polynom",
            "--catalog",
            "table1",
            "--lambda-det",
            "4",
            "--lambda-rec",
            "3",
            "--area",
            "22000",
        ])
        .unwrap();
        assert!(out.contains("$4160"), "{out}");
        assert!(out.contains("licenses:"));
    }

    #[test]
    fn synth_detection_mode_with_chart_and_markdown() {
        let out = cli(&[
            "synth",
            "polynom",
            "--mode",
            "detection",
            "--catalog",
            "table1",
            "--chart",
            "--markdown",
        ])
        .unwrap();
        assert!(out.contains("cycle1"));
        assert!(out.contains("| license cost (mc) |"));
    }

    #[test]
    fn synth_with_each_solver() {
        for solver in ["exact", "greedy", "annealing"] {
            let out = cli(&[
                "synth",
                "polynom",
                "--catalog",
                "table1",
                "--solver",
                solver,
                "--time-limit",
                "20",
            ])
            .unwrap();
            assert!(out.contains("mc=$"), "{solver}: {out}");
        }
    }

    #[test]
    fn synth_from_a_dfg_file() {
        let dir = std::env::temp_dir().join("troyhls-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.dfg");
        std::fs::write(
            &path,
            "dfg tiny\nop a mul\nop b mul\nop c add\nedge a c\nedge b c\n",
        )
        .unwrap();
        let out = cli(&["synth", path.to_str().unwrap(), "--mode", "detection"]).unwrap();
        assert!(out.contains("on tiny"));
    }

    #[test]
    fn profile_reports_no_pairs_for_random_stimulus() {
        let out = cli(&["profile", "polynom", "--samples", "8"]).unwrap();
        assert!(out.contains("no closely-related pairs"));
    }

    #[test]
    fn errors_are_informative() {
        assert!(cli(&[]).unwrap_err().0.contains("usage"));
        assert!(cli(&["frob"]).unwrap_err().0.contains("unknown command"));
        assert!(cli(&["show", "nope.dfg"])
            .unwrap_err()
            .0
            .contains("cannot read"));
        assert!(cli(&["synth", "polynom", "--solver", "magic"])
            .unwrap_err()
            .0
            .contains("unknown `magic`"));
        assert!(cli(&["synth", "polynom", "--area"])
            .unwrap_err()
            .0
            .contains("missing value"));
        // Infeasible area surfaces as a synthesis failure.
        assert!(
            cli(&["synth", "polynom", "--catalog", "table1", "--area", "4000"])
                .unwrap_err()
                .0
                .contains("synthesis failed")
        );
    }

    #[test]
    fn verilog_output_is_emitted() {
        let out = cli(&[
            "synth",
            "polynom",
            "--mode",
            "detection",
            "--catalog",
            "table1",
            "--verilog",
        ])
        .unwrap();
        assert!(out.contains("module polynom_troyhls"));
        assert!(out.contains("endmodule"));
    }

    #[test]
    fn vcd_output_is_a_value_change_dump() {
        let out = cli(&[
            "synth",
            "polynom",
            "--mode",
            "detection",
            "--catalog",
            "table1",
            "--vcd",
        ])
        .unwrap();
        assert!(out.contains("$enddefinitions $end"));
        assert!(out.contains("$var wire 64"));
    }

    #[test]
    fn dot_output_is_graphviz() {
        let out = cli(&["synth", "polynom", "--mode", "detection", "--dot"]).unwrap();
        assert!(out.contains("digraph"));
    }
}
