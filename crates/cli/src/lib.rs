//! Implementation of the `troyhls` command-line tool.
//!
//! The binary is a thin wrapper around [`run`], which parses arguments,
//! executes the requested action and writes the report to the supplied
//! writer — keeping the whole tool unit-testable without spawning
//! processes.
//!
//! ```text
//! troyhls-cli list
//! troyhls-cli show <benchmark|file.dfg>
//! troyhls-cli synth <benchmark|file.dfg> [options]
//! troyhls-cli batch [table3|table4|all] [options]
//! troyhls-cli lint <benchmark|file.dfg> [options]
//! troyhls-cli profile <benchmark|file.dfg> [--samples N] [--distance D]
//! troyhls-cli serve [options]
//! troyhls-cli campaign [options]
//!
//! synth options:
//!   --mode detection|recovery     protection level   (default recovery)
//!   --catalog table1|paper8       vendor library     (default paper8)
//!   --lambda-det N                detection window   (default: critical path)
//!   --lambda-rec N                recovery window    (default: critical path)
//!   --area N                      area cap           (default: unlimited)
//!   --solver exact|greedy|ilp|annealing              (default exact)
//!   --portfolio                   race all four back ends, best wins
//!   --jobs N                      racing threads     (default: TROY_JOBS/cores)
//!   --cache-dir DIR               content-addressed result cache on disk
//!   --time-limit SECS             solve budget       (default 60)
//!   --chart --dot --markdown --verilog --vcd         extra report sections
//!   --lint                        append the full diagnostics report
//!   --prove                       run the security prover over the result and
//!                                 append its machine-checked certificate (no
//!                                 single vendor, no colluding pair defeats the
//!                                 comparator on any output cone)
//!
//! synth resilience options (any of them engages the supervisor, which
//! runs the degradation ladder ILP → exact → annealing → greedy with
//! per-rung deadlines, retry/backoff and panic isolation; incompatible
//! with --solver, --portfolio and --cache-dir):
//!   --deadline DUR                total wall-clock budget, e.g. 2s, 500ms
//!   --max-retries N               retries per rung for transient faults
//!   --no-degrade                  fail instead of descending the ladder
//!   --chaos-seed N                deterministic fault injection (testing);
//!                                 TROY_CHAOS=N in the environment does the
//!                                 same for supervised runs
//!
//! batch options (regenerates the paper's experiment grid concurrently):
//!   table3|table4|all             which grid         (default all)
//!   --jobs N                      pool workers       (default: TROY_JOBS/cores)
//!   --portfolio                   race all back ends per row (default: exact)
//!   --cache-dir DIR               content-addressed result cache on disk
//!   --time-limit SECS             per-row budget     (default 60)
//!   --bench-json FILE             also time a sequential pass and write a
//!                                 speedup record (CI artifact)
//!
//! serve options (runs the hardened synthesis daemon from `troy-service`
//! until a `shutdown` request drains it; the protocol is one JSON request
//! per line, one response line per request — see the crate docs):
//!   --addr HOST:PORT              bind address       (default 127.0.0.1:0)
//!   --addr-file PATH              write the bound address to PATH once
//!                                 listening (useful with port 0)
//!   --max-inflight N              concurrent syntheses (default 4)
//!   --queue-depth N               bounded wait queue   (default 8)
//!   --default-deadline DUR        per-request budget when the request
//!                                 carries none        (default 30s)
//!   --drain-deadline DUR          shutdown grace for in-flight work
//!                                 (default 5s)
//!   --frame-deadline DUR          slowloris bound per frame (default 2s)
//!   --cache-dir DIR               on-disk result cache (default: memory)
//!   --chaos-seed N                supervisor fault injection (testing);
//!                                 TROY_CHAOS=N does the same
//!
//! cluster options (runs the sharded multi-daemon synthesis cluster from
//! `troy-cluster`: a router speaking the daemon protocol in front of N
//! worker daemons, with a shared cache tier, health-checked breakers and
//! failover re-dispatch; a `shutdown` request drains it):
//!   --workers N                   worker daemons      (default 2)
//!   --addr HOST:PORT              router bind address (default 127.0.0.1:0)
//!   --addr-file PATH              write the bound address to PATH once
//!                                 listening (atomic; removed on drain)
//!   --seed N                      consistent-hash ring seed (decimal or
//!                                 0x hex) — fixes shard placement
//!   --max-inflight N              per-worker concurrent syntheses (default 4)
//!   --queue-depth N               per-worker wait queue        (default 8)
//!   --default-deadline DUR        per-request budget when the request
//!                                 carries none        (default 30s)
//!   --drain-deadline DUR          shutdown grace for in-flight work
//!                                 (default 5s)
//!   --probe-depth N               peer cache probes per request (default 2)
//!   --respawn                     revive dead workers under a new
//!                                 generation (supervisor; default off)
//!   --max-respawns N              per-slot respawn budget      (default 8)
//!   --replication N               copy fresh results to the next N-1 ring
//!                                 successors; 1 disables      (default 2)
//!   --journal-dir PATH            durable dispatch journal: accepted
//!                                 requests replay after a router restart
//!   --chaos-seed N                router dispatch fault injection
//!                                 (testing); TROY_CHAOS=N does the same
//!
//! campaign options (runs a seeded Trojan-injection campaign grid: a
//! stratified corpus — rarity × payload × coalition × trigger shape plus a
//! clean control — planted into every synthesized design and driven over
//! the worker pool; exits 1 when a corrupting activation escapes detection
//! in the hard-guarantee slice or the clean control reports any activity,
//! printing replayable (seed, cell-id) witnesses):
//!   --seed N                      master seed (decimal or 0x hex;
//!                                 default 0xDAC14) — the whole report is
//!                                 a pure function of it
//!   --cells N                     deterministic cap on grid cells
//!   --steps N                     mission steps per cell (default 16)
//!   --traces N                    input traces per (design, trojan)
//!   --jobs N                      pool workers    (default: TROY_JOBS/cores)
//!   --benchmarks a,b,c            built-in benchmarks to synthesize
//!                                 (default polynom,diff2)
//!   --mode detection|recovery|both    design modes   (default both)
//!   --via-daemon                  additionally route one synth request per
//!                                 cell through a live in-process
//!                                 troy-service daemon over TCP and
//!                                 cross-check status/cost/cache coherence
//!   --json                        emit the full CampaignReport as JSON
//!                                 (per-cell rows incl. latency_us)
//!
//! lint options (problem flags as for synth, plus):
//!   --solver NAME                 synthesize first, then lint the binding;
//!                                 without it only pre-solve analysis runs
//!   --prove                       also run the security prover pass
//!                                 (TQ004-TQ007); with a binding and a clean
//!                                 report, text output ends with the security
//!                                 certificate
//!   --format text|json|sarif      output format      (default text)
//!   --min-severity note|warning|error                (default note)
//!   --allow CODE                  suppress a diagnostic code (repeatable)
//!   --deny warnings               warnings make the run fail
//! ```
//!
//! Exit codes: `0` success, `1` blocking diagnostics from `lint`, `2`
//! usage/input/synthesis errors, `3` a supervised `synth` returned a
//! *degraded* result (fallback back end, relaxed constraints or the
//! grace pass — see the report for details).
//!
//! `synth` checks every solver result through the same `troy-analysis`
//! engine `lint` uses, so the two paths cannot report differently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use troy_analysis::{AnalysisOptions, Analyzer, Code, Diagnostic, FixIt, Severity};
use troy_bench::{format_table, harness_options, run_rows, table3_specs, table4_specs};
use troy_dfg::{parse_dfg, Dfg};
use troy_portfolio::{
    cache_key, default_jobs, race, Backend, BatchConfig, PortfolioResult, ResultCache,
};
use troy_resilience::{
    parse_duration, supervise, Chaos, Supervised, SupervisorConfig, CHAOS_PANIC_MARKER, LADDER,
};
use troy_sim::{run_grid, CampaignReport, DesignUnderTest, GridConfig, PayloadKind};
use troyhls::{
    emit_verilog, implementation_dot, markdown_summary, schedule_chart, AnnealingSolver, Catalog,
    ExactSolver, GreedySolver, IlpSolver, Implementation, Mode, SolveOptions, SynthesisProblem,
    Synthesizer,
};

/// Errors surfaced to the CLI user (exit code 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Runs the CLI with `args` (excluding the program name); human-readable
/// output is appended to `out`.
///
/// Returns the process exit code: `0` on success, `1` when `lint` found
/// blocking diagnostics, `3` when a supervised `synth` returned a
/// degraded result.
///
/// # Errors
///
/// Returns a [`CliError`] describing bad usage, unreadable inputs or an
/// infeasible/failed synthesis (exit code `2`).
pub fn run(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("list") => {
            let _ = writeln!(out, "built-in benchmarks:");
            for name in [
                "polynom",
                "diff2",
                "dtmf",
                "mof2",
                "ellipticicass",
                "fir16",
                "ewf34",
                "ar_filter",
                "fft8",
                "dct8",
            ] {
                let g = troy_dfg::benchmarks::by_name(name)
                    .ok_or_else(|| err(format!("internal: built-in benchmark `{name}` missing")))?;
                let _ = writeln!(
                    out,
                    "  {name:<14} {:>3} ops, depth {}",
                    g.len(),
                    g.critical_path_len()
                );
            }
            Ok(0)
        }
        Some("show") => {
            let target = it.next().ok_or_else(|| err("show: missing <dfg>"))?;
            let g = load_dfg(target)?;
            let _ = writeln!(out, "{g}");
            Ok(0)
        }
        Some("profile") => {
            let target = it.next().ok_or_else(|| err("profile: missing <dfg>"))?;
            let rest: Vec<String> = it.cloned().collect();
            profile(target, &rest, out).map(|()| 0)
        }
        Some("synth") => {
            let target = it.next().ok_or_else(|| err("synth: missing <dfg>"))?;
            let rest: Vec<String> = it.cloned().collect();
            synth(target, &rest, out)
        }
        Some("batch") => {
            let rest: Vec<String> = it.cloned().collect();
            batch(&rest, out).map(|()| 0)
        }
        Some("lint") => {
            let target = it.next().ok_or_else(|| err("lint: missing <dfg>"))?;
            let rest: Vec<String> = it.cloned().collect();
            lint_cmd(target, &rest, out)
        }
        Some("serve") => {
            let rest: Vec<String> = it.cloned().collect();
            serve(&rest, out).map(|()| 0)
        }
        Some("cluster") => {
            let rest: Vec<String> = it.cloned().collect();
            cluster(&rest, out).map(|()| 0)
        }
        Some("campaign") => {
            let rest: Vec<String> = it.cloned().collect();
            campaign(&rest, out)
        }
        Some(other) => Err(err(format!(
            "unknown command `{other}`; expected list|show|synth|batch|lint|profile|serve|cluster|campaign"
        ))),
        None => Err(err(
            "usage: troyhls <list|show|synth|batch|lint|profile|serve|cluster|campaign> ...",
        )),
    }
}

fn load_dfg(target: &str) -> Result<Dfg, CliError> {
    if let Some(g) = troy_dfg::benchmarks::by_name(target) {
        return Ok(g);
    }
    let text =
        std::fs::read_to_string(target).map_err(|e| err(format!("cannot read `{target}`: {e}")))?;
    parse_dfg(&text).map_err(|e| err(format!("cannot parse `{target}`: {e}")))
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, CliError> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| err(format!("{flag}: missing value")))
}

fn profile(target: &str, args: &[String], out: &mut String) -> Result<(), CliError> {
    let g = load_dfg(target)?;
    let mut cfg = troy_sim::ProfileConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--samples" => {
                cfg.samples = take_value(args, &mut i, "--samples")?
                    .parse()
                    .map_err(|_| err("--samples: expected a number"))?;
            }
            "--distance" => {
                cfg.max_distance = take_value(args, &mut i, "--distance")?
                    .parse()
                    .map_err(|_| err("--distance: expected a number"))?;
            }
            other => return Err(err(format!("profile: unknown flag `{other}`"))),
        }
        i += 1;
    }
    let pairs = troy_sim::profile_related_pairs(&g, &cfg);
    if pairs.is_empty() {
        let _ = writeln!(
            out,
            "no closely-related pairs under uniform random stimulus \
             ({} samples, distance {})",
            cfg.samples, cfg.max_distance
        );
    } else {
        let _ = writeln!(out, "closely-related pairs (rule 2 for fast recovery):");
        for (a, b) in pairs {
            let _ = writeln!(out, "  {a} ~ {b}");
        }
    }
    Ok(())
}

/// Flags shared by `synth` and `lint` that describe the problem instance.
struct ProblemFlags {
    mode: Mode,
    catalog: Catalog,
    lambda_det: Option<usize>,
    lambda_rec: Option<usize>,
    area: u64,
}

impl ProblemFlags {
    fn new() -> Self {
        ProblemFlags {
            mode: Mode::DetectionRecovery,
            catalog: Catalog::paper8(),
            lambda_det: None,
            lambda_rec: None,
            area: u64::MAX,
        }
    }

    /// Consumes one flag if it belongs to this group; `Ok(false)` means
    /// the caller should try its own flags.
    fn try_consume(&mut self, args: &[String], i: &mut usize) -> Result<bool, CliError> {
        match args[*i].as_str() {
            "--mode" => {
                self.mode = match take_value(args, i, "--mode")? {
                    "detection" => Mode::DetectionOnly,
                    "recovery" => Mode::DetectionRecovery,
                    other => return Err(err(format!("--mode: unknown `{other}`"))),
                };
            }
            "--catalog" => {
                self.catalog = match take_value(args, i, "--catalog")? {
                    "table1" => Catalog::table1(),
                    "paper8" => Catalog::paper8(),
                    other => return Err(err(format!("--catalog: unknown `{other}`"))),
                };
            }
            "--lambda-det" => {
                self.lambda_det = Some(
                    take_value(args, i, "--lambda-det")?
                        .parse()
                        .map_err(|_| err("--lambda-det: expected a number"))?,
                );
            }
            "--lambda-rec" => {
                self.lambda_rec = Some(
                    take_value(args, i, "--lambda-rec")?
                        .parse()
                        .map_err(|_| err("--lambda-rec: expected a number"))?,
                );
            }
            "--area" => {
                self.area = take_value(args, i, "--area")?
                    .parse()
                    .map_err(|_| err("--area: expected a number"))?;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn build(self, g: Dfg) -> Result<SynthesisProblem, CliError> {
        let mut builder = SynthesisProblem::builder(g, self.catalog)
            .mode(self.mode)
            .area_limit(self.area);
        if let Some(l) = self.lambda_det {
            builder = builder.detection_latency(l);
        }
        if let Some(l) = self.lambda_rec {
            builder = builder.recovery_latency(l);
        }
        builder.build().map_err(|e| err(format!("{e}")))
    }
}

fn make_solver(name: &str) -> Result<Box<dyn Synthesizer>, CliError> {
    match name {
        "exact" => Ok(Box::new(ExactSolver::new())),
        "greedy" => Ok(Box::new(GreedySolver::new())),
        "ilp" => Ok(Box::new(IlpSolver::new())),
        "annealing" => Ok(Box::new(AnnealingSolver::new())),
        other => Err(err(format!("--solver: unknown `{other}`"))),
    }
}

fn parse_jobs(v: &str) -> Result<usize, CliError> {
    v.parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| err("--jobs: expected a positive number"))
}

fn open_cache(dir: Option<&str>) -> Result<Option<ResultCache>, CliError> {
    match dir {
        None => Ok(None),
        Some(d) => ResultCache::on_disk(d)
            .map(Some)
            .map_err(|e| err(format!("--cache-dir: cannot open `{d}`: {e}"))),
    }
}

/// `batch`: regenerate the paper's experiment grids over the worker pool.
#[allow(clippy::too_many_lines)]
fn batch(args: &[String], out: &mut String) -> Result<(), CliError> {
    let mut which = "all".to_owned();
    let mut jobs: Option<usize> = None;
    let mut portfolio = false;
    let mut cache_dir: Option<String> = None;
    let mut time_limit = 60u64;
    let mut bench_json: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "table3" | "table4" | "all" => args[i].clone_into(&mut which),
            "--jobs" => {
                jobs = Some(parse_jobs(take_value(args, &mut i, "--jobs")?)?);
            }
            "--portfolio" => portfolio = true,
            "--cache-dir" => {
                cache_dir = Some(take_value(args, &mut i, "--cache-dir")?.to_owned());
            }
            "--time-limit" => {
                time_limit = take_value(args, &mut i, "--time-limit")?
                    .parse()
                    .map_err(|_| err("--time-limit: expected seconds"))?;
            }
            "--bench-json" => {
                bench_json = Some(take_value(args, &mut i, "--bench-json")?.to_owned());
            }
            other => {
                return Err(err(format!(
                    "batch: unknown argument `{other}`; expected table3|table4|all or a flag"
                )))
            }
        }
        i += 1;
    }

    let mut grids = Vec::new();
    if matches!(which.as_str(), "table3" | "all") {
        grids.push((
            "table3",
            "Table 3 — designs with detection only (8-vendor catalog)",
            table3_specs(),
        ));
    }
    if matches!(which.as_str(), "table4" | "all") {
        grids.push((
            "table4",
            "Table 4 — designs with detection and recovery (8-vendor catalog)",
            table4_specs(),
        ));
    }

    let config = BatchConfig {
        jobs: jobs.unwrap_or_else(default_jobs),
        portfolio,
        options: SolveOptions {
            time_limit: Duration::from_secs(time_limit),
            ..harness_options()
        },
        ..BatchConfig::default()
    };
    let cache = open_cache(cache_dir.as_deref())?;

    // (short name, rows, sequential seconds, batch seconds) per grid; the
    // sequential reference pass only runs when a bench record was asked
    // for, and deliberately skips the cache so it times real solves.
    let mut measured = Vec::new();
    for (short, title, specs) in &grids {
        let sequential = if bench_json.is_some() {
            let reference = BatchConfig {
                jobs: 1,
                ..config.clone()
            };
            let t0 = Instant::now();
            let _ = run_rows(specs, &reference, None);
            Some(t0.elapsed().as_secs_f64())
        } else {
            None
        };
        let t0 = Instant::now();
        let results = run_rows(specs, &config, cache.as_ref());
        let elapsed = t0.elapsed().as_secs_f64();
        let _ = writeln!(out, "{}", format_table(title, &results));
        let _ = writeln!(
            out,
            "{short}: {} rows in {elapsed:.2}s (jobs {}, engine {})\n",
            specs.len(),
            config.jobs,
            config.engine(),
        );
        measured.push((*short, specs.len(), sequential, elapsed));
    }

    if let Some(path) = &bench_json {
        let json = bench_record(&config, &measured);
        std::fs::write(path, json).map_err(|e| err(format!("--bench-json: `{path}`: {e}")))?;
        let _ = writeln!(out, "wrote bench record to {path}");
    }
    Ok(())
}

/// Renders the `--bench-json` speedup record (hand-rolled: the workspace
/// serde is an API stub, see `troy-portfolio`'s cache layer).
fn bench_record(config: &BatchConfig, measured: &[(&str, usize, Option<f64>, f64)]) -> String {
    let speedup = |seq: f64, par: f64| if par > 0.0 { seq / par } else { 0.0 };
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"jobs\": {},", config.jobs);
    let _ = writeln!(json, "  \"engine\": \"{}\",", config.engine());
    let _ = writeln!(json, "  \"tables\": [");
    for (i, (short, rows, sequential, parallel)) in measured.iter().enumerate() {
        let seq = sequential.unwrap_or(0.0);
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"table\": \"{short}\",");
        let _ = writeln!(json, "      \"rows\": {rows},");
        let _ = writeln!(json, "      \"sequential_seconds\": {seq:.6},");
        let _ = writeln!(json, "      \"parallel_seconds\": {parallel:.6},");
        let _ = writeln!(json, "      \"speedup\": {:.3}", speedup(seq, *parallel));
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < measured.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let total_seq: f64 = measured.iter().filter_map(|m| m.2).sum();
    let total_par: f64 = measured.iter().map(|m| m.3).sum();
    let _ = writeln!(json, "  \"total_sequential_seconds\": {total_seq:.6},");
    let _ = writeln!(json, "  \"total_parallel_seconds\": {total_par:.6},");
    let _ = writeln!(json, "  \"speedup\": {:.3}", speedup(total_seq, total_par));
    json.push_str("}\n");
    json
}

/// Parses a duration flag, rejecting zero: a zero budget is always a
/// typo, and downstream it would reject every request it governs.
fn parse_positive_duration(flag: &str, v: &str) -> Result<Duration, CliError> {
    let d = parse_duration(v)
        .ok_or_else(|| err(format!("{flag}: cannot parse `{v}` (try 2s, 500ms, 1m)")))?;
    if d.is_zero() {
        return Err(err(format!("{flag}: must be positive, got `{v}`")));
    }
    Ok(d)
}

/// `serve`: run the hardened synthesis daemon until a `shutdown` request
/// drains it, then report the serve-path counters.
#[allow(clippy::too_many_lines)]
fn serve(args: &[String], out: &mut String) -> Result<(), CliError> {
    let mut config = troy_service::ServiceConfig::default();
    let mut addr_file: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                take_value(args, &mut i, "--addr")?.clone_into(&mut config.addr);
            }
            "--addr-file" => {
                addr_file = Some(take_value(args, &mut i, "--addr-file")?.to_owned());
            }
            "--max-inflight" => {
                config.max_inflight = take_value(args, &mut i, "--max-inflight")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| err("--max-inflight: expected a positive number"))?;
            }
            "--queue-depth" => {
                config.queue_depth = take_value(args, &mut i, "--queue-depth")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| err("--queue-depth: expected a positive number"))?;
            }
            "--default-deadline" => {
                let v = take_value(args, &mut i, "--default-deadline")?;
                config.default_deadline = parse_positive_duration("--default-deadline", v)?;
            }
            "--drain-deadline" => {
                let v = take_value(args, &mut i, "--drain-deadline")?;
                config.drain_deadline = parse_positive_duration("--drain-deadline", v)?;
            }
            "--frame-deadline" => {
                let v = take_value(args, &mut i, "--frame-deadline")?;
                config.frame_deadline = parse_positive_duration("--frame-deadline", v)?;
            }
            "--cache-dir" => {
                config.cache_dir = Some(take_value(args, &mut i, "--cache-dir")?.into());
            }
            "--chaos-seed" => {
                chaos_seed = Some(
                    take_value(args, &mut i, "--chaos-seed")?
                        .parse()
                        .map_err(|_| err("--chaos-seed: expected a u64 seed"))?,
                );
            }
            other => return Err(err(format!("serve: unknown flag `{other}`"))),
        }
        i += 1;
    }

    config.chaos = chaos_seed.map_or_else(Chaos::from_env, Chaos::seeded);
    if config.chaos.is_enabled() {
        quiet_injected_panics();
    }

    let service = troy_service::Service::start(config).map_err(|e| err(format!("serve: {e}")))?;
    let addr = service.local_addr();
    if let Some(path) = &addr_file {
        write_addr_file(path, addr)?;
    }
    // `out` is only flushed after `run` returns, so the bound address
    // goes to stderr (and the addr file) for anyone waiting on startup.
    eprintln!("troyhls serving on {addr}; send {{\"id\":\"bye\",\"cmd\":\"shutdown\"}} to drain");

    let snap = service.join();
    if let Some(path) = &addr_file {
        remove_addr_file(path);
    }
    let _ = writeln!(out, "serve: drained cleanly on {addr}");
    let _ = writeln!(
        out,
        "  connections {}  accepted {}  ok {}  degraded {}  failed {}",
        snap.connections, snap.accepted, snap.completed_ok, snap.completed_degraded, snap.failed,
    );
    let _ = writeln!(
        out,
        "  shed: overload {}  circuit {}  malformed {}  panics {}  cache hits {}",
        snap.shed_overload, snap.shed_circuit, snap.malformed, snap.panics, snap.cache_hits,
    );
    Ok(())
}

/// Writes the bound address to `path` atomically: the whole line appears
/// under the final name via a rename, never a torn partial write, so a
/// supervisor polling the file cannot read half an address.
fn write_addr_file(path: &str, addr: std::net::SocketAddr) -> Result<(), CliError> {
    use std::io::Write as _;
    let target = std::path::Path::new(path);
    let tmp = target.with_extension(format!("tmp.{}", std::process::id()));
    let write = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(format!("{addr}\n").as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, target)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write.map_err(|e| err(format!("--addr-file: `{path}`: {e}")))
}

/// Removes the addr file on drain so stale addresses never linger; a
/// daemon that is gone must not look reachable.
fn remove_addr_file(path: &str) {
    let _ = std::fs::remove_file(path);
}

/// `cluster`: run the sharded multi-daemon synthesis cluster until a
/// `shutdown` request drains it, then report the router counters.
#[allow(clippy::too_many_lines)]
fn cluster(args: &[String], out: &mut String) -> Result<(), CliError> {
    let mut config = troy_cluster::ClusterConfig::default();
    let mut addr_file: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                config.workers = parse_count("--workers", take_value(args, &mut i, "--workers")?)?;
            }
            "--addr" => {
                take_value(args, &mut i, "--addr")?.clone_into(&mut config.addr);
            }
            "--addr-file" => {
                addr_file = Some(take_value(args, &mut i, "--addr-file")?.to_owned());
            }
            "--seed" => {
                config.ring_seed = parse_seed(take_value(args, &mut i, "--seed")?)?;
            }
            "--max-inflight" => {
                config.max_inflight = parse_count(
                    "--max-inflight",
                    take_value(args, &mut i, "--max-inflight")?,
                )?;
            }
            "--queue-depth" => {
                config.queue_depth =
                    parse_count("--queue-depth", take_value(args, &mut i, "--queue-depth")?)?;
            }
            "--default-deadline" => {
                let v = take_value(args, &mut i, "--default-deadline")?;
                config.default_deadline = parse_positive_duration("--default-deadline", v)?;
            }
            "--drain-deadline" => {
                let v = take_value(args, &mut i, "--drain-deadline")?;
                config.drain_deadline = parse_positive_duration("--drain-deadline", v)?;
            }
            "--probe-depth" => {
                config.probe_depth =
                    parse_count("--probe-depth", take_value(args, &mut i, "--probe-depth")?)?;
            }
            "--chaos-seed" => {
                chaos_seed = Some(
                    take_value(args, &mut i, "--chaos-seed")?
                        .parse()
                        .map_err(|_| err("--chaos-seed: expected a u64 seed"))?,
                );
            }
            "--respawn" => {
                config.respawn = true;
            }
            "--max-respawns" => {
                config.max_respawns = take_value(args, &mut i, "--max-respawns")?
                    .parse()
                    .map_err(|_| err("--max-respawns: expected a u32 budget"))?;
            }
            "--replication" => {
                config.replication =
                    parse_count("--replication", take_value(args, &mut i, "--replication")?)?;
            }
            "--journal-dir" => {
                config.journal_dir = Some(std::path::PathBuf::from(take_value(
                    args,
                    &mut i,
                    "--journal-dir",
                )?));
            }
            other => return Err(err(format!("cluster: unknown flag `{other}`"))),
        }
        i += 1;
    }

    config.chaos = chaos_seed.map_or_else(Chaos::from_env, Chaos::seeded);
    if config.chaos.is_enabled() {
        quiet_injected_panics();
    }

    let workers = config.workers;
    let cluster = troy_cluster::Cluster::start(config).map_err(|e| err(format!("cluster: {e}")))?;
    let addr = cluster.local_addr();
    if let Some(path) = &addr_file {
        write_addr_file(path, addr)?;
    }
    eprintln!(
        "troyhls cluster routing on {addr} across {workers} workers; \
         send {{\"id\":\"bye\",\"cmd\":\"shutdown\"}} to drain"
    );

    let snap = cluster.join();
    if let Some(path) = &addr_file {
        remove_addr_file(path);
    }
    let _ = writeln!(out, "cluster: drained cleanly on {addr}");
    let _ = writeln!(
        out,
        "  connections {}  requests {}  ok {}  error {}  relayed rejects {}  sheds {}",
        snap.connections,
        snap.requests,
        snap.routed_ok,
        snap.routed_error,
        snap.relayed_rejects,
        snap.sheds,
    );
    let _ = writeln!(
        out,
        "  probes {} (hits {})  failovers {}  malformed {}  chaos: kill {} part {} torn {} stall {}",
        snap.probes,
        snap.probe_hits,
        snap.failovers,
        snap.malformed,
        snap.chaos_kills,
        snap.chaos_partitions,
        snap.chaos_torn,
        snap.chaos_stalls,
    );
    let _ = writeln!(
        out,
        "  selfheal: respawns {}  replicas {}  repairs {}  warmed {}  journal {} (replayed {})",
        snap.respawns,
        snap.replicas_put,
        snap.read_repairs,
        snap.warmed,
        snap.journal_appends,
        snap.journal_replays,
    );
    Ok(())
}

/// Parses a u64 seed written in decimal or `0x` hex.
fn parse_seed(v: &str) -> Result<u64, CliError> {
    v.strip_prefix("0x")
        .or_else(|| v.strip_prefix("0X"))
        .map_or_else(|| v.parse(), |hex| u64::from_str_radix(hex, 16))
        .map_err(|_| {
            err(format!(
                "--seed: expected a u64 (decimal or 0x hex), got `{v}`"
            ))
        })
}

/// Parses a strictly positive count flag.
fn parse_count(flag: &str, v: &str) -> Result<usize, CliError> {
    v.parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| err(format!("{flag}: expected a positive number")))
}

/// `campaign`: run the seeded Trojan-injection campaign grid and gate the
/// exit code on the hard-guarantee slice (every corrupting memory-less
/// activation in a `DetectionRecovery` design must be detected) and the
/// clean negative control (a Trojan-free cell must report zero activity).
#[allow(clippy::too_many_lines)]
fn campaign(args: &[String], out: &mut String) -> Result<i32, CliError> {
    let mut config = GridConfig::default();
    let mut benchmarks = vec!["polynom".to_owned(), "diff2".to_owned()];
    let mut modes = vec![Mode::DetectionOnly, Mode::DetectionRecovery];
    let mut jobs = default_jobs();
    let mut via_daemon = false;
    let mut json = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => config.seed = parse_seed(take_value(args, &mut i, "--seed")?)?,
            "--cells" => {
                config.max_cells = Some(parse_count(
                    "--cells",
                    take_value(args, &mut i, "--cells")?,
                )?);
            }
            "--steps" => {
                config.steps = parse_count("--steps", take_value(args, &mut i, "--steps")?)?;
            }
            "--traces" => {
                config.traces = parse_count("--traces", take_value(args, &mut i, "--traces")?)?;
            }
            "--jobs" => jobs = parse_jobs(take_value(args, &mut i, "--jobs")?)?,
            "--benchmarks" => {
                benchmarks = take_value(args, &mut i, "--benchmarks")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                if benchmarks.is_empty() {
                    return Err(err(
                        "--benchmarks: expected a comma-separated list of names",
                    ));
                }
            }
            "--mode" => {
                modes = match take_value(args, &mut i, "--mode")? {
                    "detection" => vec![Mode::DetectionOnly],
                    "recovery" => vec![Mode::DetectionRecovery],
                    "both" => vec![Mode::DetectionOnly, Mode::DetectionRecovery],
                    other => {
                        return Err(err(format!(
                            "--mode: expected detection|recovery|both, got `{other}`"
                        )))
                    }
                };
            }
            "--via-daemon" => via_daemon = true,
            "--json" => json = true,
            other => return Err(err(format!("campaign: unknown flag `{other}`"))),
        }
        i += 1;
    }

    let solver = ExactSolver::new();
    let options = SolveOptions::quick();
    let mut designs = Vec::with_capacity(benchmarks.len() * modes.len());
    for name in &benchmarks {
        for &mode in &modes {
            designs.push(
                DesignUnderTest::synthesize(name, mode, &solver, &options)
                    .map_err(|e| err(format!("campaign: {e}")))?,
            );
        }
    }

    let report = run_grid(&designs, &config, jobs);

    if via_daemon {
        campaign_via_daemon(&designs, &report, out)?;
    }

    // The clean negative control: any activity in a Trojan-free cell means
    // the NC/RC comparator itself is unsound.
    let clean_violations: Vec<String> = report
        .cells
        .iter()
        .filter(|c| c.spec.kind == PayloadKind::Clean)
        .filter(|c| {
            c.activations
                + c.corrupted
                + c.detected
                + c.missed
                + c.false_alarms
                + c.recovered
                + c.recovery_failed
                > 0
        })
        .map(|c| {
            format!(
                "FAIL: clean control cell {} reported activity \
                 (activations {}, false alarms {})",
                c.id, c.activations, c.false_alarms
            )
        })
        .collect();
    let escapes = report.guarantee_escapes();

    if json {
        out.push_str(&report.to_json(true));
        for v in &clean_violations {
            eprintln!("{v}");
        }
        for e in &escapes {
            eprintln!(
                "FAIL: escape in guarantee slice: cell={} step={} \
                 (replay: troyhls campaign --seed {:#x})",
                e.cell, e.step, e.seed
            );
        }
    } else {
        out.push_str(&report.summary_text());
        // Worst missed cells outside the guarantee slice — data, not
        // failure: the paper's rare-trigger assumption excludes them.
        let mut missed: Vec<_> = report.cells.iter().filter(|c| c.missed > 0).collect();
        missed.sort_by(|a, b| b.missed.cmp(&a.missed).then_with(|| a.id.cmp(&b.id)));
        if !missed.is_empty() {
            let _ = writeln!(
                out,
                "  {} cells with missed corrupting activations (worst first):",
                missed.len()
            );
            for c in missed.iter().take(8) {
                let _ = writeln!(out, "    {}  missed {}/{}", c.id, c.missed, c.corrupted);
            }
        }
        for v in &clean_violations {
            let _ = writeln!(out, "{v}");
        }
        for e in &escapes {
            let _ = writeln!(
                out,
                "FAIL: escape in guarantee slice: cell={} step={} \
                 (replay: troyhls campaign --seed {:#x})",
                e.cell, e.step, e.seed
            );
        }
        if clean_violations.is_empty() && escapes.is_empty() {
            let _ = writeln!(
                out,
                "campaign gates passed: guarantee slice clean, clean control silent"
            );
        }
    }

    Ok(i32::from(
        !(clean_violations.is_empty() && escapes.is_empty()),
    ))
}

/// Cross-checks the campaign against a live daemon: starts an in-process
/// [`troy_service::Service`], routes one `synth` request per grid cell
/// through it over TCP in lockstep (the daemon's slowloris guard treats
/// frames buffered behind a long synthesis as a stalled peer, so requests
/// are not pipelined), and requires every response to land
/// `ok`/`degraded`, every `ok` response for the same (benchmark, mode) to
/// price identically, and the repeats to hit the daemon's result cache.
fn campaign_via_daemon(
    designs: &[DesignUnderTest],
    report: &CampaignReport,
    out: &mut String,
) -> Result<(), CliError> {
    use std::io::Write as _;

    let service = troy_service::Service::start(troy_service::ServiceConfig::default())
        .map_err(|e| err(format!("campaign: daemon start: {e}")))?;
    let addr = service.local_addr();

    let result = daemon_roundtrips(designs, report, addr);
    // Always drain, even when the round trips failed mid-way.
    if let Ok(mut stream) = std::net::TcpStream::connect(addr) {
        let _ = writeln!(stream, "{{\"id\":\"drain\",\"cmd\":\"shutdown\"}}");
    }
    let snap = service.join();
    let ok = result?;

    if report.cells.len() > designs.len() && snap.cache_hits == 0 {
        return Err(err(
            "campaign: daemon served repeated problems without a single cache hit",
        ));
    }
    let _ = writeln!(
        out,
        "via-daemon: {ok} synth responses over {addr} ({} cache hits, {} degraded)",
        snap.cache_hits, snap.completed_degraded,
    );
    Ok(())
}

/// Sends one synth request per cell and validates the responses; returns
/// the number of accepted responses.
fn daemon_roundtrips(
    designs: &[DesignUnderTest],
    report: &CampaignReport,
    addr: std::net::SocketAddr,
) -> Result<usize, CliError> {
    use std::io::{BufRead as _, BufReader, Write as _};

    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| err(format!("campaign: connect {addr}: {e}")))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| err(format!("campaign: clone socket: {e}")))?,
    );
    let mut writer = stream
        .try_clone()
        .map_err(|e| err(format!("campaign: clone socket: {e}")))?;
    let mut costs: std::collections::HashMap<(String, &'static str), u64> =
        std::collections::HashMap::new();
    let mut ok = 0usize;
    for c in &report.cells {
        let d = designs
            .iter()
            .find(|d| d.name == c.benchmark && d.problem.mode() == c.mode)
            .ok_or_else(|| err("campaign: internal: cell without a matching design"))?;
        let mode = match c.mode {
            Mode::DetectionOnly => "detection",
            Mode::DetectionRecovery => "recovery",
        };
        writeln!(
            writer,
            "{{\"id\":\"{}\",\"cmd\":\"synth\",\"benchmark\":\"{}\",\"mode\":\"{mode}\",\
             \"catalog\":\"paper8\",\"lambda_det\":{},\"lambda_rec\":{},\"deadline_ms\":20000}}",
            c.id,
            c.benchmark,
            d.problem.detection_latency(),
            d.problem.recovery_latency(),
        )
        .map_err(|e| err(format!("campaign: send to daemon: {e}")))?;

        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| err(format!("campaign: read from daemon: {e}")))?;
        let id = scan_json_str(&line, "id").unwrap_or("<none>");
        if id != c.id {
            return Err(err(format!(
                "campaign: daemon answered out of order: expected `{}`, got `{id}`",
                c.id
            )));
        }
        let status = scan_json_str(&line, "status").unwrap_or("<none>");
        if status != "ok" && status != "degraded" {
            return Err(err(format!(
                "campaign: daemon rejected cell `{}`: status `{status}`",
                c.id
            )));
        }
        if status == "ok" {
            let cost = scan_json_u64(&line, "cost").ok_or_else(|| {
                err(format!(
                    "campaign: daemon response for `{}` lacks a cost",
                    c.id
                ))
            })?;
            let key = (c.benchmark.clone(), troy_sim::mode_tag(c.mode));
            if let Some(&prior) = costs.get(&key) {
                if prior != cost {
                    return Err(err(format!(
                        "campaign: daemon priced {}/{} inconsistently: {prior} then {cost}",
                        c.benchmark,
                        troy_sim::mode_tag(c.mode),
                    )));
                }
            } else {
                costs.insert(key, cost);
            }
        }
        ok += 1;
    }
    Ok(ok)
}

/// Pulls `"key":"value"` out of the daemon's fixed no-spaces JSON format.
fn scan_json_str<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let at = text.find(&tag)? + tag.len();
    text[at..].split('"').next()
}

/// Pulls `"key":<integer>` out of the daemon's fixed no-spaces JSON format.
fn scan_json_u64(text: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let at = text.find(&tag)? + tag.len();
    let digits: String = text[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Quietens the process panic hook for *injected* chaos panics (their
/// payloads carry [`CHAOS_PANIC_MARKER`]) while forwarding real ones —
/// a chaos run's stderr stays readable. Installed at most once.
fn quiet_injected_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(CHAOS_PANIC_MARKER))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains(CHAOS_PANIC_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Translates a supervised run's degradation events into the stable
/// `TR0xx` diagnostic codes, so `--lint` reports them alongside the
/// design-rule findings.
fn resilience_diagnostics(sup: &Supervised) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if sup.backend != LADDER[0] || sup.degradation.grace {
        let via = if sup.degradation.grace {
            "the grace pass".to_owned()
        } else {
            format!("fallback back end `{}`", sup.backend)
        };
        out.push(
            Diagnostic::new(
                Code::DegradedBackend,
                format!(
                    "design produced by {via}, not the primary `{}` rung",
                    LADDER[0]
                ),
            )
            .with_fixit(FixIt::advice(
                "raise --deadline to give the primary solver room",
            )),
        );
    }
    if sup.relaxation > 0 {
        out.push(
            Diagnostic::new(
                Code::ConstraintRelaxed,
                format!(
                    "latency constraints were relaxed by {} cycle(s): the design meets \
                     λ_det={}, λ_rec={}, not the bounds as stated",
                    sup.relaxation,
                    sup.problem.detection_latency(),
                    sup.problem.recovery_latency(),
                ),
            )
            .with_fixit(FixIt::advice(
                "accept the relaxed latency or loosen the area/catalog constraints",
            )),
        );
    }
    for (backend, reason) in &sup.degradation.demoted {
        out.push(Diagnostic::new(
            Code::BackendFault,
            format!("back end `{backend}` faulted and was demoted: {reason}"),
        ));
    }
    let retries = sup.degradation.retries();
    if retries > 0 {
        out.push(Diagnostic::new(
            Code::TransientRetried,
            format!("{retries} transient fault(s) absorbed by retrying with backoff"),
        ));
    }
    out
}

#[allow(clippy::too_many_lines)]
fn synth(target: &str, args: &[String], out: &mut String) -> Result<i32, CliError> {
    let g = load_dfg(target)?;
    let mut flags = ProblemFlags::new();
    let mut solver_name: Option<String> = None;
    let mut time_limit = 60u64;
    let mut portfolio = false;
    let mut jobs: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut deadline: Option<Duration> = None;
    let mut max_retries: Option<usize> = None;
    let mut no_degrade = false;
    let mut chaos_seed: Option<u64> = None;
    let (mut chart, mut dot, mut markdown, mut verilog, mut vcd, mut want_lint) =
        (false, false, false, false, false, false);
    let mut prove = false;

    let mut i = 0;
    while i < args.len() {
        if flags.try_consume(args, &mut i)? {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--solver" => {
                solver_name = Some(take_value(args, &mut i, "--solver")?.to_owned());
            }
            "--portfolio" => portfolio = true,
            "--jobs" => {
                jobs = Some(parse_jobs(take_value(args, &mut i, "--jobs")?)?);
            }
            "--cache-dir" => {
                cache_dir = Some(take_value(args, &mut i, "--cache-dir")?.to_owned());
            }
            "--time-limit" => {
                time_limit = take_value(args, &mut i, "--time-limit")?
                    .parse()
                    .map_err(|_| err("--time-limit: expected seconds"))?;
            }
            "--deadline" => {
                let v = take_value(args, &mut i, "--deadline")?;
                deadline = Some(parse_positive_duration("--deadline", v)?);
            }
            "--max-retries" => {
                max_retries = Some(
                    take_value(args, &mut i, "--max-retries")?
                        .parse()
                        .map_err(|_| err("--max-retries: expected a number"))?,
                );
            }
            "--no-degrade" => no_degrade = true,
            "--chaos-seed" => {
                chaos_seed = Some(
                    take_value(args, &mut i, "--chaos-seed")?
                        .parse()
                        .map_err(|_| err("--chaos-seed: expected a u64 seed"))?,
                );
            }
            "--chart" => chart = true,
            "--dot" => dot = true,
            "--markdown" => markdown = true,
            "--verilog" => verilog = true,
            "--vcd" => vcd = true,
            "--lint" => want_lint = true,
            "--prove" => prove = true,
            other => return Err(err(format!("synth: unknown flag `{other}`"))),
        }
        i += 1;
    }

    let supervised_run =
        deadline.is_some() || max_retries.is_some() || no_degrade || chaos_seed.is_some();
    if supervised_run && (solver_name.is_some() || portfolio || cache_dir.is_some()) {
        return Err(err(
            "resilience flags (--deadline/--max-retries/--no-degrade/--chaos-seed) pick \
             their own back ends and bypass the result cache; drop --solver, --portfolio \
             and --cache-dir",
        ));
    }

    let mode = flags.mode;
    let problem = flags.build(g)?;

    let options = SolveOptions {
        time_limit: Duration::from_secs(time_limit),
        ..SolveOptions::default()
    };

    // (result, engine label, the problem the design actually satisfies,
    //  the supervision record when the supervisor ran)
    let (solved, engine_label, solved_problem, supervision): (
        PortfolioResult,
        String,
        SynthesisProblem,
        Option<Supervised>,
    ) = if supervised_run {
        let chaos = chaos_seed.map_or_else(Chaos::from_env, Chaos::seeded);
        if chaos.is_enabled() {
            quiet_injected_panics();
        }
        let config = SupervisorConfig {
            deadline: deadline.unwrap_or_else(|| Duration::from_secs(time_limit)),
            max_retries: max_retries.unwrap_or(2),
            degrade: !no_degrade,
            options: options.clone(),
            ..SupervisorConfig::default()
        };
        let sup = supervise(&problem, &config, &chaos).map_err(|e| {
            err(format!(
                "synthesis failed: {e}\ndegradation report:\n{}",
                e.degradation.summary().trim_end()
            ))
        })?;
        let solved = PortfolioResult {
            timed_out: !sup.synthesis.proven_optimal,
            synthesis: sup.synthesis.clone(),
            winner: sup.backend,
            from_cache: false,
            elapsed: sup.elapsed,
        };
        let label = format!("supervised[{}]", sup.backend);
        let solved_problem = sup.problem.clone();
        (solved, label, solved_problem, Some(sup))
    } else {
        let backend = match &solver_name {
            Some(name) => {
                Backend::parse(name).ok_or_else(|| err(format!("--solver: unknown `{name}`")))?
            }
            None => Backend::Exact,
        };
        let engine = if portfolio {
            "portfolio"
        } else {
            backend.name()
        };
        let cache = open_cache(cache_dir.as_deref())?;
        let key = cache_key(&problem, engine, &options);

        let solved = if let Some(hit) = cache.as_ref().and_then(|c| c.lookup(&key, &problem)) {
            hit
        } else {
            let fresh = if portfolio {
                race(&problem, &options, jobs.unwrap_or_else(default_jobs))
            } else {
                let t0 = Instant::now();
                backend
                    .solver()
                    .synthesize(&problem, &options)
                    .map(|s| PortfolioResult {
                        timed_out: !s.proven_optimal,
                        synthesis: s,
                        winner: backend,
                        from_cache: false,
                        elapsed: t0.elapsed(),
                    })
            }
            .map_err(|e| err(format!("synthesis failed: {e}")))?;
            if let Some(cache) = &cache {
                cache.store(&key, &fresh);
            }
            fresh
        };
        let label = if portfolio {
            format!("portfolio[{}]", solved.winner)
        } else {
            backend.name().to_owned()
        };
        (solved, label, problem, None)
    };
    let problem = solved_problem;
    let result = &solved.synthesis;
    // Post-solve check through the same engine `lint` uses: a solver bug
    // surfaces as the full coded diagnostics report, not a bare assert.
    // Supervised runs are linted against the problem the design actually
    // satisfies (possibly latency-relaxed), so a legitimate relaxation is
    // reported as TR002, not a spurious scheduling error.
    let mut check = troy_analysis::lint(&problem, Some(&result.implementation));
    if check.count(Severity::Error) > 0 {
        return Err(err(format!(
            "internal: {engine_label} produced an invalid design\n{}",
            check.to_text()
        )));
    }
    if let Some(sup) = &supervision {
        check.diagnostics.extend(resilience_diagnostics(sup));
        check.diagnostics.sort_by_key(Diagnostic::sort_key);
    }

    let stats = result.implementation.stats(&problem);
    let _ = writeln!(
        out,
        "{} on {} ({}): ${}{}{}",
        engine_label,
        problem.dfg().name(),
        mode,
        result.cost,
        if result.proven_optimal {
            ""
        } else {
            " (best effort)"
        },
        if solved.from_cache { " (cached)" } else { "" },
    );
    let _ = writeln!(out, "{stats}");
    if let Some(sup) = &supervision {
        if sup.degraded() {
            let _ = writeln!(out, "degraded result (exit 3):");
            let _ = write!(out, "{}", sup.degradation.summary());
        }
    }
    let _ = writeln!(out, "licenses:");
    for l in result.implementation.licenses_used(&problem) {
        let off = problem
            .catalog()
            .offering_of(l)
            .ok_or_else(|| err(format!("internal: design uses unknown license `{l}`")))?;
        let _ = writeln!(out, "  {l:<22} area {:>6}  ${}", off.area, off.cost);
    }
    if chart {
        let _ = writeln!(
            out,
            "\n{}",
            schedule_chart(&problem, &result.implementation)
        );
    }
    if markdown {
        let _ = writeln!(
            out,
            "\n{}",
            markdown_summary(&problem, &result.implementation)
        );
    }
    if dot {
        let _ = writeln!(
            out,
            "\n{}",
            implementation_dot(&problem, &result.implementation)
        );
    }
    if verilog {
        let _ = writeln!(out, "\n{}", emit_verilog(&problem, &result.implementation));
    }
    if vcd {
        // Trace one clean mission step so the schedule can be inspected in
        // a waveform viewer.
        let trace = troy_sim::trace_run(
            &problem,
            &result.implementation,
            &troy_sim::CoreLibrary::new(),
            &troy_sim::InputVector::from_seed(problem.dfg(), 1),
        );
        let _ = writeln!(out, "\n{trace}");
    }
    if want_lint {
        let _ = writeln!(out, "\n{}", check.to_text().trim_end());
    }
    if prove {
        // The post-solve lint already rejected rule-breaking designs, so
        // a refusal here means the *prover* sees an exposure the rules
        // missed — surface it as the internal error it is.
        let cert = troy_analysis::certify(&problem, &result.implementation).map_err(|diags| {
            let mut msg = format!("internal: {engine_label} produced an uncertifiable design\n");
            for d in &diags {
                let _ = writeln!(msg, "{d}");
            }
            err(msg)
        })?;
        let _ = writeln!(out, "\n{cert}");
    }
    Ok(match &supervision {
        Some(sup) if sup.degraded() => 3,
        _ => 0,
    })
}

#[allow(clippy::too_many_lines)]
fn lint_cmd(target: &str, args: &[String], out: &mut String) -> Result<i32, CliError> {
    let g = load_dfg(target)?;
    let mut flags = ProblemFlags::new();
    let mut solver_name: Option<String> = None;
    let mut time_limit = 60u64;
    let mut format = "text".to_owned();
    let mut options = AnalysisOptions::default();
    let mut prove = false;

    let mut i = 0;
    while i < args.len() {
        if flags.try_consume(args, &mut i)? {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--solver" => {
                solver_name = Some(take_value(args, &mut i, "--solver")?.to_owned());
            }
            "--prove" => prove = true,
            "--time-limit" => {
                time_limit = take_value(args, &mut i, "--time-limit")?
                    .parse()
                    .map_err(|_| err("--time-limit: expected seconds"))?;
            }
            "--format" => {
                take_value(args, &mut i, "--format")?.clone_into(&mut format);
                if !matches!(format.as_str(), "text" | "json" | "sarif") {
                    return Err(err(format!(
                        "--format: unknown `{format}`; expected text|json|sarif"
                    )));
                }
            }
            "--min-severity" => {
                let v = take_value(args, &mut i, "--min-severity")?;
                options.min_severity = Severity::parse(v)
                    .ok_or_else(|| err(format!("--min-severity: unknown `{v}`")))?;
            }
            "--allow" => {
                let v = take_value(args, &mut i, "--allow")?;
                let code = Code::parse(v)
                    .ok_or_else(|| err(format!("--allow: unknown diagnostic code `{v}`")))?;
                options.suppressed.insert(code);
            }
            "--deny" => match take_value(args, &mut i, "--deny")? {
                "warnings" => options.deny_warnings = true,
                other => return Err(err(format!("--deny: unknown `{other}`"))),
            },
            other => return Err(err(format!("lint: unknown flag `{other}`"))),
        }
        i += 1;
    }

    let problem = flags.build(g)?;

    // Without a solver only the pre-solve (TP) passes have anything to
    // inspect; with one, the synthesized binding is linted like any other.
    let implementation: Option<Implementation> = match solver_name {
        None => None,
        Some(name) => {
            let solver = make_solver(&name)?;
            let solve_options = SolveOptions {
                time_limit: Duration::from_secs(time_limit),
                ..SolveOptions::default()
            };
            let result = solver
                .synthesize(&problem, &solve_options)
                .map_err(|e| err(format!("synthesis failed: {e}")))?;
            Some(result.implementation)
        }
    };

    let analyzer = if prove {
        Analyzer::proving()
    } else {
        Analyzer::new()
    };
    let report = analyzer.analyze(&problem, implementation.as_ref(), &options);
    out.push_str(&match format.as_str() {
        "json" => report.to_json(),
        "sarif" => report.to_sarif(),
        _ => report.to_text(),
    });
    // With the prover engaged and a binding that survived it, the text
    // report ends with the machine-checked certificate; failures already
    // carry their counterexample witnesses in the report body.
    if prove && format == "text" {
        if let Some(imp) = &implementation {
            if let Ok(cert) = troy_analysis::certify(&problem, imp) {
                let _ = writeln!(out, "\n{cert}");
            }
        }
    }
    Ok(report.exit_code())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Result<String, CliError> {
        cli_with_code(args).map(|(out, _)| out)
    }

    fn cli_with_code(args: &[&str]) -> Result<(String, i32), CliError> {
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        let mut out = String::new();
        run(&args, &mut out).map(|code| (out, code))
    }

    #[test]
    fn list_names_all_benchmarks() {
        let out = cli(&["list"]).unwrap();
        for name in ["polynom", "fir16", "fft8"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn show_prints_the_graph() {
        let out = cli(&["show", "diff2"]).unwrap();
        assert!(out.contains("dfg diff2"));
        assert!(out.contains("11 ops"));
    }

    #[test]
    fn synth_motivational_example() {
        let out = cli(&[
            "synth",
            "polynom",
            "--catalog",
            "table1",
            "--lambda-det",
            "4",
            "--lambda-rec",
            "3",
            "--area",
            "22000",
        ])
        .unwrap();
        assert!(out.contains("$4160"), "{out}");
        assert!(out.contains("licenses:"));
    }

    #[test]
    fn synth_detection_mode_with_chart_and_markdown() {
        let out = cli(&[
            "synth",
            "polynom",
            "--mode",
            "detection",
            "--catalog",
            "table1",
            "--chart",
            "--markdown",
        ])
        .unwrap();
        assert!(out.contains("cycle1"));
        assert!(out.contains("| license cost (mc) |"));
    }

    #[test]
    fn synth_with_each_solver() {
        for solver in ["exact", "greedy", "annealing"] {
            let out = cli(&[
                "synth",
                "polynom",
                "--catalog",
                "table1",
                "--solver",
                solver,
                "--time-limit",
                "20",
            ])
            .unwrap();
            assert!(out.contains("mc=$"), "{solver}: {out}");
        }
    }

    #[test]
    fn synth_prove_appends_a_security_certificate() {
        let out = cli(&[
            "synth",
            "polynom",
            "--catalog",
            "table1",
            "--lambda-det",
            "4",
            "--lambda-rec",
            "3",
            "--area",
            "22000",
            "--prove",
        ])
        .unwrap();
        assert!(out.contains("$4160"), "{out}");
        assert!(out.contains("security certificate: polynom"), "{out}");
        assert!(out.contains("no single vendor"), "{out}");
        assert!(out.contains("no colluding vendor pair"), "{out}");
        assert!(out.contains("checksum:"), "{out}");
    }

    #[test]
    fn lint_prove_with_solver_ends_with_the_certificate() {
        let (out, code) = cli_with_code(&[
            "lint",
            "polynom",
            "--catalog",
            "table1",
            "--solver",
            "greedy",
            "--prove",
        ])
        .unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("security certificate: polynom"), "{out}");
        assert!(out.contains("minimum evading coalition: 2"), "{out}");
    }

    #[test]
    fn lint_prove_without_a_binding_issues_no_certificate() {
        let (out, code) =
            cli_with_code(&["lint", "polynom", "--catalog", "table1", "--prove"]).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(!out.contains("security certificate"), "{out}");
    }

    #[test]
    fn synth_from_a_dfg_file() {
        let dir = std::env::temp_dir().join("troyhls-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.dfg");
        std::fs::write(
            &path,
            "dfg tiny\nop a mul\nop b mul\nop c add\nedge a c\nedge b c\n",
        )
        .unwrap();
        let out = cli(&["synth", path.to_str().unwrap(), "--mode", "detection"]).unwrap();
        assert!(out.contains("on tiny"));
    }

    #[test]
    fn profile_reports_no_pairs_for_random_stimulus() {
        let out = cli(&["profile", "polynom", "--samples", "8"]).unwrap();
        assert!(out.contains("no closely-related pairs"));
    }

    #[test]
    fn errors_are_informative() {
        assert!(cli(&[]).unwrap_err().0.contains("usage"));
        assert!(cli(&["frob"]).unwrap_err().0.contains("unknown command"));
        assert!(cli(&["show", "nope.dfg"])
            .unwrap_err()
            .0
            .contains("cannot read"));
        assert!(cli(&["synth", "polynom", "--solver", "magic"])
            .unwrap_err()
            .0
            .contains("unknown `magic`"));
        assert!(cli(&["synth", "polynom", "--area"])
            .unwrap_err()
            .0
            .contains("missing value"));
        // Infeasible area surfaces as a synthesis failure.
        assert!(
            cli(&["synth", "polynom", "--catalog", "table1", "--area", "4000"])
                .unwrap_err()
                .0
                .contains("synthesis failed")
        );
    }

    #[test]
    fn verilog_output_is_emitted() {
        let out = cli(&[
            "synth",
            "polynom",
            "--mode",
            "detection",
            "--catalog",
            "table1",
            "--verilog",
        ])
        .unwrap();
        assert!(out.contains("module polynom_troyhls"));
        assert!(out.contains("endmodule"));
    }

    #[test]
    fn vcd_output_is_a_value_change_dump() {
        let out = cli(&[
            "synth",
            "polynom",
            "--mode",
            "detection",
            "--catalog",
            "table1",
            "--vcd",
        ])
        .unwrap();
        assert!(out.contains("$enddefinitions $end"));
        assert!(out.contains("$var wire 64"));
    }

    #[test]
    fn dot_output_is_graphviz() {
        let out = cli(&["synth", "polynom", "--mode", "detection", "--dot"]).unwrap();
        assert!(out.contains("digraph"));
    }

    #[test]
    fn lint_presolve_flags_too_few_vendors_without_solving() {
        // Table 1 has 4 vendors, but recovery mode on a catalog trimmed to
        // two is provably infeasible — lint must say so pre-solve. The CLI
        // has no trimmed catalog, so check the reachable built-in case:
        // paper8/recovery is feasible and reports no TP001.
        let (out, code) = cli_with_code(&["lint", "polynom", "--catalog", "table1"]).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(!out.contains("TP001"), "{out}");
        assert!(out.contains("ok: polynom"), "{out}");
    }

    #[test]
    fn lint_area_infeasibility_detected_pre_solve() {
        let (out, code) = cli_with_code(&[
            "lint",
            "polynom",
            "--catalog",
            "table1",
            "--mode",
            "detection",
            "--area",
            "10",
        ])
        .unwrap();
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("error[TP003]"), "{out}");
        assert!(out.contains("FAIL"), "{out}");
    }

    #[test]
    fn lint_solver_binding_is_clean_and_formats_agree_on_codes() {
        for format in ["text", "json", "sarif"] {
            let (out, code) = cli_with_code(&[
                "lint",
                "polynom",
                "--catalog",
                "table1",
                "--mode",
                "detection",
                "--solver",
                "exact",
                "--format",
                format,
                "--min-severity",
                "error",
            ])
            .unwrap();
            assert_eq!(code, 0, "{format}: {out}");
            assert!(!out.contains("TD0"), "{format}: {out}");
        }
    }

    #[test]
    fn lint_json_and_sarif_are_structured() {
        let (json, _) =
            cli_with_code(&["lint", "polynom", "--catalog", "table1", "--format", "json"]).unwrap();
        assert!(json.contains("\"tool\": \"troy-analysis\""), "{json}");
        let (sarif, _) = cli_with_code(&[
            "lint",
            "polynom",
            "--catalog",
            "table1",
            "--format",
            "sarif",
        ])
        .unwrap();
        assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    }

    #[test]
    fn lint_deny_warnings_and_allow_gate_the_exit_code() {
        // A near-collusion warning is plausible on heuristic bindings, but
        // the zero-mobility note is deterministic: lambda == critical path.
        let g_args = [
            "lint",
            "polynom",
            "--catalog",
            "table1",
            "--mode",
            "detection",
            "--lambda-det",
            "3",
        ];
        let (out, code) = cli_with_code(&g_args).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("TP002"), "{out}");
        // Suppressing the note removes it from the report.
        let mut allowed = g_args.to_vec();
        allowed.extend(["--allow", "TP002"]);
        let (out, _) = cli_with_code(&allowed).unwrap();
        assert!(!out.contains("TP002"), "{out}");
    }

    #[test]
    fn lint_rejects_bad_flags() {
        assert!(cli(&["lint", "polynom", "--format", "xml"])
            .unwrap_err()
            .0
            .contains("--format"));
        assert!(cli(&["lint", "polynom", "--allow", "TD999"])
            .unwrap_err()
            .0
            .contains("unknown diagnostic code"));
        assert!(cli(&["lint", "polynom", "--deny", "notes"])
            .unwrap_err()
            .0
            .contains("--deny"));
        assert!(cli(&["lint", "polynom", "--min-severity", "fatal"])
            .unwrap_err()
            .0
            .contains("--min-severity"));
    }

    #[test]
    fn synth_lint_flag_appends_report() {
        let out = cli(&[
            "synth",
            "polynom",
            "--catalog",
            "table1",
            "--mode",
            "detection",
            "--lint",
        ])
        .unwrap();
        assert!(out.contains("ok: polynom"), "{out}");
    }

    #[test]
    fn synth_portfolio_races_to_the_motivational_optimum() {
        let out = cli(&[
            "synth",
            "polynom",
            "--catalog",
            "table1",
            "--lambda-det",
            "4",
            "--lambda-rec",
            "3",
            "--area",
            "22000",
            "--portfolio",
            "--jobs",
            "2",
        ])
        .unwrap();
        assert!(out.contains("portfolio[exact]"), "{out}");
        assert!(out.contains("$4160"), "{out}");
        assert!(!out.contains("best effort"), "{out}");
    }

    #[test]
    fn synth_deadline_engages_the_supervisor() {
        let (out, code) = cli_with_code(&[
            "synth",
            "polynom",
            "--catalog",
            "table1",
            "--mode",
            "detection",
            "--deadline",
            "10s",
        ])
        .unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("supervised[ilp]"), "{out}");
        assert!(!out.contains("degraded result"), "{out}");
    }

    #[test]
    fn synth_resilience_flags_reject_solver_portfolio_and_cache() {
        for extra in [
            ["--solver", "exact"],
            ["--portfolio", "--jobs"],
            ["--cache-dir", "/tmp/x"],
        ] {
            let mut args = vec!["synth", "polynom", "--deadline", "2s"];
            args.extend(extra.iter().filter(|a| !a.is_empty()));
            if args.contains(&"--jobs") {
                args.push("2");
            }
            let e = cli(&args).unwrap_err();
            assert!(e.0.contains("resilience flags"), "{args:?}: {e}");
        }
    }

    #[test]
    fn synth_resilience_flag_values_are_validated() {
        assert!(cli(&["synth", "polynom", "--deadline", "soon"])
            .unwrap_err()
            .0
            .contains("--deadline"));
        // A zero budget is a usage error up front, not a guaranteed
        // deadline failure later.
        assert!(cli(&["synth", "polynom", "--deadline", "0s"])
            .unwrap_err()
            .0
            .contains("must be positive"));
        assert!(cli(&["synth", "polynom", "--max-retries", "many"])
            .unwrap_err()
            .0
            .contains("--max-retries"));
        assert!(cli(&["synth", "polynom", "--chaos-seed", "-1"])
            .unwrap_err()
            .0
            .contains("--chaos-seed"));
    }

    #[test]
    fn synth_chaos_panic_degrades_with_exit_3_and_tr_diagnostics() {
        use troy_resilience::InjectedFault;
        // A seed whose schedule panics the primary (ILP) rung's first
        // attempt: the supervisor must demote it and descend, making the
        // result degraded by construction — deterministic, no timing.
        let seed = (0..u64::MAX)
            .find(|&s| {
                Chaos::seeded(s).fault_for_attempt(Backend::Ilp, 0, 0) == Some(InjectedFault::Panic)
            })
            .expect("some seed panics the first ILP attempt");
        let (out, code) = cli_with_code(&[
            "synth",
            "polynom",
            "--catalog",
            "table1",
            "--mode",
            "detection",
            "--deadline",
            "10s",
            "--chaos-seed",
            &seed.to_string(),
            "--lint",
        ])
        .unwrap();
        assert_eq!(code, 3, "{out}");
        assert!(out.contains("degraded result (exit 3):"), "{out}");
        assert!(!out.contains("supervised[ilp]"), "{out}");
        assert!(out.contains("TR001"), "{out}");
        assert!(out.contains("TR003"), "{out}");
    }

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("troyhls-cli-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn synth_cache_dir_serves_the_second_run() {
        let dir = scratch_dir("synth-cache");
        let args = [
            "synth",
            "polynom",
            "--catalog",
            "table1",
            "--mode",
            "detection",
            "--cache-dir",
            dir.to_str().unwrap(),
        ];
        let cold = cli(&args).unwrap();
        assert!(!cold.contains("(cached)"), "{cold}");
        // A fresh CLI invocation only has the on-disk layer to hit.
        let warm = cli(&args).unwrap();
        assert!(warm.contains("(cached)"), "{warm}");
        assert_eq!(
            cold.lines().next(),
            warm.lines()
                .next()
                .map(|l| l.strip_suffix(" (cached)").unwrap_or(l))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_regenerates_table3_and_writes_the_bench_record() {
        let dir = scratch_dir("batch-cache");
        let json_path = dir.join("BENCH_portfolio.json");
        std::fs::create_dir_all(&dir).unwrap();
        let cache = dir.join("cache");
        let out = cli(&[
            "batch",
            "table3",
            "--jobs",
            "2",
            "--time-limit",
            "5",
            "--cache-dir",
            cache.to_str().unwrap(),
            "--bench-json",
            json_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("Table 3"), "{out}");
        assert!(out.contains("table3: 12 rows"), "{out}");
        let record = std::fs::read_to_string(&json_path).unwrap();
        assert!(record.contains("\"table\": \"table3\""), "{record}");
        assert!(record.contains("\"speedup\""), "{record}");
        // The warm pass is served from the on-disk cache and still renders
        // the same grid.
        let warm = cli(&[
            "batch",
            "table3",
            "--jobs",
            "1",
            "--time-limit",
            "5",
            "--cache-dir",
            cache.to_str().unwrap(),
        ])
        .unwrap();
        assert!(warm.contains("table3: 12 rows"), "{warm}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_rejects_bad_flags() {
        for (args, fragment) in [
            (vec!["serve", "--max-inflight", "0"], "--max-inflight"),
            (vec!["serve", "--queue-depth", "zero"], "--queue-depth"),
            (
                vec!["serve", "--default-deadline", "0s"],
                "must be positive",
            ),
            (
                vec!["serve", "--drain-deadline", "soon"],
                "--drain-deadline",
            ),
            (vec!["serve", "--frame-deadline", "0ms"], "must be positive"),
            (vec!["serve", "--chaos-seed", "-1"], "--chaos-seed"),
            (vec!["serve", "--port", "80"], "unknown flag"),
        ] {
            let e = cli(&args).unwrap_err();
            assert!(e.0.contains(fragment), "{args:?}: {e}");
        }
    }

    #[test]
    fn serve_runs_the_daemon_until_a_shutdown_request_drains_it() {
        use std::io::{BufRead as _, BufReader, Write as _};
        let dir = scratch_dir("serve");
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("addr");
        let addr_file_arg = addr_file.to_str().unwrap().to_owned();
        let daemon = std::thread::spawn(move || {
            cli_with_code(&[
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--addr-file",
                &addr_file_arg,
                "--max-inflight",
                "2",
                "--queue-depth",
                "2",
                "--default-deadline",
                "5s",
                "--drain-deadline",
                "2s",
            ])
        });
        // Wait for the daemon to publish its bound address.
        let t0 = std::time::Instant::now();
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if text.trim().parse::<std::net::SocketAddr>().is_ok() {
                    break text.trim().to_owned();
                }
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "daemon never published its address"
            );
            std::thread::sleep(Duration::from_millis(20));
        };

        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"{\"id\":\"p\",\"cmd\":\"ping\"}\n{\"id\":\"bye\",\"cmd\":\"shutdown\"}\n")
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"status\":\"pong\""), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("draining"), "{line}");

        let (out, code) = daemon
            .join()
            .expect("daemon thread")
            .expect("serve exits ok");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("drained cleanly"), "{out}");
        assert!(out.contains("connections 1"), "{out}");
        assert!(
            !addr_file.exists(),
            "a drained daemon must not look reachable: the addr file stays behind"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cluster_rejects_bad_flags() {
        assert!(cli(&["cluster", "--workers", "0"])
            .unwrap_err()
            .0
            .contains("--workers"));
        assert!(cli(&["cluster", "--seed", "banana"])
            .unwrap_err()
            .0
            .contains("--seed"));
        assert!(cli(&["cluster", "--bogus"])
            .unwrap_err()
            .0
            .contains("unknown flag"));
        assert!(cli(&["cluster", "--max-respawns", "banana"])
            .unwrap_err()
            .0
            .contains("--max-respawns"));
        assert!(cli(&["cluster", "--replication", "0"])
            .unwrap_err()
            .0
            .contains("--replication"));
    }

    #[test]
    fn cluster_routes_requests_until_a_shutdown_drains_it() {
        use std::io::{BufRead as _, BufReader, Write as _};
        let dir = scratch_dir("cluster");
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("addr");
        let addr_file_arg = addr_file.to_str().unwrap().to_owned();
        let journal_dir_arg = dir.join("wal").to_str().unwrap().to_owned();
        let daemon = std::thread::spawn(move || {
            cli_with_code(&[
                "cluster",
                "--workers",
                "2",
                "--addr",
                "127.0.0.1:0",
                "--addr-file",
                &addr_file_arg,
                "--default-deadline",
                "5s",
                "--drain-deadline",
                "2s",
                "--respawn",
                "--max-respawns",
                "4",
                "--replication",
                "2",
                "--journal-dir",
                &journal_dir_arg,
            ])
        });
        // Wait for the router to publish its bound address.
        let t0 = std::time::Instant::now();
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if text.trim().parse::<std::net::SocketAddr>().is_ok() {
                    break text.trim().to_owned();
                }
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "cluster never published its address"
            );
            std::thread::sleep(Duration::from_millis(20));
        };

        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"{\"id\":\"p\",\"cmd\":\"ping\"}\n{\"id\":\"bye\",\"cmd\":\"shutdown\"}\n")
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"status\":\"pong\""), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("draining"), "{line}");

        let (out, code) = daemon
            .join()
            .expect("cluster thread")
            .expect("cluster exits ok");
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("cluster: drained cleanly"), "{out}");
        assert!(out.contains("connections 1"), "{out}");
        assert!(
            out.contains("selfheal: respawns"),
            "the drain summary reports the self-healing counters: {out}"
        );
        assert!(
            dir.join("wal").join("dispatch.wal").exists(),
            "--journal-dir creates the dispatch journal"
        );
        assert!(
            !addr_file.exists(),
            "a drained cluster must not look reachable: the addr file stays behind"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_rejects_unknown_grids() {
        assert!(cli(&["batch", "table9"])
            .unwrap_err()
            .0
            .contains("unknown argument"));
        assert!(cli(&["batch", "--jobs", "0"])
            .unwrap_err()
            .0
            .contains("--jobs"));
    }

    #[test]
    fn campaign_small_grid_passes_its_gates() {
        let (out, code) = cli_with_code(&[
            "campaign",
            "--benchmarks",
            "polynom",
            "--cells",
            "12",
            "--steps",
            "4",
            "--seed",
            "0x5151",
        ])
        .unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("campaign: seed 0x5151, 12 cells"), "{out}");
        assert!(out.contains("guarantee slice:"), "{out}");
        assert!(out.contains("campaign gates passed"), "{out}");
    }

    #[test]
    fn campaign_json_is_structured_and_deterministic_across_jobs() {
        let args = |jobs: &'static str| {
            vec![
                "campaign",
                "--benchmarks",
                "diff2",
                "--cells",
                "10",
                "--steps",
                "4",
                "--seed",
                "77",
                "--jobs",
                jobs,
                "--json",
            ]
        };
        let (serial, code) = cli_with_code(&args("1")).unwrap();
        assert_eq!(code, 0, "{serial}");
        assert!(serial.contains("\"schema\": 1"), "{serial}");
        assert!(serial.contains("\"rows\": ["), "{serial}");
        assert!(serial.contains("\"seed\": 77"), "{serial}");
        let (parallel, _) = cli_with_code(&args("4")).unwrap();
        // latency_us is wall-clock; everything else must agree.
        let strip = |s: &str| {
            s.lines()
                .map(|l| match l.find(", \"latency_us\":") {
                    Some(at) => format!("{} }}", &l[..at]),
                    None => l.to_owned(),
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&serial), strip(&parallel));
    }

    #[test]
    fn campaign_mode_filter_restricts_the_designs() {
        let (out, code) = cli_with_code(&[
            "campaign",
            "--benchmarks",
            "polynom",
            "--mode",
            "recovery",
            "--cells",
            "6",
            "--steps",
            "3",
            "--json",
        ])
        .unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"mode\": \"rec\""), "{out}");
        assert!(!out.contains("\"mode\": \"det\""), "{out}");
    }

    #[test]
    fn campaign_rejects_bad_flags() {
        for (args, fragment) in [
            (vec!["campaign", "--seed", "0xzz"], "--seed"),
            (vec!["campaign", "--cells", "0"], "--cells"),
            (vec!["campaign", "--steps", "none"], "--steps"),
            (vec!["campaign", "--mode", "zen"], "--mode"),
            (vec!["campaign", "--benchmarks", " , "], "--benchmarks"),
            (vec!["campaign", "--benchmarks", "nosuch"], "nosuch"),
            (vec!["campaign", "--jobs", "0"], "--jobs"),
            (vec!["campaign", "--fast"], "unknown flag"),
        ] {
            let e = cli(&args).unwrap_err();
            assert!(e.0.contains(fragment), "{args:?}: {e}");
        }
    }

    #[test]
    fn campaign_via_daemon_cross_checks_the_serve_path() {
        let (out, code) = cli_with_code(&[
            "campaign",
            "--benchmarks",
            "polynom",
            "--cells",
            "8",
            "--steps",
            "3",
            "--via-daemon",
        ])
        .unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("via-daemon: 8 synth responses"), "{out}");
        // 8 cells over 2 designs: the daemon must have served repeats from
        // its result cache.
        assert!(!out.contains("0 cache hits"), "{out}");
    }
}
