//! The `troyhls-cli` binary: see [`troy_cli::run`] for the command reference.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match troy_cli::run(&args, &mut out) {
        Ok(code) => {
            print!("{out}");
            std::process::exit(code);
        }
        Err(e) => {
            print!("{out}");
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
