//! End-to-end simulator properties on randomly generated designs.

use proptest::prelude::*;
use troy_dfg::{random_dfg, RandomDfgConfig};
use troy_sim::{
    golden_eval, sink_outputs, CoreLibrary, InputVector, Payload, PhaseController, Trigger, Trojan,
};
use troyhls::{
    Catalog, ExactSolver, License, Mode, Role, SolveOptions, SynthesisProblem, Synthesizer,
};

/// Same-type op pairs that share their first-operand producer: their
/// operands are *identical* on every input, so they are closely related in
/// the paper's strongest sense and must be declared under Rule 2 for fast
/// recovery (otherwise a trigger crafted for one can re-fire through the
/// other during recovery — see `rule2_regression` below).
fn structural_related_pairs(dfg: &troy_dfg::Dfg) -> Vec<(troy_dfg::NodeId, troy_dfg::NodeId)> {
    let nodes: Vec<_> = dfg.node_ids().collect();
    let mut out = Vec::new();
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            if dfg.kind(a).ip_type() == dfg.kind(b).ip_type()
                && !dfg.preds(a).is_empty()
                && dfg.preds(a).first() == dfg.preds(b).first()
            {
                out.push((a, b));
            }
        }
    }
    out
}

fn scenario() -> impl Strategy<Value = (SynthesisProblem, u64)> {
    (2usize..=10, 1usize..=4, 0u8..=100, any::<u64>()).prop_map(|(ops, depth, mul, seed)| {
        let cfg = RandomDfgConfig {
            ops,
            max_depth: depth,
            mul_ratio_percent: mul,
            edge_bias_percent: 75,
        };
        let dfg = random_dfg(&cfg, seed);
        let cp = dfg.critical_path_len();
        let mut builder = SynthesisProblem::builder(dfg.clone(), Catalog::paper8())
            .mode(Mode::DetectionRecovery)
            .detection_latency(cp + 1)
            .recovery_latency(cp);
        for (a, b) in structural_related_pairs(&dfg) {
            builder = builder.related_pair(a, b);
        }
        let p = builder.build().expect("valid");
        (p, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Clean hardware: every computation reproduces the golden model and
    /// the monitor stays silent.
    #[test]
    fn clean_designs_match_golden((p, seed) in scenario()) {
        let Ok(s) = ExactSolver::new().synthesize(&p, &SolveOptions::quick()) else {
            return Ok(()); // hard random instance: skip
        };
        let lib = CoreLibrary::new();
        let mut ctrl = PhaseController::new(&p, &s.implementation, &lib);
        let iv = InputVector::from_seed(p.dfg(), seed ^ 0xABCD);
        let report = ctrl.run(&iv);
        let golden = sink_outputs(p.dfg(), &golden_eval(p.dfg(), &iv));
        prop_assert!(!report.mismatch);
        prop_assert_eq!(&report.nc, &golden);
        prop_assert_eq!(&report.rc, &golden);
        prop_assert!(report.delivered_correct());
    }

    /// A single memory-less Trojan crafted against any one op either never
    /// corrupts a sink, or is detected AND healed by the recovery run.
    #[test]
    fn single_trojan_detected_and_recovered((p, seed) in scenario(), victim_idx in 0usize..10) {
        let Ok(s) = ExactSolver::new().synthesize(&p, &SolveOptions::quick()) else {
            return Ok(());
        };
        let dfg = p.dfg();
        let victim = troy_dfg::NodeId::new(victim_idx % dfg.len());
        let iv = InputVector::from_seed(dfg, seed ^ 0x1234);
        // Trigger on the victim's true first operand.
        let golden_all = golden_eval(dfg, &iv);
        let operand = match dfg.preds(victim) {
            [] if dfg.node(victim).primary_inputs() > 0 => iv.values(victim)[0],
            [] => return Ok(()),
            [first, ..] => golden_all[first.index()],
        };
        let vendor = s.implementation.assignment(victim, Role::Nc).unwrap().vendor;
        let mut lib = CoreLibrary::new();
        lib.infect(
            License { vendor, ip_type: dfg.kind(victim).ip_type() },
            Trojan {
                trigger: Trigger::on_operand_a(operand),
                payload: Payload::XorMask(0xFFFF_FFFF),
            },
        );
        let mut ctrl = PhaseController::new(&p, &s.implementation, &lib);
        let report = ctrl.run(&iv);
        if report.corrupted() {
            prop_assert!(report.mismatch, "corruption must be detected");
            // Rule 2 pairs cover all identical-operand aliases of the
            // victim, so the crafted trigger cannot re-fire in recovery.
            prop_assert!(report.delivered_correct(), "recovery must heal");
        } else {
            // Either masked before the sinks or the trigger value collided
            // with another op on the infected product; in the latter case a
            // mismatch without sink corruption is still a true positive.
            prop_assert!(report.delivered_correct() || report.mismatch);
        }
    }
}

/// Regression distilled from the property above, run WITHOUT Rule 2: two
/// multiplications share a producer; the Trojan targets one of them, and
/// because recovery is free to put the *other* one on the infected vendor,
/// the recovery output stays corrupt. Declaring the pair closely related
/// (Rule 2 for fast recovery) removes the failure — demonstrating exactly
/// why the paper introduces the rule.
#[test]
fn rule2_regression_shared_producer() {
    use troy_dfg::{Dfg, OpKind};
    let build = |with_rule2: bool| {
        let mut g = Dfg::new("alias");
        let src = g.add_op_with(OpKind::Mul, "src", 2);
        let a = g.add_op_with(OpKind::Mul, "a", 2); // operand a = src
        let b = g.add_op_with(OpKind::Mul, "b", 2); // operand a = src
        g.add_edge(src, a).unwrap();
        g.add_edge(src, b).unwrap();
        let mut builder = SynthesisProblem::builder(g, Catalog::paper8())
            .mode(Mode::DetectionRecovery)
            .detection_latency(3)
            .recovery_latency(2);
        if with_rule2 {
            builder = builder.related_pair(a, b);
        }
        builder.build().expect("valid")
    };

    // The attack: trigger on src's output value, infect victim `a`'s NC
    // vendor. Try every seed-design combination deterministically and
    // check whether recovery can ever stay corrupt.
    let heals_always = |p: &SynthesisProblem| -> bool {
        let s = ExactSolver::new()
            .synthesize(p, &SolveOptions::quick())
            .expect("feasible");
        let dfg = p.dfg();
        let victim = troy_dfg::NodeId::new(1);
        for seed in 0..20u64 {
            let iv = InputVector::from_seed(dfg, seed);
            let golden_all = golden_eval(dfg, &iv);
            let operand = golden_all[0]; // src output feeds both a and b
            let vendor = s
                .implementation
                .assignment(victim, Role::Nc)
                .unwrap()
                .vendor;
            let mut lib = CoreLibrary::new();
            lib.infect(
                License {
                    vendor,
                    ip_type: dfg.kind(victim).ip_type(),
                },
                Trojan {
                    trigger: Trigger::on_operand_a(operand),
                    payload: Payload::XorMask(0xDEAD),
                },
            );
            let mut ctrl = PhaseController::new(p, &s.implementation, &lib);
            let report = ctrl.run(&iv);
            if report.mismatch && !report.delivered_correct() {
                return false;
            }
        }
        true
    };

    // With Rule 2 the design is immune to the aliased re-fire.
    assert!(heals_always(&build(true)), "rule 2 must make recovery safe");
    // Without Rule 2 immunity depends on solver luck: the recovery copy of
    // `b` may or may not land on the infected vendor. We don't assert
    // failure (that would couple the test to solver internals), but we do
    // assert the rule-2 design never fails, which is the guarantee the
    // paper claims.
}
