//! The run-time phase controller: detection (NC ∥ RC + compare) and, on a
//! mismatch, the recovery re-execution with the re-bound schedule.
//!
//! This is the dynamic counterpart of the paper's Figures 1 and 4: the
//! detection phase catches an activated Trojan by output comparison, and
//! the recovery phase deactivates it by moving every operation to vendors
//! unused by that operation during detection.

use troy_dfg::NodeId;
use troyhls::{Implementation, Mode, Role, SynthesisProblem};

use crate::datapath::{CoreLibrary, Datapath};
use crate::semantics::{golden_eval, sink_outputs, InputVector};

/// Everything observed during one mission step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Trojan-free reference sink outputs.
    pub golden: Vec<u64>,
    /// NC sink outputs.
    pub nc: Vec<u64>,
    /// RC sink outputs.
    pub rc: Vec<u64>,
    /// `nc != rc` — the monitor flagged a Trojan.
    pub mismatch: bool,
    /// Sink outputs of the recovery re-execution (only when a mismatch
    /// fired and the design has a recovery schedule).
    pub recovery: Option<Vec<u64>>,
}

impl RunReport {
    /// Whether some computed output deviated from golden at all.
    #[must_use]
    pub fn corrupted(&self) -> bool {
        self.nc != self.golden || self.rc != self.golden
    }

    /// Whether the mission step ultimately delivered correct outputs:
    /// clean detection delivers NC; a detected Trojan delivers the
    /// recovery outputs.
    #[must_use]
    pub fn delivered_correct(&self) -> bool {
        match (&self.mismatch, &self.recovery) {
            (false, _) => self.nc == self.golden,
            (true, Some(r)) => *r == self.golden,
            (true, None) => false,
        }
    }
}

/// Drives a synthesized design through detection and recovery.
///
/// # Examples
///
/// ```no_run
/// use troy_dfg::benchmarks;
/// use troy_sim::{CoreLibrary, InputVector, PhaseController};
/// use troyhls::{Catalog, ExactSolver, Mode, SolveOptions, SynthesisProblem, Synthesizer};
///
/// let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionRecovery)
///     .detection_latency(4)
///     .recovery_latency(3)
///     .build()?;
/// let design = ExactSolver::new().synthesize(&p, &SolveOptions::quick())?;
/// let library = CoreLibrary::new();
/// let mut ctrl = PhaseController::new(&p, &design.implementation, &library);
/// let report = ctrl.run(&InputVector::from_seed(p.dfg(), 1));
/// assert!(!report.mismatch);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PhaseController<'a> {
    problem: &'a SynthesisProblem,
    datapath: Datapath<'a>,
}

impl<'a> PhaseController<'a> {
    /// Builds the controller for one design and core library.
    #[must_use]
    pub fn new(
        problem: &'a SynthesisProblem,
        implementation: &'a Implementation,
        library: &'a CoreLibrary,
    ) -> Self {
        PhaseController {
            problem,
            datapath: Datapath::new(problem, implementation, library),
        }
    }

    /// Clears accumulated Trojan state (power cycle).
    pub fn reset(&mut self) {
        self.datapath.reset_trojan_state();
    }

    /// One mission step on `inputs`: detection phase, then recovery if the
    /// monitor fires.
    pub fn run(&mut self, inputs: &InputVector) -> RunReport {
        let dfg = self.problem.dfg();
        let golden_all = golden_eval(dfg, inputs);
        let golden = sink_outputs(dfg, &golden_all);

        let nc = sink_outputs(dfg, &self.datapath.execute(Role::Nc, inputs).outputs);
        let rc = sink_outputs(dfg, &self.datapath.execute(Role::Rc, inputs).outputs);
        let mismatch = nc != rc;

        let recovery = (mismatch && self.problem.mode() == Mode::DetectionRecovery)
            .then(|| sink_outputs(dfg, &self.datapath.execute(Role::Recovery, inputs).outputs));

        RunReport {
            golden,
            nc,
            rc,
            mismatch,
            recovery,
        }
    }

    /// Convenience for tests: the operand value actually fed to `op`'s
    /// first input slot in this problem (after producers), to craft
    /// guaranteed-firing triggers.
    #[must_use]
    pub fn first_operand_of(&self, op: NodeId, inputs: &InputVector) -> u64 {
        let dfg = self.problem.dfg();
        let all = golden_eval(dfg, inputs);
        match dfg.preds(op) {
            [] => inputs.values(op).first().copied().unwrap_or(0),
            [p, ..] => all[p.index()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojan::{Payload, Trigger, Trojan};
    use troy_dfg::{benchmarks, IpTypeId};
    use troyhls::{Catalog, ExactSolver, License, SolveOptions, Synthesizer};

    fn design(mode: Mode) -> (SynthesisProblem, Implementation) {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(mode)
            .detection_latency(4)
            .recovery_latency(3)
            .area_limit(22_000)
            .build()
            .unwrap();
        let s = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        (p, s.implementation)
    }

    #[test]
    fn clean_run_has_no_mismatch_and_correct_outputs() {
        let (p, imp) = design(Mode::DetectionRecovery);
        let lib = CoreLibrary::new();
        let mut ctrl = PhaseController::new(&p, &imp, &lib);
        let report = ctrl.run(&InputVector::from_seed(p.dfg(), 3));
        assert!(!report.mismatch);
        assert!(!report.corrupted());
        assert!(report.recovery.is_none());
        assert!(report.delivered_correct());
    }

    /// Figure 1 dynamically: a Trojan that fires in NC is caught by the
    /// NC/RC comparison.
    #[test]
    fn activated_trojan_is_detected() {
        let (p, imp) = design(Mode::DetectionRecovery);
        let iv = InputVector::from_seed(p.dfg(), 3);
        let victim = troy_dfg::NodeId::new(2); // t3 = b*c (feeds the sink)
        let vendor = imp.assignment(victim, Role::Nc).unwrap().vendor;
        let mut lib = CoreLibrary::new();
        let trigger_value = iv.values(victim)[0];
        lib.infect(
            License {
                vendor,
                ip_type: IpTypeId::MULTIPLIER,
            },
            Trojan {
                trigger: Trigger::on_operand_a(trigger_value),
                payload: Payload::XorMask(0xA5A5),
            },
        );
        let mut ctrl = PhaseController::new(&p, &imp, &lib);
        let report = ctrl.run(&iv);
        assert!(report.corrupted());
        assert!(report.mismatch, "detection must fire");
    }

    /// Figure 4 dynamically: recovery re-binding moves the victim op to a
    /// third vendor, the trigger no longer reaches the infected core, and
    /// the delivered output is correct.
    #[test]
    fn recovery_deactivates_the_trojan() {
        let (p, imp) = design(Mode::DetectionRecovery);
        let iv = InputVector::from_seed(p.dfg(), 3);
        let victim = troy_dfg::NodeId::new(2);
        let det_vendor = imp.assignment(victim, Role::Nc).unwrap().vendor;
        let rec_vendor = imp.assignment(victim, Role::Recovery).unwrap().vendor;
        assert_ne!(det_vendor, rec_vendor, "rule 1 for recovery");
        let mut lib = CoreLibrary::new();
        lib.infect(
            License {
                vendor: det_vendor,
                ip_type: IpTypeId::MULTIPLIER,
            },
            Trojan {
                trigger: Trigger::on_operand_a(iv.values(victim)[0]),
                payload: Payload::XorMask(0xA5A5),
            },
        );
        let mut ctrl = PhaseController::new(&p, &imp, &lib);
        let report = ctrl.run(&iv);
        assert!(report.mismatch);
        let rec = report.recovery.as_ref().expect("recovery ran");
        assert_eq!(*rec, report.golden, "recovery output is correct");
        assert!(report.delivered_correct());
    }

    /// The Figure 3 contrast: a latched payload survives re-binding *of
    /// other ops* only if the recovery run still exercises the infected
    /// instance with the latch set. Since recovery avoids the infected
    /// vendor for the victim op, even a latched Trojan on that product can
    /// only corrupt recovery if recovery uses that product elsewhere; with
    /// the latch set, any such reuse stays corrupted.
    #[test]
    fn latched_payload_can_defeat_recovery_when_product_is_reused() {
        let (p, imp) = design(Mode::DetectionRecovery);
        let iv = InputVector::from_seed(p.dfg(), 3);
        let victim = troy_dfg::NodeId::new(2);
        let det_vendor = imp.assignment(victim, Role::Nc).unwrap().vendor;
        let license = License {
            vendor: det_vendor,
            ip_type: IpTypeId::MULTIPLIER,
        };
        // Does the recovery phase bind any mul op to the same product?
        let reused_in_recovery = p.dfg().node_ids().any(|op| {
            p.dfg().kind(op).ip_type() == IpTypeId::MULTIPLIER
                && imp.assignment(op, Role::Recovery).map(|a| a.vendor) == Some(det_vendor)
        });
        let mut lib = CoreLibrary::new();
        lib.infect(
            license,
            Trojan {
                trigger: Trigger::on_operand_a(iv.values(victim)[0]),
                payload: Payload::Latched(0xFFFF_0000),
            },
        );
        let mut ctrl = PhaseController::new(&p, &imp, &lib);
        let report = ctrl.run(&iv);
        assert!(report.mismatch);
        if reused_in_recovery {
            // The latch may poison recovery — exactly why the paper limits
            // its scope to memory-less payloads.
            let _ = report.delivered_correct();
        } else {
            assert!(report.delivered_correct());
        }
    }

    #[test]
    fn detection_only_reports_mismatch_without_recovery() {
        let (p, imp) = design(Mode::DetectionOnly);
        let iv = InputVector::from_seed(p.dfg(), 3);
        let victim = troy_dfg::NodeId::new(0);
        let vendor = imp.assignment(victim, Role::Nc).unwrap().vendor;
        let mut lib = CoreLibrary::new();
        lib.infect(
            License {
                vendor,
                ip_type: IpTypeId::MULTIPLIER,
            },
            Trojan {
                trigger: Trigger::on_operand_a(iv.values(victim)[0]),
                payload: Payload::AddOffset(1),
            },
        );
        let mut ctrl = PhaseController::new(&p, &imp, &lib);
        let report = ctrl.run(&iv);
        assert!(report.mismatch);
        assert!(report.recovery.is_none());
        assert!(!report.delivered_correct(), "no recovery: outputs lost");
    }

    #[test]
    fn first_operand_helper_matches_dataflow() {
        let (p, imp) = design(Mode::DetectionRecovery);
        let lib = CoreLibrary::new();
        let ctrl = PhaseController::new(&p, &imp, &lib);
        let iv = InputVector::from_seed(p.dfg(), 9);
        // Leaf op: first operand is its first primary input.
        let leaf = troy_dfg::NodeId::new(0);
        assert_eq!(ctrl.first_operand_of(leaf, &iv), iv.values(leaf)[0]);
        // Interior op (t4 = t1 + t2): first operand is t1's output.
        let interior = troy_dfg::NodeId::new(3);
        let golden = golden_eval(p.dfg(), &iv);
        assert_eq!(ctrl.first_operand_of(interior, &iv), golden[0]);
    }
}
