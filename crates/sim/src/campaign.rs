//! Monte-Carlo validation campaigns: inject random Trojans into random
//! vendor products, drive random inputs, and measure how often the
//! synthesized design detects activations and recovers correct outputs.
//!
//! This quantifies, in simulation, the guarantees the design rules buy:
//! with a single infected product and memory-less payloads, an activation
//! that corrupts outputs is caught by the NC/RC comparison, and the
//! recovery re-binding delivers correct results.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use troyhls::{Implementation, License, Mode, SynthesisProblem};

use crate::controller::PhaseController;
use crate::datapath::CoreLibrary;
use crate::semantics::InputVector;
use crate::trojan::{rarity_mask, Payload, Trigger, Trojan};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Mission steps to simulate.
    pub runs: usize,
    /// RNG seed (campaigns are fully deterministic given the seed).
    pub seed: u64,
    /// Bits of trigger selectivity: the combinational trigger matches a
    /// random pattern on the low `rarity_bits` bits of the first operand.
    /// Lower = fires more often (more activations to observe).
    pub rarity_bits: u32,
    /// Use sequential (counter) triggers instead of combinational ones.
    pub sequential: bool,
    /// Probability (percent) that a given step's inputs are crafted to hit
    /// the trigger on some operation, rather than fully random.
    pub targeted_percent: u8,
    /// Number of distinct products infected per step with the *same*
    /// Trojan (a coordinated supply-chain attacker). The paper assumes 1
    /// and argues multiple identically-infected vendors are extremely
    /// rare; raising this quantifies what that assumption buys — with two
    /// infected products an operation's NC and RC copies can both corrupt
    /// identically and slip past the monitor.
    pub infected_products: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: 200,
            seed: 0x00C0_FFEE,
            rarity_bits: 6,
            sequential: false,
            targeted_percent: 50,
            infected_products: 1,
        }
    }
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignResult {
    /// Mission steps simulated.
    pub runs: usize,
    /// Steps where some computed output deviated from golden
    /// (an activated, output-corrupting Trojan).
    pub corrupted: usize,
    /// Corrupted steps flagged by the NC/RC monitor.
    pub detected: usize,
    /// Corrupted steps that escaped the monitor (NC and RC corrupted
    /// identically — the collusion/coincidence case the rules minimize).
    pub missed: usize,
    /// Steps where the monitor fired without output corruption at the
    /// sinks (internal corruption caught before reaching an output —
    /// still a true positive).
    pub internal_detections: usize,
    /// Detected steps whose recovery outputs matched golden.
    pub recovered: usize,
    /// Detected steps whose recovery outputs were still wrong.
    pub recovery_failed: usize,
}

impl CampaignResult {
    /// Fraction of corrupting activations the monitor caught.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.corrupted == 0 {
            1.0
        } else {
            self.detected as f64 / self.corrupted as f64
        }
    }

    /// Fraction of detections the recovery phase fixed.
    #[must_use]
    pub fn recovery_rate(&self) -> f64 {
        let total = self.recovered + self.recovery_failed;
        if total == 0 {
            1.0
        } else {
            self.recovered as f64 / total as f64
        }
    }
}

/// Runs a Trojan-injection campaign against a synthesized design.
///
/// Each step infects one random product *used by the design*, with a
/// random trigger pattern and payload, executes one mission step and
/// tallies the outcome. Trojan state is reset between steps.
///
/// # Examples
///
/// ```no_run
/// use troy_dfg::benchmarks;
/// use troy_sim::{run_campaign, CampaignConfig};
/// use troyhls::{Catalog, ExactSolver, Mode, SolveOptions, SynthesisProblem, Synthesizer};
///
/// let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionRecovery)
///     .detection_latency(4)
///     .recovery_latency(3)
///     .build()?;
/// let d = ExactSolver::new().synthesize(&p, &SolveOptions::quick())?;
/// let result = run_campaign(&p, &d.implementation, &CampaignConfig::default());
/// assert!(result.detection_rate() > 0.95);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn run_campaign(
    problem: &SynthesisProblem,
    implementation: &Implementation,
    config: &CampaignConfig,
) -> CampaignResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dfg = problem.dfg();
    let licenses: Vec<License> = implementation.licenses_used(problem).into_iter().collect();
    let mut result = CampaignResult {
        runs: config.runs,
        ..CampaignResult::default()
    };

    for _ in 0..config.runs {
        let license = licenses[rng.random_range(0..licenses.len())];
        let mask = rarity_mask(config.rarity_bits);
        let pattern = rng.random::<u64>() & mask;
        let mut inputs = InputVector::from_seed(dfg, rng.random());

        // Optionally craft one primary input so the trigger provably hits
        // an operation that the detection phase actually binds to the
        // infected product. The crafted value lands on operand `a` for
        // leaf ops and on operand `b` when a producer fills slot `a`.
        let mut watch_b = false;
        if rng.random_range(0..100) < u64::from(config.targeted_percent) {
            let victim = dfg.node_ids().find(|&o| {
                dfg.kind(o).ip_type() == license.ip_type
                    && dfg.node(o).primary_inputs() > 0
                    && [troyhls::Role::Nc, troyhls::Role::Rc].iter().any(|&r| {
                        implementation.assignment(o, r).map(|a| a.vendor) == Some(license.vendor)
                    })
            });
            if let Some(op) = victim {
                let crafted = (rng.random::<u64>() & !mask) | pattern;
                inputs.set(op, 0, crafted);
                watch_b = !dfg.preds(op).is_empty();
            }
        }

        let trigger = if config.sequential {
            Trigger::Sequential {
                mask,
                pattern,
                threshold: rng.random_range(1..4),
            }
        } else if watch_b {
            Trigger::Combinational {
                mask_a: 0,
                pattern_a: 0,
                mask_b: mask,
                pattern_b: pattern,
            }
        } else {
            Trigger::Combinational {
                mask_a: mask,
                pattern_a: pattern,
                mask_b: 0,
                pattern_b: 0,
            }
        };
        let payload = if rng.random_bool(0.5) {
            Payload::XorMask(rng.random::<u64>() | 1)
        } else {
            Payload::AddOffset(rng.random_range(1..u64::MAX))
        };
        let mut library = CoreLibrary::new();
        library.infect(license, Trojan { trigger, payload });
        // A coordinated attacker plants the same Trojan in further
        // products of the same type (so both NC and RC can be hit).
        let mut extra = config.infected_products.saturating_sub(1);
        let mut probe = 0usize;
        while extra > 0 && probe < licenses.len() {
            let cand = licenses[(probe + rng.random_range(0..licenses.len())) % licenses.len()];
            probe += 1;
            if cand != license && cand.ip_type == license.ip_type && library.trojan(cand).is_none()
            {
                library.infect(cand, Trojan { trigger, payload });
                extra -= 1;
            }
        }

        let mut ctrl = PhaseController::new(problem, implementation, &library);
        let report = ctrl.run(&inputs);

        if report.corrupted() {
            result.corrupted += 1;
            if report.mismatch {
                result.detected += 1;
            } else {
                result.missed += 1;
            }
        } else if report.mismatch {
            result.internal_detections += 1;
        }
        if report.mismatch && problem.mode() == Mode::DetectionRecovery {
            if report.delivered_correct() {
                result.recovered += 1;
            } else {
                result.recovery_failed += 1;
            }
        }
    }
    result
}

/// Measures how often a *naive re-execution* (same binding re-run, the
/// baseline the paper argues against in Section 3.2) fixes a detected
/// Trojan, versus the rule-based re-binding. With a memory-less trigger and
/// identical inputs, re-running the same binding re-activates the Trojan
/// every time.
#[must_use]
pub fn naive_reexecution_recovery_rate(
    problem: &SynthesisProblem,
    implementation: &Implementation,
    config: &CampaignConfig,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dfg = problem.dfg();
    let licenses: Vec<License> = implementation.licenses_used(problem).into_iter().collect();
    let mut detected = 0usize;
    let mut fixed = 0usize;

    for _ in 0..config.runs {
        let license = licenses[rng.random_range(0..licenses.len())];
        // Shares `rarity_mask` with `run_campaign`: the two paths used to
        // disagree at `rarity_bits >= 64` (this one clamped to 63 and got a
        // 2^63-1 mask instead of the full word).
        let mask = rarity_mask(config.rarity_bits);
        let pattern = rng.random::<u64>() & mask;
        let mut library = CoreLibrary::new();
        library.infect(
            license,
            Trojan {
                trigger: Trigger::Combinational {
                    mask_a: mask,
                    pattern_a: pattern,
                    mask_b: 0,
                    pattern_b: 0,
                },
                payload: Payload::XorMask(rng.random::<u64>() | 1),
            },
        );
        let mut inputs = InputVector::from_seed(dfg, rng.random());
        if let Some(op) = dfg
            .node_ids()
            .find(|&o| dfg.kind(o).ip_type() == license.ip_type && dfg.node(o).primary_inputs() > 0)
        {
            inputs.set(op, 0, (rng.random::<u64>() & !mask) | pattern);
        }

        let mut ctrl = PhaseController::new(problem, implementation, &library);
        let report = ctrl.run(&inputs);
        if !report.mismatch {
            continue;
        }
        detected += 1;
        // Naive recovery: re-run the detection phase on the same binding
        // and inputs. It only counts as fixed if the re-run is clean (no
        // mismatch) *and* delivers the correct output — with a memory-less
        // trigger and identical inputs the Trojan simply re-activates.
        let rerun = ctrl.run(&inputs);
        if !rerun.mismatch && rerun.nc == rerun.golden {
            fixed += 1;
        }
    }
    if detected == 0 {
        1.0
    } else {
        fixed as f64 / detected as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::benchmarks;
    use troyhls::{Catalog, ExactSolver, SolveOptions, Synthesizer};

    fn design(mode: Mode) -> (SynthesisProblem, Implementation) {
        let p = SynthesisProblem::builder(benchmarks::diff2(), Catalog::paper8())
            .mode(mode)
            .detection_latency(5)
            .recovery_latency(5)
            .build()
            .unwrap();
        let s = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        (p, s.implementation)
    }

    #[test]
    fn campaign_is_deterministic() {
        let (p, imp) = design(Mode::DetectionRecovery);
        let cfg = CampaignConfig {
            runs: 40,
            ..CampaignConfig::default()
        };
        assert_eq!(run_campaign(&p, &imp, &cfg), run_campaign(&p, &imp, &cfg));
    }

    #[test]
    fn campaign_observes_activations_and_detects_them() {
        let (p, imp) = design(Mode::DetectionRecovery);
        let cfg = CampaignConfig {
            runs: 150,
            rarity_bits: 4,
            targeted_percent: 80,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&p, &imp, &cfg);
        assert!(r.corrupted > 40, "campaign must exercise Trojans: {r:?}");
        // Single infected product + diverse binding: a corrupting
        // activation is missed only when NC and RC are corrupted
        // *identically* through different ops — possible here because the
        // deliberately common (4-bit) trigger violates the paper's
        // rare-trigger assumption, but it must stay a corner case.
        assert!(r.detection_rate() >= 0.9, "{r:?}");
        assert!(r.missed * 10 <= r.corrupted, "{r:?}");
    }

    #[test]
    fn recovery_rate_is_high_for_memoryless_trojans() {
        let (p, imp) = design(Mode::DetectionRecovery);
        // rarity 4 keeps triggers deliberately common so the campaign sees
        // plenty of activations; a few recovery runs then re-hit the
        // infected product on *other* ops by chance, which is exactly the
        // rare-trigger assumption the paper states. The rate climbs with
        // rarity.
        let common = run_campaign(
            &p,
            &imp,
            &CampaignConfig {
                runs: 150,
                rarity_bits: 4,
                targeted_percent: 80,
                ..CampaignConfig::default()
            },
        );
        assert!(common.recovered > 0);
        assert!(
            common.recovery_rate() > 0.8,
            "rule-based re-binding should mostly recover: {common:?}"
        );
        let rare = run_campaign(
            &p,
            &imp,
            &CampaignConfig {
                runs: 150,
                rarity_bits: 12,
                targeted_percent: 100,
                ..CampaignConfig::default()
            },
        );
        assert!(
            rare.recovery_rate() >= common.recovery_rate(),
            "rarer triggers recover at least as often: {rare:?} vs {common:?}"
        );
        assert!(rare.recovery_rate() > 0.99, "{rare:?}");
    }

    #[test]
    fn naive_reexecution_fails_where_rebinding_succeeds() {
        let (p, imp) = design(Mode::DetectionRecovery);
        let cfg = CampaignConfig {
            runs: 100,
            rarity_bits: 4,
            targeted_percent: 90,
            ..CampaignConfig::default()
        };
        let naive = naive_reexecution_recovery_rate(&p, &imp, &cfg);
        let ruled = run_campaign(&p, &imp, &cfg).recovery_rate();
        assert!(
            naive < ruled,
            "naive re-execution ({naive}) must underperform re-binding ({ruled})"
        );
        // Same trigger condition, same inputs, same binding: the Trojan
        // re-activates; naive recovery fixes nothing.
        assert!(naive < 0.05, "naive rate unexpectedly high: {naive}");
    }

    #[test]
    fn sequential_campaign_runs() {
        let (p, imp) = design(Mode::DetectionRecovery);
        let cfg = CampaignConfig {
            runs: 60,
            sequential: true,
            rarity_bits: 3,
            targeted_percent: 90,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&p, &imp, &cfg);
        assert_eq!(r.runs, 60);
        assert!(r.detection_rate() >= 0.9, "{r:?}");
    }

    #[test]
    fn coordinated_multi_product_attack_degrades_detection() {
        // With two identically-infected products of one type, the same op's
        // NC and RC copies can both be corrupted identically — missed
        // detections become possible, quantifying the paper's single-
        // infection assumption.
        let (p, imp) = design(Mode::DetectionRecovery);
        let single = run_campaign(
            &p,
            &imp,
            &CampaignConfig {
                runs: 200,
                rarity_bits: 4,
                targeted_percent: 90,
                infected_products: 1,
                ..CampaignConfig::default()
            },
        );
        let double = run_campaign(
            &p,
            &imp,
            &CampaignConfig {
                runs: 200,
                rarity_bits: 4,
                targeted_percent: 90,
                infected_products: 2,
                ..CampaignConfig::default()
            },
        );
        assert!(double.corrupted > 0);
        assert!(
            double.detection_rate() <= single.detection_rate(),
            "single {single:?} vs double {double:?}"
        );
    }

    #[test]
    fn rates_default_to_one_when_nothing_happens() {
        let r = CampaignResult::default();
        assert_eq!(r.detection_rate(), 1.0);
        assert_eq!(r.recovery_rate(), 1.0);
    }
}
