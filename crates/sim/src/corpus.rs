//! Seeded, stratified Trojan-corpus generation for campaign grids.
//!
//! A corpus is a deterministic population of [`TrojanSpec`]s stratified by
//! trigger rarity, payload kind (Section 3.1 taxonomy plus the Fig. 3
//! latched contrast and a clean negative control), infected-vendor
//! coalition size and trigger shape (combinational vs sequential). Each
//! spec is *abstract* — [`plant`] instantiates it against one synthesized
//! design, infecting products the design actually licenses so every cell
//! of a campaign grid demonstrably exercises the threat model.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use troy_dfg::NodeId;
use troyhls::{Implementation, License, Role, SynthesisProblem};

use crate::datapath::CoreLibrary;
use crate::trojan::{rarity_mask, Payload, Trigger, Trojan};

/// Derives a child seed from a base seed and a salt (SplitMix64 finalizer).
///
/// The campaign layers use this everywhere a deterministic sub-stream is
/// needed, so identical `(seed, identity)` pairs replay bit-for-bit
/// regardless of execution order or parallelism.
#[must_use]
pub fn derive_seed(base: u64, salt: u64) -> u64 {
    let mut z = base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Payload stratum of a corpus entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadKind {
    /// No Trojan at all — the negative control pinning the false-alarm
    /// rate at zero.
    Clean,
    /// Memory-less XOR payload ([`Payload::XorMask`]).
    XorMask,
    /// Memory-less additive payload ([`Payload::AddOffset`]).
    AddOffset,
    /// Memoryful latched payload ([`Payload::Latched`], Fig. 3) — outside
    /// the paper's recovery scope, included to measure *why*.
    Latched,
}

impl PayloadKind {
    /// Whether this payload is memory-less (the paper's recovery scope).
    #[must_use]
    pub fn is_memoryless(self) -> bool {
        matches!(self, PayloadKind::XorMask | PayloadKind::AddOffset)
    }

    /// Short stable tag used in cell identifiers and JSON rows.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            PayloadKind::Clean => "clean",
            PayloadKind::XorMask => "xor",
            PayloadKind::AddOffset => "offset",
            PayloadKind::Latched => "latched",
        }
    }
}

/// One stratified corpus entry: everything needed to instantiate the same
/// Trojan against any design, deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrojanSpec {
    /// Position in the generated corpus (stable across runs).
    pub index: usize,
    /// Trigger selectivity: the trigger watches the low `rarity_bits`
    /// bits of an operand (see [`rarity_mask`]).
    pub rarity_bits: u32,
    /// Payload stratum.
    pub kind: PayloadKind,
    /// Number of distinct same-type products infected with the identical
    /// Trojan (the coordinated supply-chain coalition; the paper assumes 1).
    pub coalition: usize,
    /// Sequential (counter) trigger instead of a combinational one.
    pub sequential: bool,
    /// Seed driving every random choice made when planting this entry.
    pub entry_seed: u64,
}

impl TrojanSpec {
    /// Compact stratum label, e.g. `r12-xor-c1` / `r4-latched-c2-seq` /
    /// `clean`.
    #[must_use]
    pub fn stratum(&self) -> String {
        if self.kind == PayloadKind::Clean {
            return "clean".to_owned();
        }
        let seq = if self.sequential { "-seq" } else { "" };
        format!(
            "r{}-{}-c{}{seq}",
            self.rarity_bits,
            self.kind.tag(),
            self.coalition
        )
    }
}

/// Corpus strata: the cartesian product of these dimensions (clean entries
/// collapse the rarity/coalition/trigger dimensions, which do not apply).
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Trigger rarity levels (bits of selectivity) to cover.
    pub rarity_levels: Vec<u32>,
    /// Payload kinds to cover.
    pub payload_kinds: Vec<PayloadKind>,
    /// Coalition sizes to cover.
    pub coalitions: Vec<usize>,
    /// Trigger shapes to cover (`false` = combinational, `true` =
    /// sequential).
    pub sequential_triggers: Vec<bool>,
    /// Entries generated per stratum.
    pub per_stratum: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            rarity_levels: vec![0, 4, 12],
            payload_kinds: vec![
                PayloadKind::XorMask,
                PayloadKind::AddOffset,
                PayloadKind::Latched,
                PayloadKind::Clean,
            ],
            coalitions: vec![1, 2],
            sequential_triggers: vec![false, true],
            per_stratum: 1,
        }
    }
}

/// Generates the stratified corpus for `config`, deterministically from
/// `seed`. Entry seeds depend on the stratum coordinates (not the entry's
/// position), so narrowing one dimension never reshuffles the others.
#[must_use]
pub fn generate_corpus(config: &CorpusConfig, seed: u64) -> Vec<TrojanSpec> {
    let mut specs = Vec::new();
    for &rarity_bits in &config.rarity_levels {
        for &kind in &config.payload_kinds {
            if kind == PayloadKind::Clean {
                continue; // handled once below: rarity/coalition don't apply
            }
            for &coalition in &config.coalitions {
                for &sequential in &config.sequential_triggers {
                    for k in 0..config.per_stratum {
                        let salt = (u64::from(rarity_bits) << 40)
                            | ((kind.tag().len() as u64) << 32)
                            | ((coalition as u64) << 16)
                            | (u64::from(sequential) << 8)
                            | k as u64;
                        specs.push(TrojanSpec {
                            index: specs.len(),
                            rarity_bits,
                            kind,
                            coalition,
                            sequential,
                            entry_seed: derive_seed(
                                seed,
                                derive_seed(salt, kind.tag().as_bytes()[0].into()),
                            ),
                        });
                    }
                }
            }
        }
    }
    if config.payload_kinds.contains(&PayloadKind::Clean) {
        for k in 0..config.per_stratum {
            specs.push(TrojanSpec {
                index: specs.len(),
                rarity_bits: 64,
                kind: PayloadKind::Clean,
                coalition: 0,
                sequential: false,
                entry_seed: derive_seed(seed, 0xC1EA_u64 << 16 | k as u64),
            });
        }
    }
    specs
}

/// A [`TrojanSpec`] instantiated against one synthesized design: the
/// infected core library plus everything a campaign needs to *target* the
/// trigger (craft inputs that provably reach the infected product).
#[derive(Debug, Clone)]
pub struct PlantedTrojan {
    /// The spec this was planted from.
    pub spec: TrojanSpec,
    /// Core library with the coalition's products infected (empty for
    /// clean entries).
    pub library: CoreLibrary,
    /// Every infected product, primary first.
    pub infected: Vec<License>,
    /// Preferred crafting target: a DFG op of the infected type whose NC
    /// or RC copy is bound to the primary infected vendor.
    pub victim: Option<NodeId>,
    /// Whether the trigger watches operand `b` (set when the victim's
    /// slot-`a` operand is produced by another op, so a crafted primary
    /// input lands on `b`).
    pub watch_b: bool,
    /// Trigger operand mask (`rarity_mask(spec.rarity_bits)`).
    pub mask: u64,
    /// Required operand bits under `mask`.
    pub pattern: u64,
}

impl PlantedTrojan {
    /// The Trojan embedded in the primary product, if any.
    #[must_use]
    pub fn trojan(&self) -> Option<Trojan> {
        self.infected.first().and_then(|&l| self.library.trojan(l))
    }
}

/// Instantiates `spec` against a synthesized design.
///
/// The primary infected product is drawn (seeded by `spec.entry_seed`)
/// from the licenses the implementation actually uses; coalition members
/// are further products of the *same IP type*, so an operation's NC and RC
/// copies can both be hit. Clean specs yield an empty library.
#[must_use]
pub fn plant(
    spec: &TrojanSpec,
    problem: &SynthesisProblem,
    implementation: &Implementation,
) -> PlantedTrojan {
    let mut planted = PlantedTrojan {
        spec: *spec,
        library: CoreLibrary::new(),
        infected: Vec::new(),
        victim: None,
        watch_b: false,
        mask: 0,
        pattern: 0,
    };
    if spec.kind == PayloadKind::Clean {
        return planted;
    }

    let mut rng = StdRng::seed_from_u64(spec.entry_seed);
    let licenses: Vec<License> = implementation.licenses_used(problem).into_iter().collect();
    let primary = licenses[rng.random_range(0..licenses.len())];
    planted.mask = rarity_mask(spec.rarity_bits);
    planted.pattern = rng.random::<u64>() & planted.mask;

    // Crafting target: an op of the infected type, with a primary input to
    // override, whose detection-phase copies touch the infected vendor.
    // Leaf ops are preferred — their crafted value *is* operand `a`, which
    // is the only operand sequential triggers watch.
    let dfg = problem.dfg();
    let is_candidate = |o: NodeId| {
        dfg.kind(o).ip_type() == primary.ip_type
            && dfg.node(o).primary_inputs() > 0
            && [Role::Nc, Role::Rc]
                .iter()
                .any(|&r| implementation.assignment(o, r).map(|a| a.vendor) == Some(primary.vendor))
    };
    planted.victim = dfg
        .node_ids()
        .find(|&o| is_candidate(o) && dfg.preds(o).is_empty())
        .or_else(|| dfg.node_ids().find(|&o| is_candidate(o)));
    planted.watch_b = planted.victim.is_some_and(|v| !dfg.preds(v).is_empty());

    let trigger = if spec.sequential {
        Trigger::Sequential {
            mask: planted.mask,
            pattern: planted.pattern,
            threshold: rng.random_range(1..4),
        }
    } else if planted.watch_b {
        Trigger::Combinational {
            mask_a: 0,
            pattern_a: 0,
            mask_b: planted.mask,
            pattern_b: planted.pattern,
        }
    } else {
        Trigger::Combinational {
            mask_a: planted.mask,
            pattern_a: planted.pattern,
            mask_b: 0,
            pattern_b: 0,
        }
    };
    let payload = match spec.kind {
        PayloadKind::XorMask => Payload::XorMask(rng.random::<u64>() | 1),
        PayloadKind::AddOffset => Payload::AddOffset(rng.random_range(1..u64::MAX)),
        PayloadKind::Latched => Payload::Latched(rng.random::<u64>() | 1),
        PayloadKind::Clean => unreachable!("handled above"),
    };

    planted.library.infect(primary, Trojan { trigger, payload });
    planted.infected.push(primary);
    // Coalition members: further same-type products, deterministic order.
    let mut extra = spec.coalition.saturating_sub(1);
    for &cand in &licenses {
        if extra == 0 {
            break;
        }
        if cand != primary && cand.ip_type == primary.ip_type {
            planted.library.infect(cand, Trojan { trigger, payload });
            planted.infected.push(cand);
            extra -= 1;
        }
    }
    planted
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::benchmarks;
    use troyhls::{Catalog, ExactSolver, Mode, SolveOptions, Synthesizer};

    fn design() -> (SynthesisProblem, Implementation) {
        let p = SynthesisProblem::builder(benchmarks::diff2(), Catalog::paper8())
            .mode(Mode::DetectionRecovery)
            .detection_latency(5)
            .recovery_latency(5)
            .build()
            .unwrap();
        let s = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        (p, s.implementation)
    }

    #[test]
    fn corpus_covers_every_stratum_exactly_once() {
        let cfg = CorpusConfig::default();
        let specs = generate_corpus(&cfg, 7);
        // 3 rarity × 3 infected kinds × 2 coalitions × 2 trigger shapes
        // + 1 clean control.
        assert_eq!(specs.len(), 3 * 3 * 2 * 2 + 1);
        let mut strata: Vec<String> = specs.iter().map(TrojanSpec::stratum).collect();
        strata.sort();
        strata.dedup();
        assert_eq!(strata.len(), specs.len(), "strata are distinct");
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn corpus_is_seed_deterministic_and_seed_sensitive() {
        let cfg = CorpusConfig::default();
        assert_eq!(generate_corpus(&cfg, 1), generate_corpus(&cfg, 1));
        let a = generate_corpus(&cfg, 1);
        let b = generate_corpus(&cfg, 2);
        assert!(a.iter().zip(&b).any(|(x, y)| x.entry_seed != y.entry_seed));
    }

    #[test]
    fn planting_is_deterministic_and_respects_coalition_size() {
        let (p, imp) = design();
        let cfg = CorpusConfig::default();
        for spec in generate_corpus(&cfg, 42) {
            let a = plant(&spec, &p, &imp);
            let b = plant(&spec, &p, &imp);
            assert_eq!(a.infected, b.infected, "{spec:?}");
            assert_eq!(a.pattern, b.pattern, "{spec:?}");
            if spec.kind == PayloadKind::Clean {
                assert!(a.infected.is_empty());
                assert_eq!(a.library.infected_licenses().count(), 0);
            } else {
                assert!(!a.infected.is_empty());
                assert!(a.infected.len() <= spec.coalition);
                assert_eq!(a.library.infected_licenses().count(), a.infected.len());
                let ty = a.infected[0].ip_type;
                assert!(a.infected.iter().all(|l| l.ip_type == ty));
                assert_eq!(a.mask, rarity_mask(spec.rarity_bits));
                assert_eq!(a.pattern & !a.mask, 0);
                assert!(a.trojan().is_some());
            }
        }
    }

    #[test]
    fn planted_victim_is_bound_to_the_infected_vendor() {
        let (p, imp) = design();
        let spec = TrojanSpec {
            index: 0,
            rarity_bits: 8,
            kind: PayloadKind::XorMask,
            coalition: 1,
            sequential: false,
            entry_seed: 99,
        };
        let planted = plant(&spec, &p, &imp);
        let victim = planted.victim.expect("diff2 has candidate ops");
        let primary = planted.infected[0];
        assert_eq!(p.dfg().kind(victim).ip_type(), primary.ip_type);
        assert!([Role::Nc, Role::Rc]
            .iter()
            .any(|&r| imp.assignment(victim, r).map(|a| a.vendor) == Some(primary.vendor)));
    }

    #[test]
    fn derive_seed_separates_salts() {
        assert_eq!(derive_seed(5, 9), derive_seed(5, 9));
        assert_ne!(derive_seed(5, 9), derive_seed(5, 10));
        assert_ne!(derive_seed(5, 9), derive_seed(6, 9));
    }
}
