//! Cycle-accurate execution of a synthesized design on behavioral IP cores.
//!
//! The datapath instantiates, per `(vendor, type)` license, as many physical
//! core instances as the implementation's peak concurrency demands; every
//! instance of an infected product carries the same Trojan (with private
//! trigger state), matching the paper's assumption that "all instantiations
//! of the IP core will contain the same Trojan".

use std::collections::{BTreeMap, HashMap};

use troy_dfg::NodeId;
use troyhls::{Implementation, License, Role, SynthesisProblem};

use crate::semantics::{eval_op, operands, InputVector};
use crate::trojan::{Trojan, TrojanState};

/// The set of (possibly infected) IP-core products available to a design.
///
/// Function-equivalent across vendors by construction — diversity shows up
/// only through the embedded Trojans.
///
/// # Examples
///
/// ```
/// use troy_dfg::IpTypeId;
/// use troy_sim::{CoreLibrary, Payload, Trigger, Trojan};
/// use troyhls::{License, VendorId};
///
/// let mut lib = CoreLibrary::new();
/// lib.infect(
///     License { vendor: VendorId::new(1), ip_type: IpTypeId::MULTIPLIER },
///     Trojan { trigger: Trigger::on_operand_a(0xBAD), payload: Payload::XorMask(1) },
/// );
/// assert_eq!(lib.infected_licenses().count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoreLibrary {
    trojans: BTreeMap<License, Trojan>,
}

impl CoreLibrary {
    /// A library where every product is clean.
    #[must_use]
    pub fn new() -> Self {
        CoreLibrary::default()
    }

    /// Embeds a Trojan in one vendor's product (all its instances).
    pub fn infect(&mut self, license: License, trojan: Trojan) {
        self.trojans.insert(license, trojan);
    }

    /// Removes the Trojan from a product.
    pub fn disinfect(&mut self, license: License) {
        self.trojans.remove(&license);
    }

    /// The Trojan inside a product, if any.
    #[must_use]
    pub fn trojan(&self, license: License) -> Option<Trojan> {
        self.trojans.get(&license).copied()
    }

    /// All infected products.
    pub fn infected_licenses(&self) -> impl Iterator<Item = License> + '_ {
        self.trojans.keys().copied()
    }
}

/// Executes implementations cycle by cycle against a [`CoreLibrary`].
///
/// Holds per-instance Trojan state that persists across phases (and across
/// runs, until [`Datapath::reset_trojan_state`]), so sequential triggers
/// accumulate realistically over a mission.
#[derive(Debug)]
pub struct Datapath<'a> {
    problem: &'a SynthesisProblem,
    implementation: &'a Implementation,
    library: &'a CoreLibrary,
    /// Trojan state per (license, instance index).
    state: HashMap<(License, usize), TrojanState>,
}

/// All per-op outputs of one executed computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseOutputs {
    /// Output value of every op, indexed by node.
    pub outputs: Vec<u64>,
}

impl<'a> Datapath<'a> {
    /// Builds a datapath for one synthesized design.
    #[must_use]
    pub fn new(
        problem: &'a SynthesisProblem,
        implementation: &'a Implementation,
        library: &'a CoreLibrary,
    ) -> Self {
        Datapath {
            problem,
            implementation,
            library,
            state: HashMap::new(),
        }
    }

    /// Clears all sequential-trigger counters and latches (power cycle).
    pub fn reset_trojan_state(&mut self) {
        self.state.clear();
    }

    /// Executes one computation (`role`) on `inputs`, cycle-accurately.
    ///
    /// # Panics
    ///
    /// Panics if the implementation is missing assignments for `role` —
    /// validate the design first.
    pub fn execute(&mut self, role: Role, inputs: &InputVector) -> PhaseOutputs {
        let dfg = self.problem.dfg();
        // Copies of this role grouped by cycle.
        let mut by_cycle: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
        for op in dfg.node_ids() {
            let a = self
                .implementation
                .assignment(op, role)
                .expect("complete implementation");
            by_cycle.entry(a.cycle).or_default().push(op);
        }

        let mut outputs: Vec<Option<u64>> = vec![None; dfg.len()];
        for (_cycle, ops) in by_cycle {
            // Instance allocation within the cycle: ops on the same
            // (vendor, type) fill instance slots 0, 1, ... in node order.
            let mut slot: HashMap<License, usize> = HashMap::new();
            for op in ops {
                let a = self
                    .implementation
                    .assignment(op, role)
                    .expect("complete implementation");
                let license = License {
                    vendor: a.vendor,
                    ip_type: dfg.kind(op).ip_type(),
                };
                let m = {
                    let e = slot.entry(license).or_insert(0);
                    let m = *e;
                    *e += 1;
                    m
                };
                let (x, y) = operands(dfg, op, &outputs, inputs);
                let clean = eval_op(dfg.kind(op), x, y);
                let value = match self.library.trojan(license) {
                    Some(trojan) => {
                        let st = self.state.entry((license, m)).or_default();
                        trojan.apply(st, x, y, clean)
                    }
                    None => clean,
                };
                outputs[op.index()] = Some(value);
            }
        }
        PhaseOutputs {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("every op scheduled"))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::golden_eval;
    use crate::trojan::{Payload, Trigger};
    use troy_dfg::{benchmarks, IpTypeId};
    use troyhls::{Catalog, ExactSolver, Mode, SolveOptions, Synthesizer, VendorId};

    fn synthesized() -> (SynthesisProblem, Implementation) {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionRecovery)
            .detection_latency(4)
            .recovery_latency(3)
            .area_limit(22_000)
            .build()
            .unwrap();
        let s = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        (p, s.implementation)
    }

    #[test]
    fn clean_library_matches_golden_on_all_roles() {
        let (p, imp) = synthesized();
        let lib = CoreLibrary::new();
        let mut dp = Datapath::new(&p, &imp, &lib);
        let iv = InputVector::from_seed(p.dfg(), 5);
        let golden = golden_eval(p.dfg(), &iv);
        for role in [Role::Nc, Role::Rc, Role::Recovery] {
            assert_eq!(dp.execute(role, &iv).outputs, golden, "{role}");
        }
    }

    #[test]
    fn trojan_corrupts_only_computations_using_the_product() {
        let (p, imp) = synthesized();
        let iv = InputVector::from_seed(p.dfg(), 5);
        let golden = golden_eval(p.dfg(), &iv);

        // Find a multiplier operand value actually fed to some NC mul op so
        // the trigger demonstrably fires.
        let victim_op = troy_dfg::NodeId::new(0); // t1 (mul)
        let nc_vendor = imp.assignment(victim_op, Role::Nc).unwrap().vendor;
        let license = License {
            vendor: nc_vendor,
            ip_type: IpTypeId::MULTIPLIER,
        };
        let trigger_value = iv.values(victim_op)[0];

        let mut lib = CoreLibrary::new();
        lib.infect(
            license,
            Trojan {
                trigger: Trigger::on_operand_a(trigger_value),
                payload: Payload::XorMask(0xFFFF),
            },
        );
        let mut dp = Datapath::new(&p, &imp, &lib);
        let nc = dp.execute(Role::Nc, &iv);
        assert_ne!(nc.outputs, golden, "NC must be corrupted");
        // RC binds the same op to a different vendor (Rule 1), so the
        // trigger value flows through a clean core there. It may still hit
        // the infected product on a *different* op, but only if that op
        // sees the same operand value — astronomically unlikely with random
        // 64-bit inputs.
        let rc = dp.execute(Role::Rc, &iv);
        assert_eq!(rc.outputs, golden, "RC stays clean");
    }

    #[test]
    fn sequential_state_is_per_instance_and_resettable() {
        let (p, imp) = synthesized();
        let victim_op = troy_dfg::NodeId::new(0);
        let a = imp.assignment(victim_op, Role::Nc).unwrap();
        let license = License {
            vendor: a.vendor,
            ip_type: IpTypeId::MULTIPLIER,
        };
        let mut lib = CoreLibrary::new();
        // Fires after 2 consecutive executions with any operand (mask 0).
        lib.infect(
            license,
            Trojan {
                trigger: Trigger::Sequential {
                    mask: 0,
                    pattern: 0,
                    threshold: 2,
                },
                payload: Payload::XorMask(1),
            },
        );
        let iv = InputVector::from_seed(p.dfg(), 5);
        let golden = golden_eval(p.dfg(), &iv);
        let mut dp = Datapath::new(&p, &imp, &lib);
        let first = dp.execute(Role::Nc, &iv);
        let second = dp.execute(Role::Nc, &iv);
        // The counter accumulates across runs: a later run is corrupted
        // even though the first may be clean.
        assert_ne!(second.outputs, golden);
        dp.reset_trojan_state();
        let fresh = dp.execute(Role::Nc, &iv);
        assert_eq!(fresh.outputs, first.outputs, "reset reproduces run 1");
    }

    #[test]
    fn infect_disinfect_round_trip() {
        let mut lib = CoreLibrary::new();
        let lic = License {
            vendor: VendorId::new(0),
            ip_type: IpTypeId::ADDER,
        };
        let t = Trojan {
            trigger: Trigger::on_operand_a(1),
            payload: Payload::XorMask(2),
        };
        lib.infect(lic, t);
        assert_eq!(lib.trojan(lic), Some(t));
        lib.disinfect(lic);
        assert_eq!(lib.trojan(lic), None);
        assert_eq!(lib.infected_licenses().count(), 0);
    }
}
