//! The paper's Section 3.2 fault-model comparison, executable.
//!
//! A Trojan-caused logic error is *neither* a soft error nor a hard error:
//!
//! - an environment-induced **soft error** (e.g. a single-event upset)
//!   disappears after a time; re-executing the same computation on the
//!   same unit fixes it;
//! - an environment-induced **hard error** (e.g. a latch-up) makes the
//!   unit permanently faulty; no re-execution fixes it, the unit must be
//!   avoided altogether;
//! - a **Trojan-caused error** persists exactly while its trigger condition
//!   holds: re-execution on the same unit with the same inputs re-fails,
//!   but re-binding the operation to a different vendor's unit (the
//!   paper's recovery) succeeds.
//!
//! [`recovery_matrix`] runs all three fault classes against both recovery
//!  strategies and returns which combinations deliver correct outputs —
//! the justification for the paper's re-binding rule, as a table.

use troy_dfg::NodeId;
use troyhls::{Implementation, License, Mode, Role, SynthesisProblem};

use crate::datapath::{CoreLibrary, Datapath};
use crate::semantics::{golden_eval, sink_outputs, InputVector};
use crate::trojan::{Payload, Trigger, Trojan};

/// The three fault classes of Section 3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Transient upset: corrupts the unit during the detection phase,
    /// then disappears (any later execution is clean).
    SoftTransient,
    /// Permanent damage: the unit corrupts every execution from the moment
    /// of failure on.
    HardPermanent,
    /// A memory-less Trojan: corrupts while its (input-dependent) trigger
    /// condition holds.
    Trojan,
}

/// Which recovery strategy is applied after detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStrategy {
    /// Re-execute the same computation on the same binding (the
    /// traditional soft-error answer).
    NaiveReexecution,
    /// Re-execute on the rule-based recovery binding (the paper's answer).
    RuleBasedRebinding,
}

/// Outcome of one (fault, strategy) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixCell {
    /// The injected fault class.
    pub fault: FaultClass,
    /// The strategy applied.
    pub strategy: RecoveryStrategy,
    /// Whether the fault was observable (detection fired).
    pub detected: bool,
    /// Whether the delivered output after recovery matched golden.
    pub recovered: bool,
}

/// Builds the fault library for a class, targeted at `victim`'s NC unit.
fn library_for(
    fault: FaultClass,
    problem: &SynthesisProblem,
    imp: &Implementation,
    victim: NodeId,
    inputs: &InputVector,
) -> CoreLibrary {
    let dfg = problem.dfg();
    let vendor = imp.assignment(victim, Role::Nc).expect("complete").vendor;
    let license = License {
        vendor,
        ip_type: dfg.kind(victim).ip_type(),
    };
    let golden = golden_eval(dfg, inputs);
    let operand = match dfg.preds(victim) {
        [] => inputs.values(victim).first().copied().unwrap_or(0),
        [p, ..] => golden[p.index()],
    };
    let mut lib = CoreLibrary::new();
    let trojan = match fault {
        // The upset corrupts the unit's executions *while it lasts*; its
        // transience is modeled in `recovery_matrix` by running the
        // re-execution/recovery against a clean library (the upset has
        // passed by then).
        FaultClass::SoftTransient => Trojan {
            trigger: Trigger::Combinational {
                mask_a: 0,
                pattern_a: 0,
                mask_b: 0,
                pattern_b: 0,
            },
            payload: Payload::XorMask(0xBEEF),
        },
        // Always-on corruption.
        FaultClass::HardPermanent => Trojan {
            trigger: Trigger::Combinational {
                mask_a: 0,
                pattern_a: 0,
                mask_b: 0,
                pattern_b: 0,
            },
            payload: Payload::XorMask(0xBEEF),
        },
        // Input-condition-bound corruption.
        FaultClass::Trojan => Trojan {
            trigger: Trigger::on_operand_a(operand),
            payload: Payload::XorMask(0xBEEF),
        },
    };
    lib.infect(license, trojan);
    lib
}

/// Runs the full 3×2 fault/strategy matrix on a synthesized design.
///
/// The victim is `victim`'s NC unit; `inputs` drive every execution (the
/// paper's premise: the same computation must be recovered).
///
/// # Panics
///
/// Panics if the implementation is incomplete — validate first.
#[must_use]
pub fn recovery_matrix(
    problem: &SynthesisProblem,
    imp: &Implementation,
    victim: NodeId,
    inputs: &InputVector,
) -> Vec<MatrixCell> {
    assert_eq!(
        problem.mode(),
        Mode::DetectionRecovery,
        "the matrix needs a recovery schedule"
    );
    let dfg = problem.dfg();
    let golden = sink_outputs(dfg, &golden_eval(dfg, inputs));
    let clean = CoreLibrary::new();
    let mut out = Vec::new();

    for fault in [
        FaultClass::SoftTransient,
        FaultClass::HardPermanent,
        FaultClass::Trojan,
    ] {
        let faulty = library_for(fault, problem, imp, victim, inputs);
        // The fault is present during the detection phase. For a transient
        // upset it has passed by the time any recovery action runs; hard
        // damage and Trojan triggers persist.
        let lib_after: &CoreLibrary = match fault {
            FaultClass::SoftTransient => &clean,
            FaultClass::HardPermanent | FaultClass::Trojan => &faulty,
        };

        let detected = {
            let mut dp = Datapath::new(problem, imp, &faulty);
            let nc = sink_outputs(dfg, &dp.execute(Role::Nc, inputs).outputs);
            let rc = sink_outputs(dfg, &dp.execute(Role::Rc, inputs).outputs);
            nc != rc
        };

        for strategy in [
            RecoveryStrategy::NaiveReexecution,
            RecoveryStrategy::RuleBasedRebinding,
        ] {
            let recovered = if detected {
                let mut dp = Datapath::new(problem, imp, lib_after);
                match strategy {
                    RecoveryStrategy::NaiveReexecution => {
                        // Same computation, same binding, same inputs.
                        let nc = sink_outputs(dfg, &dp.execute(Role::Nc, inputs).outputs);
                        nc == golden
                    }
                    RecoveryStrategy::RuleBasedRebinding => {
                        let r = sink_outputs(dfg, &dp.execute(Role::Recovery, inputs).outputs);
                        r == golden
                    }
                }
            } else {
                false // nothing observable to recover from
            };
            out.push(MatrixCell {
                fault,
                strategy,
                detected,
                recovered,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::benchmarks;
    use troyhls::{Catalog, ExactSolver, Mode, SolveOptions, Synthesizer};

    fn matrix() -> Vec<MatrixCell> {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionRecovery)
            .detection_latency(4)
            .recovery_latency(3)
            .build()
            .unwrap();
        let s = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        let iv = InputVector::from_seed(p.dfg(), 11);
        // Victim: t3 = b*c feeds the sink directly -> corruption reaches
        // the output for every fault class.
        recovery_matrix(&p, &s.implementation, NodeId::new(2), &iv)
    }

    fn cell(m: &[MatrixCell], f: FaultClass, s: RecoveryStrategy) -> MatrixCell {
        *m.iter()
            .find(|c| c.fault == f && c.strategy == s)
            .expect("cell exists")
    }

    #[test]
    fn every_fault_class_is_detected() {
        let m = matrix();
        for c in &m {
            assert!(c.detected, "{c:?}");
        }
    }

    #[test]
    fn soft_errors_are_fixed_by_naive_reexecution() {
        // Section 3.2: "a simple re-execution ... will recover the error".
        let m = matrix();
        let c = cell(
            &m,
            FaultClass::SoftTransient,
            RecoveryStrategy::NaiveReexecution,
        );
        assert!(c.recovered, "{c:?}");
    }

    #[test]
    fn hard_errors_defeat_both_strategies_unless_rebinding_avoids_the_unit() {
        let m = matrix();
        let naive = cell(
            &m,
            FaultClass::HardPermanent,
            RecoveryStrategy::NaiveReexecution,
        );
        assert!(
            !naive.recovered,
            "a dead unit cannot be re-executed: {naive:?}"
        );
        // Re-binding happens to avoid the dead unit for the victim op, but
        // the recovery computation may still route other ops through it —
        // with an always-on fault the outcome depends on the binding. Both
        // outcomes are legitimate; what matters is naive never works.
        let _ = cell(
            &m,
            FaultClass::HardPermanent,
            RecoveryStrategy::RuleBasedRebinding,
        );
    }

    #[test]
    fn trojans_defeat_naive_but_not_rebinding() {
        // The paper's core claim, as a table lookup.
        let m = matrix();
        let naive = cell(&m, FaultClass::Trojan, RecoveryStrategy::NaiveReexecution);
        let ruled = cell(&m, FaultClass::Trojan, RecoveryStrategy::RuleBasedRebinding);
        assert!(!naive.recovered, "{naive:?}");
        assert!(ruled.recovered, "{ruled:?}");
    }

    #[test]
    fn matrix_has_all_six_cells() {
        assert_eq!(matrix().len(), 6);
    }
}
