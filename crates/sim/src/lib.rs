//! Run-time hardware-Trojan simulation for the TroyHLS workspace.
//!
//! The DAC'14 paper's threat model and run-time behavior, executable:
//!
//! - [`Trojan`], [`Trigger`], [`Payload`]: the Section 3.1 taxonomy —
//!   combinational and sequential (counter) triggers, memory-less payloads
//!   (XOR / offset) plus the memoryful Fig. 3 contrast;
//! - [`CoreLibrary`] + [`Datapath`]: behavioral, function-equivalent IP
//!   cores per vendor, cycle-accurate execution of a synthesized
//!   [`troyhls::Implementation`], with per-instance Trojan state;
//! - [`PhaseController`]: the run-time flow of Figures 1 and 4 — NC ∥ RC
//!   comparison, then the re-bound recovery execution on a mismatch;
//! - [`run_campaign`]: Monte-Carlo injection campaigns measuring detection
//!   and recovery rates, plus the naive re-execution baseline the paper's
//!   Section 3.2 argues against.
//!
//! # Quickstart
//!
//! ```
//! use troy_dfg::benchmarks;
//! use troy_sim::{CoreLibrary, InputVector, PhaseController};
//! use troyhls::{Catalog, ExactSolver, Mode, SolveOptions, SynthesisProblem, Synthesizer};
//!
//! // Synthesize a Trojan-tolerant design, then run one clean mission step.
//! let problem = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
//!     .mode(Mode::DetectionRecovery)
//!     .detection_latency(4)
//!     .recovery_latency(3)
//!     .build()?;
//! let design = ExactSolver::new().synthesize(&problem, &SolveOptions::quick())?;
//! let library = CoreLibrary::new(); // no Trojans yet
//! let mut controller = PhaseController::new(&problem, &design.implementation, &library);
//! let report = controller.run(&InputVector::from_seed(problem.dfg(), 42));
//! assert!(!report.mismatch);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod collusion;
mod controller;
mod corpus;
mod datapath;
mod fault;
mod grid;
mod mission;
mod profile;
mod semantics;
mod trace;
mod trojan;

pub use campaign::{naive_reexecution_recovery_rate, run_campaign, CampaignConfig, CampaignResult};
pub use collusion::{collusion_audit, execute_with_collusion, ColludingTrojan, CollusionOutcome};
pub use controller::{PhaseController, RunReport};
pub use corpus::{
    derive_seed, generate_corpus, plant, CorpusConfig, PayloadKind, PlantedTrojan, TrojanSpec,
};
pub use datapath::{CoreLibrary, Datapath, PhaseOutputs};
pub use fault::{recovery_matrix, FaultClass, MatrixCell, RecoveryStrategy};
pub use grid::{
    mode_tag, replay_cell, run_grid, CampaignReport, CellOutcome, DesignUnderTest, EscapeWitness,
    GridConfig,
};
pub use mission::{run_mission, MissionReport};
pub use profile::{profile_related_pairs, profile_related_pairs_with, ProfileConfig};
pub use semantics::{eval_op, golden_eval, operands, sink_outputs, InputVector};
pub use trace::trace_run;
pub use trojan::{rarity_mask, Payload, Trigger, Trojan, TrojanState};
