//! Mission-level reliability metrics.
//!
//! The paper motivates recovery with mission-critical systems that "are
//! expected to continue working correctly until they can be replaced".
//! This module quantifies that: run a long input sequence against a
//! (possibly infected) design and report availability — the fraction of
//! mission steps that delivered a correct output — together with alarm
//! statistics.

use troyhls::{Implementation, SynthesisProblem};

use crate::controller::PhaseController;
use crate::datapath::CoreLibrary;
use crate::semantics::InputVector;

/// Aggregate outcome of a simulated mission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissionReport {
    /// Steps executed.
    pub steps: usize,
    /// Steps whose delivered output matched golden.
    pub correct: usize,
    /// Steps where the monitor raised the Trojan alarm.
    pub alarms: usize,
    /// Alarmed steps that still delivered a correct output (recovery won).
    pub alarmed_but_correct: usize,
    /// First step (0-based) at which an alarm fired, if any.
    pub first_alarm: Option<usize>,
}

impl MissionReport {
    /// Fraction of steps with correct delivered output.
    #[must_use]
    pub fn availability(&self) -> f64 {
        if self.steps == 0 {
            1.0
        } else {
            self.correct as f64 / self.steps as f64
        }
    }

    /// Fraction of alarmed steps the recovery machinery saved.
    #[must_use]
    pub fn recovery_effectiveness(&self) -> f64 {
        if self.alarms == 0 {
            1.0
        } else {
            self.alarmed_but_correct as f64 / self.alarms as f64
        }
    }
}

/// Runs `steps` mission steps with seeded inputs (`seed`, `seed+1`, …).
///
/// Trojan state persists across steps (no power cycling), matching a
/// deployed system; call with a fresh [`PhaseController`]-backing library
/// to model maintenance.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troy_sim::{run_mission, CoreLibrary};
/// use troyhls::{Catalog, ExactSolver, Mode, SolveOptions, SynthesisProblem, Synthesizer};
///
/// let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionRecovery)
///     .detection_latency(4)
///     .recovery_latency(3)
///     .build()?;
/// let d = ExactSolver::new().synthesize(&p, &SolveOptions::quick())?;
/// let report = run_mission(&p, &d.implementation, &CoreLibrary::new(), 50, 7);
/// assert_eq!(report.availability(), 1.0); // clean hardware: full uptime
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn run_mission(
    problem: &SynthesisProblem,
    imp: &Implementation,
    library: &CoreLibrary,
    steps: usize,
    seed: u64,
) -> MissionReport {
    let mut ctrl = PhaseController::new(problem, imp, library);
    let mut report = MissionReport {
        steps,
        ..MissionReport::default()
    };
    for step in 0..steps {
        let inputs = InputVector::from_seed(problem.dfg(), seed.wrapping_add(step as u64));
        let r = ctrl.run(&inputs);
        if r.delivered_correct() {
            report.correct += 1;
        }
        if r.mismatch {
            report.alarms += 1;
            report.first_alarm.get_or_insert(step);
            if r.delivered_correct() {
                report.alarmed_but_correct += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojan::{Payload, Trigger, Trojan};
    use troy_dfg::{benchmarks, IpTypeId};
    use troyhls::{Catalog, ExactSolver, License, Mode, Role, SolveOptions, Synthesizer};

    fn design(mode: Mode) -> (SynthesisProblem, Implementation) {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(mode)
            .detection_latency(4)
            .recovery_latency(3)
            .build()
            .unwrap();
        let s = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        (p, s.implementation)
    }

    /// A Trojan that fires often: low-4-bit pattern on a multiplier.
    fn noisy_library(imp: &Implementation) -> CoreLibrary {
        let vendor = imp
            .assignment(troy_dfg::NodeId::new(0), Role::Nc)
            .unwrap()
            .vendor;
        let mut lib = CoreLibrary::new();
        lib.infect(
            License {
                vendor,
                ip_type: IpTypeId::MULTIPLIER,
            },
            Trojan {
                trigger: Trigger::Combinational {
                    mask_a: 0xF,
                    pattern_a: 0x3,
                    mask_b: 0,
                    pattern_b: 0,
                },
                payload: Payload::AddOffset(999),
            },
        );
        lib
    }

    #[test]
    fn clean_mission_has_full_availability() {
        let (p, imp) = design(Mode::DetectionRecovery);
        let r = run_mission(&p, &imp, &CoreLibrary::new(), 40, 1);
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.alarms, 0);
        assert_eq!(r.first_alarm, None);
    }

    #[test]
    fn recovery_design_keeps_availability_high_under_attack() {
        let (p, imp) = design(Mode::DetectionRecovery);
        let lib = noisy_library(&imp);
        let r = run_mission(&p, &imp, &lib, 120, 5);
        assert!(r.alarms > 5, "{r:?}");
        assert!(r.availability() > 0.9, "{r:?}");
        assert!(r.recovery_effectiveness() > 0.8, "{r:?}");
        assert!(r.first_alarm.is_some());
    }

    #[test]
    fn detection_only_design_loses_availability_under_attack() {
        let (pr, impr) = design(Mode::DetectionRecovery);
        let (pd, impd) = design(Mode::DetectionOnly);
        let rec = run_mission(&pr, &impr, &noisy_library(&impr), 120, 5);
        let det = run_mission(&pd, &impd, &noisy_library(&impd), 120, 5);
        // Both alarm; only the recovery design keeps delivering outputs.
        assert!(det.alarms > 0 && rec.alarms > 0);
        assert!(
            rec.availability() > det.availability(),
            "recovery {rec:?} vs detection {det:?}"
        );
        assert_eq!(det.recovery_effectiveness(), 0.0, "{det:?}");
    }

    #[test]
    fn empty_mission_is_trivially_available() {
        let (p, imp) = design(Mode::DetectionRecovery);
        let r = run_mission(&p, &imp, &CoreLibrary::new(), 0, 0);
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.recovery_effectiveness(), 1.0);
    }
}
