//! Functional semantics: what each operation computes, per-op primary
//! inputs, and golden (Trojan-free) DFG evaluation.

use troy_dfg::{Dfg, NodeId, OpKind};

/// Evaluates one operation on 64-bit two's-complement words.
///
/// Shift amounts wrap modulo the word width; `Less` is a signed compare
/// producing 0/1.
///
/// # Examples
///
/// ```
/// use troy_dfg::OpKind;
/// use troy_sim::eval_op;
///
/// assert_eq!(eval_op(OpKind::Add, 3, 4), 7);
/// assert_eq!(eval_op(OpKind::Sub, 3, 4), u64::MAX); // wrapping
/// assert_eq!(eval_op(OpKind::Less, u64::MAX, 0), 1); // -1 < 0 signed
/// ```
#[must_use]
pub fn eval_op(kind: OpKind, a: u64, b: u64) -> u64 {
    match kind {
        OpKind::Add => a.wrapping_add(b),
        OpKind::Sub => a.wrapping_sub(b),
        OpKind::Mul => a.wrapping_mul(b),
        OpKind::Less => u64::from((a as i64) < (b as i64)),
        OpKind::And => a & b,
        OpKind::Or => a | b,
        OpKind::Xor => a ^ b,
        OpKind::Shl => a << (b & 63),
        OpKind::Shr => a >> (b & 63),
        // `OpKind` is non-exhaustive; new kinds must be given semantics
        // here before the simulator can execute them.
        other => unimplemented!("no behavioral model for op kind `{other}`"),
    }
}

/// Concrete primary-input values for every operation of a DFG.
///
/// An operation's operand list is its producers (in edge order) followed by
/// its primary inputs; this type stores the latter.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troy_sim::InputVector;
///
/// let g = benchmarks::polynom();
/// let iv = InputVector::from_seed(&g, 7);
/// assert_eq!(iv.values(troy_dfg::NodeId::new(0)).len(), 2); // leaf mul
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputVector {
    per_op: Vec<Vec<u64>>,
}

impl InputVector {
    /// All primary inputs zero.
    #[must_use]
    pub fn zeros(dfg: &Dfg) -> Self {
        InputVector {
            per_op: dfg
                .node_ids()
                .map(|n| vec![0; dfg.node(n).primary_inputs()])
                .collect(),
        }
    }

    /// Deterministic pseudo-random inputs from a seed (SplitMix64 stream).
    #[must_use]
    pub fn from_seed(dfg: &Dfg, seed: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        InputVector {
            per_op: dfg
                .node_ids()
                .map(|n| (0..dfg.node(n).primary_inputs()).map(|_| next()).collect())
                .collect(),
        }
    }

    /// The primary-input values of one op.
    #[must_use]
    pub fn values(&self, op: NodeId) -> &[u64] {
        &self.per_op[op.index()]
    }

    /// Overrides one primary input (op, slot).
    ///
    /// # Panics
    ///
    /// Panics if `op`/`slot` is out of range.
    pub fn set(&mut self, op: NodeId, slot: usize, value: u64) {
        self.per_op[op.index()][slot] = value;
    }
}

/// Resolves the two operands of `op` given already-computed producer
/// outputs and the primary inputs. Operations with a single total operand
/// duplicate it (unary usage of a binary core).
#[must_use]
pub fn operands(
    dfg: &Dfg,
    op: NodeId,
    outputs: &[Option<u64>],
    inputs: &InputVector,
) -> (u64, u64) {
    let mut ops: Vec<u64> = dfg
        .preds(op)
        .iter()
        .map(|p| outputs[p.index()].expect("producer scheduled earlier"))
        .collect();
    ops.extend_from_slice(inputs.values(op));
    match ops[..] {
        [a, b] => (a, b),
        [a] => (a, a),
        [] => (0, 0),
        _ => unreachable!("ops are at most binary"),
    }
}

/// Golden (Trojan-free) evaluation of the whole DFG; returns every op's
/// output indexed by node.
///
/// # Examples
///
/// ```
/// use troy_dfg::{benchmarks, NodeId};
/// use troy_sim::{golden_eval, InputVector};
///
/// let g = benchmarks::polynom();
/// let mut iv = InputVector::zeros(&g);
/// iv.set(NodeId::new(0), 0, 3); // x
/// iv.set(NodeId::new(0), 1, 3); // x
/// let out = golden_eval(&g, &iv);
/// assert_eq!(out[0], 9); // x*x
/// ```
#[must_use]
pub fn golden_eval(dfg: &Dfg, inputs: &InputVector) -> Vec<u64> {
    let mut outputs: Vec<Option<u64>> = vec![None; dfg.len()];
    for op in dfg.topo_order() {
        let (a, b) = operands(dfg, op, &outputs, inputs);
        outputs[op.index()] = Some(eval_op(dfg.kind(op), a, b));
    }
    outputs
        .into_iter()
        .map(|o| o.expect("topo covers all"))
        .collect()
}

/// The DFG's primary outputs (sink-node values) from a full output vector.
#[must_use]
pub fn sink_outputs(dfg: &Dfg, outputs: &[u64]) -> Vec<u64> {
    dfg.sinks().map(|s| outputs[s.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::benchmarks;

    #[test]
    fn eval_op_covers_all_kinds() {
        assert_eq!(eval_op(OpKind::Add, 2, 3), 5);
        assert_eq!(eval_op(OpKind::Sub, 2, 3), u64::MAX);
        assert_eq!(eval_op(OpKind::Mul, 1 << 63, 2), 0); // wraps
        assert_eq!(eval_op(OpKind::Less, 1, 2), 1);
        assert_eq!(eval_op(OpKind::Less, 2, 1), 0);
        assert_eq!(eval_op(OpKind::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(eval_op(OpKind::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(eval_op(OpKind::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(eval_op(OpKind::Shl, 1, 4), 16);
        assert_eq!(eval_op(OpKind::Shr, 16, 4), 1);
        assert_eq!(eval_op(OpKind::Shl, 1, 64), 1); // modulo width
    }

    #[test]
    fn polynom_golden_matches_formula() {
        // polynom computes x*x + a*x + b*c.
        let g = benchmarks::polynom();
        let mut iv = InputVector::zeros(&g);
        let (x, a, b, c) = (5u64, 7u64, 11u64, 13u64);
        iv.set(troy_dfg::NodeId::new(0), 0, x);
        iv.set(troy_dfg::NodeId::new(0), 1, x);
        iv.set(troy_dfg::NodeId::new(1), 0, a);
        iv.set(troy_dfg::NodeId::new(1), 1, x);
        iv.set(troy_dfg::NodeId::new(2), 0, b);
        iv.set(troy_dfg::NodeId::new(2), 1, c);
        let out = golden_eval(&g, &iv);
        let sinks = sink_outputs(&g, &out);
        assert_eq!(sinks, vec![x * x + a * x + b * c]);
    }

    #[test]
    fn seeded_inputs_are_deterministic_and_seed_sensitive() {
        let g = benchmarks::diff2();
        assert_eq!(InputVector::from_seed(&g, 1), InputVector::from_seed(&g, 1));
        assert_ne!(InputVector::from_seed(&g, 1), InputVector::from_seed(&g, 2));
    }

    #[test]
    fn golden_eval_is_pure() {
        let g = benchmarks::fir16();
        let iv = InputVector::from_seed(&g, 99);
        assert_eq!(golden_eval(&g, &iv), golden_eval(&g, &iv));
    }

    #[test]
    fn unary_usage_duplicates_operand() {
        // An op with one pred and zero primaries sees (a, a).
        let mut g = troy_dfg::Dfg::new("u");
        let a = g.add_op_with(OpKind::Add, "a", 2);
        let b = g.add_op_with(OpKind::Mul, "sq", 0);
        g.add_edge(a, b).unwrap();
        let mut iv = InputVector::zeros(&g);
        iv.set(a, 0, 3);
        iv.set(a, 1, 4);
        let out = golden_eval(&g, &iv);
        assert_eq!(out[b.index()], 49); // (3+4)^2
    }
}
