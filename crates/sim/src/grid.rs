//! The campaign grid engine: fans `(benchmark, mode, trojan, trace)` cells
//! over the `troy-portfolio` work-stealing pool and aggregates a
//! deterministic [`CampaignReport`].
//!
//! Every cell runs one planted [`crate::corpus::TrojanSpec`] against one
//! synthesized design for a whole input trace, with Trojan state (latches,
//! sequential counters) persisting across the trace's steps — the Fig. 3
//! mission-time behavior. All randomness derives from the master seed and
//! the cell's identity, so the report is bit-identical under any `jobs`
//! setting, and any escape is replayable from its `(seed, cell-id)`
//! witness alone.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use troyhls::{Implementation, Mode, Role, SolveOptions, SynthesisProblem, Synthesizer};

use crate::corpus::{derive_seed, generate_corpus, plant, CorpusConfig, TrojanSpec};
use crate::datapath::Datapath;
use crate::semantics::{golden_eval, sink_outputs, InputVector};

/// One synthesized design a campaign grid exercises.
#[derive(Debug)]
pub struct DesignUnderTest {
    /// Benchmark name (a `troy_dfg::benchmarks` entry).
    pub name: String,
    /// The synthesis problem the implementation solves.
    pub problem: SynthesisProblem,
    /// The vendor/cycle binding under test.
    pub implementation: Implementation,
}

impl DesignUnderTest {
    /// Synthesizes a built-in benchmark for `mode` with one cycle of
    /// latency slack over its critical path (the paper-8 catalog).
    ///
    /// # Errors
    ///
    /// Returns a message when the benchmark name is unknown or synthesis
    /// fails.
    pub fn synthesize(
        name: &str,
        mode: Mode,
        solver: &dyn Synthesizer,
        options: &SolveOptions,
    ) -> Result<Self, String> {
        let dfg = troy_dfg::benchmarks::by_name(name)
            .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
        let slack = dfg.critical_path_len() + 1;
        let problem = troyhls::SynthesisProblem::builder(dfg, troyhls::Catalog::paper8())
            .mode(mode)
            .detection_latency(slack)
            .recovery_latency(slack)
            .build()
            .map_err(|e| format!("{name}: {e}"))?;
        let solved = solver
            .synthesize(&problem, options)
            .map_err(|e| format!("{name}: {e}"))?;
        Ok(DesignUnderTest {
            name: name.to_owned(),
            problem,
            implementation: solved.implementation,
        })
    }

    /// Short mode tag used in cell identifiers (`det` / `rec`).
    #[must_use]
    pub fn mode_tag(&self) -> &'static str {
        mode_tag(self.problem.mode())
    }
}

/// Short mode tag (`det` / `rec`).
#[must_use]
pub fn mode_tag(mode: Mode) -> &'static str {
    match mode {
        Mode::DetectionOnly => "det",
        Mode::DetectionRecovery => "rec",
    }
}

/// Campaign grid parameters.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Master seed: the single knob that determines the whole report.
    pub seed: u64,
    /// Trojan-corpus strata planted into every design.
    pub corpus: CorpusConfig,
    /// Mission steps per cell (one trace = `steps` consecutive inputs
    /// against persistent Trojan state).
    pub steps: usize,
    /// Input traces per (design, trojan) pair.
    pub traces: usize,
    /// Probability (percent) that a step's inputs are crafted to hit the
    /// trigger on the planted victim op, rather than fully random.
    pub targeted_percent: u8,
    /// Minimum `rarity_bits` for the hard detection guarantee: a
    /// `DetectionRecovery` cell with a memory-less payload, coalition 1
    /// and at least this rarity must detect *every* corrupting activation
    /// — an escape there is a campaign failure, not a data point. Below
    /// this threshold common triggers can corrupt NC and RC identically
    /// by chance, which the paper's rare-trigger assumption excludes.
    pub guarantee_rarity: u32,
    /// Deterministic cap on the number of grid cells (`None` = full grid).
    pub max_cells: Option<usize>,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            seed: 0x000D_AC14,
            corpus: CorpusConfig::default(),
            steps: 16,
            traces: 1,
            targeted_percent: 60,
            guarantee_rarity: 8,
            max_cells: None,
        }
    }
}

/// Everything measured in one grid cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOutcome {
    /// Stable identifier: `benchmark/mode/tNNN-stratum/xTRACE`.
    pub id: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Design mode.
    pub mode: Mode,
    /// Trojan spec the cell planted.
    pub spec: TrojanSpec,
    /// Trace index.
    pub trace: usize,
    /// Mission steps executed.
    pub steps: usize,
    /// Steps where any op-level output deviated from golden (the Trojan
    /// demonstrably fired somewhere).
    pub activations: usize,
    /// Steps whose *sink* outputs were corrupted in NC or RC.
    pub corrupted: usize,
    /// Corrupted steps flagged by the NC/RC monitor.
    pub detected: usize,
    /// Corrupted steps that escaped the monitor.
    pub missed: usize,
    /// Steps where the Trojan fired internally but the corruption masked
    /// out before reaching a sink (invisible to the monitor, harmless).
    pub silent_internal: usize,
    /// Steps where the monitor fired without sink corruption — must stay 0
    /// for a sound comparator (pinned by the clean negative control).
    pub false_alarms: usize,
    /// Detected steps whose recovery re-execution delivered golden.
    pub recovered: usize,
    /// Detected steps whose recovery outputs were still wrong.
    pub recovery_failed: usize,
    /// Whether this cell is in the hard-guarantee slice (see
    /// [`GridConfig::guarantee_rarity`]).
    pub guarantee: bool,
    /// Step indices of every missed corrupting activation.
    pub escape_steps: Vec<usize>,
    /// Wall-clock for the cell (informational; excluded from the
    /// deterministic report sections).
    pub elapsed_us: u64,
}

/// A replayable witness for an escaped corrupting activation in the
/// guarantee slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeWitness {
    /// Master seed of the campaign that observed the escape.
    pub seed: u64,
    /// Cell identifier (re-run with [`replay_cell`] to reproduce).
    pub cell: String,
    /// Step index within the cell's trace.
    pub step: usize,
}

/// Deterministic aggregate of one campaign grid run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Master seed the grid ran under.
    pub seed: u64,
    /// Per-cell outcomes, in grid order.
    pub cells: Vec<CellOutcome>,
}

impl CampaignReport {
    fn sum(&self, f: impl Fn(&CellOutcome) -> usize) -> usize {
        self.cells.iter().map(f).sum()
    }

    /// Total mission steps executed.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.sum(|c| c.steps)
    }

    /// Fraction of corrupting activations the monitor caught, over cells
    /// matching `mode` (`None` = all cells). `1.0` when nothing corrupted.
    #[must_use]
    pub fn detection_rate(&self, mode: Option<Mode>) -> f64 {
        let (mut corrupted, mut detected) = (0usize, 0usize);
        for c in self
            .cells
            .iter()
            .filter(|c| mode.is_none_or(|m| c.mode == m))
        {
            corrupted += c.corrupted;
            detected += c.detected;
        }
        if corrupted == 0 {
            1.0
        } else {
            detected as f64 / corrupted as f64
        }
    }

    /// Fraction of recovery re-executions that delivered golden outputs.
    /// `1.0` when recovery never ran.
    #[must_use]
    pub fn recovery_rate(&self) -> f64 {
        let recovered = self.sum(|c| c.recovered);
        let failed = self.sum(|c| c.recovery_failed);
        if recovered + failed == 0 {
            1.0
        } else {
            recovered as f64 / (recovered + failed) as f64
        }
    }

    /// Monitor firings without sink corruption, per executed step.
    #[must_use]
    pub fn false_alarm_rate(&self) -> f64 {
        let steps = self.steps();
        if steps == 0 {
            0.0
        } else {
            self.sum(|c| c.false_alarms) as f64 / steps as f64
        }
    }

    /// Replayable witnesses for *every* missed corrupting activation, any
    /// mode or stratum. Each witness is `(seed, cell-id, step)`; feeding
    /// the cell id back through [`replay_cell`] under the same seed
    /// reproduces the cell bit-for-bit.
    #[must_use]
    pub fn escapes(&self) -> Vec<EscapeWitness> {
        self.witnesses(|_| true)
    }

    /// Replayable witnesses for every escape inside the guarantee slice —
    /// an empty list is the campaign's pass condition.
    #[must_use]
    pub fn guarantee_escapes(&self) -> Vec<EscapeWitness> {
        self.witnesses(|c| c.guarantee)
    }

    fn witnesses(&self, keep: impl Fn(&CellOutcome) -> bool) -> Vec<EscapeWitness> {
        self.cells
            .iter()
            .filter(|c| keep(c))
            .flat_map(|c| {
                c.escape_steps.iter().map(|&step| EscapeWitness {
                    seed: self.seed,
                    cell: c.id.clone(),
                    step,
                })
            })
            .collect()
    }

    /// Human-readable summary (per-mode rates plus the guarantee verdict).
    #[must_use]
    pub fn summary_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign: seed {:#x}, {} cells, {} steps",
            self.seed,
            self.cells.len(),
            self.steps()
        );
        let _ = writeln!(
            out,
            "  activations {}  corrupted {}  detected {}  missed {}  silent {}",
            self.sum(|c| c.activations),
            self.sum(|c| c.corrupted),
            self.sum(|c| c.detected),
            self.sum(|c| c.missed),
            self.sum(|c| c.silent_internal),
        );
        let _ = writeln!(
            out,
            "  detection rate: {:.4} overall, {:.4} detection-only, {:.4} detection+recovery",
            self.detection_rate(None),
            self.detection_rate(Some(Mode::DetectionOnly)),
            self.detection_rate(Some(Mode::DetectionRecovery)),
        );
        let _ = writeln!(
            out,
            "  recovery rate: {:.4} ({} recovered, {} failed)  false-alarm rate: {:.4}",
            self.recovery_rate(),
            self.sum(|c| c.recovered),
            self.sum(|c| c.recovery_failed),
            self.false_alarm_rate(),
        );
        let guard = self.cells.iter().filter(|c| c.guarantee).count();
        let escapes = self.guarantee_escapes();
        let _ = writeln!(
            out,
            "  guarantee slice: {guard} cells, {} escapes",
            escapes.len()
        );
        out
    }

    /// Renders the report as JSON. With `include_timing` false the output
    /// is a pure function of the seed and grid — the determinism property
    /// tests and the committed benchmark compare exactly that form.
    #[must_use]
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": 1,\n");
        out.push_str(
            "  \"note\": \"all counts and rates are deterministic in the seed; \
             latency_us is informational only\",\n",
        );
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        out.push_str("  \"summary\": {\n");
        let _ = writeln!(out, "    \"cells\": {},", self.cells.len());
        let _ = writeln!(out, "    \"steps\": {},", self.steps());
        let _ = writeln!(out, "    \"activations\": {},", self.sum(|c| c.activations));
        let _ = writeln!(out, "    \"corrupted\": {},", self.sum(|c| c.corrupted));
        let _ = writeln!(out, "    \"detected\": {},", self.sum(|c| c.detected));
        let _ = writeln!(out, "    \"missed\": {},", self.sum(|c| c.missed));
        let _ = writeln!(
            out,
            "    \"silent_internal\": {},",
            self.sum(|c| c.silent_internal)
        );
        let _ = writeln!(
            out,
            "    \"false_alarms\": {},",
            self.sum(|c| c.false_alarms)
        );
        let _ = writeln!(out, "    \"recovered\": {},", self.sum(|c| c.recovered));
        let _ = writeln!(
            out,
            "    \"recovery_failed\": {},",
            self.sum(|c| c.recovery_failed)
        );
        let _ = writeln!(
            out,
            "    \"detection_rate\": {:.4},",
            self.detection_rate(None)
        );
        let _ = writeln!(
            out,
            "    \"detection_rate_detection_only\": {:.4},",
            self.detection_rate(Some(Mode::DetectionOnly))
        );
        let _ = writeln!(
            out,
            "    \"detection_rate_recovery\": {:.4},",
            self.detection_rate(Some(Mode::DetectionRecovery))
        );
        let _ = writeln!(out, "    \"recovery_rate\": {:.4},", self.recovery_rate());
        let _ = writeln!(
            out,
            "    \"false_alarm_rate\": {:.4},",
            self.false_alarm_rate()
        );
        let _ = writeln!(
            out,
            "    \"guarantee_cells\": {},",
            self.cells.iter().filter(|c| c.guarantee).count()
        );
        let _ = writeln!(
            out,
            "    \"guarantee_escapes\": {}",
            self.guarantee_escapes().len()
        );
        out.push_str("  },\n  \"escapes\": [");
        let escapes = self.guarantee_escapes();
        for (i, e) in escapes.iter().enumerate() {
            let sep = if i + 1 < escapes.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{ \"cell\": \"{}\", \"step\": {}, \"seed\": {} }}{sep}",
                e.cell, e.step, e.seed
            );
        }
        if escapes.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"rows\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"id\": \"{}\", \"benchmark\": \"{}\", \"mode\": \"{}\", \
                 \"rarity_bits\": {}, \"payload\": \"{}\", \"coalition\": {}, \
                 \"sequential\": {}, \"steps\": {}, \"activations\": {}, \
                 \"corrupted\": {}, \"detected\": {}, \"missed\": {}, \
                 \"silent_internal\": {}, \"false_alarms\": {}, \"recovered\": {}, \
                 \"recovery_failed\": {}, \"guarantee\": {}",
                c.id,
                c.benchmark,
                mode_tag(c.mode),
                c.spec.rarity_bits,
                c.spec.kind.tag(),
                c.spec.coalition,
                c.spec.sequential,
                c.steps,
                c.activations,
                c.corrupted,
                c.detected,
                c.missed,
                c.silent_internal,
                c.false_alarms,
                c.recovered,
                c.recovery_failed,
                c.guarantee,
            );
            if include_timing {
                let _ = write!(out, ", \"latency_us\": {}", c.elapsed_us);
            }
            let _ = writeln!(
                out,
                " }}{}",
                if i + 1 < self.cells.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One planned grid cell (a design × corpus entry × trace index).
#[derive(Debug, Clone)]
struct CellPlan {
    design: usize,
    spec: TrojanSpec,
    trace: usize,
}

fn plan_cells(designs: &[DesignUnderTest], config: &GridConfig) -> Vec<CellPlan> {
    let specs = generate_corpus(&config.corpus, derive_seed(config.seed, 0x00C0_5015));
    let mut plans = Vec::with_capacity(specs.len() * designs.len() * config.traces);
    // Corpus-entry-major order: truncation under `max_cells` keeps whole
    // strata covered across every design before starting the next stratum.
    for spec in &specs {
        for design in 0..designs.len() {
            for trace in 0..config.traces {
                plans.push(CellPlan {
                    design,
                    spec: *spec,
                    trace,
                });
            }
        }
    }
    if let Some(cap) = config.max_cells {
        plans.truncate(cap);
    }
    plans
}

fn cell_id(design: &DesignUnderTest, spec: &TrojanSpec, trace: usize) -> String {
    format!(
        "{}/{}/t{:03}-{}/x{}",
        design.name,
        design.mode_tag(),
        spec.index,
        spec.stratum(),
        trace
    )
}

fn run_cell(design: &DesignUnderTest, config: &GridConfig, plan: &CellPlan) -> CellOutcome {
    let t0 = Instant::now();
    let spec = plan.spec;
    let planted = plant(&spec, &design.problem, &design.implementation);
    let dfg = design.problem.dfg();
    let mode = design.problem.mode();
    let mut datapath = Datapath::new(&design.problem, &design.implementation, &planted.library);
    // The cell seed depends only on the master seed and the cell's
    // identity — and deliberately *not* on the design's mode, so the same
    // benchmark in Detection vs DetectionRecovery sees the same traces
    // (a paired Fig. 3 contrast).
    let cell_seed = derive_seed(
        derive_seed(config.seed, spec.entry_seed),
        derive_seed(plan.trace as u64, fnv1a(design.name.as_bytes())),
    );
    let mut rng = StdRng::seed_from_u64(cell_seed);

    let mut outcome = CellOutcome {
        id: cell_id(design, &spec, plan.trace),
        benchmark: design.name.clone(),
        mode,
        spec,
        trace: plan.trace,
        steps: config.steps,
        activations: 0,
        corrupted: 0,
        detected: 0,
        missed: 0,
        silent_internal: 0,
        false_alarms: 0,
        recovered: 0,
        recovery_failed: 0,
        guarantee: mode == Mode::DetectionRecovery
            && spec.kind.is_memoryless()
            && spec.coalition <= 1
            && spec.rarity_bits >= config.guarantee_rarity,
        escape_steps: Vec::new(),
        elapsed_us: 0,
    };

    for step in 0..config.steps {
        let mut inputs = InputVector::from_seed(dfg, rng.random());
        if let Some(victim) = planted.victim {
            if rng.random_range(0..100) < u64::from(config.targeted_percent) {
                let crafted = (rng.random::<u64>() & !planted.mask) | planted.pattern;
                inputs.set(victim, 0, crafted);
            }
        }

        let golden_all = golden_eval(dfg, &inputs);
        let nc_all = datapath.execute(Role::Nc, &inputs).outputs;
        let rc_all = datapath.execute(Role::Rc, &inputs).outputs;
        let activated = nc_all != golden_all || rc_all != golden_all;
        let golden = sink_outputs(dfg, &golden_all);
        let nc = sink_outputs(dfg, &nc_all);
        let rc = sink_outputs(dfg, &rc_all);
        let mismatch = nc != rc;
        let corrupting = nc != golden || rc != golden;

        if activated {
            outcome.activations += 1;
        }
        if corrupting {
            outcome.corrupted += 1;
            if mismatch {
                outcome.detected += 1;
            } else {
                outcome.missed += 1;
                outcome.escape_steps.push(step);
            }
        } else if activated {
            outcome.silent_internal += 1;
        }
        if mismatch && !corrupting {
            outcome.false_alarms += 1;
        }
        if mismatch && mode == Mode::DetectionRecovery {
            let rec = sink_outputs(dfg, &datapath.execute(Role::Recovery, &inputs).outputs);
            if rec == golden {
                outcome.recovered += 1;
            } else {
                outcome.recovery_failed += 1;
            }
        }
    }
    outcome.elapsed_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
    outcome
}

/// FNV-1a over bytes — a stable, dependency-free name hash for seed
/// derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs the full campaign grid over `jobs` pool workers.
///
/// The report is identical for any `jobs` value: cells derive their
/// randomness from `(seed, cell identity)` and results come back in plan
/// order from [`troy_portfolio::run_indexed`].
#[must_use]
pub fn run_grid(designs: &[DesignUnderTest], config: &GridConfig, jobs: usize) -> CampaignReport {
    let plans = plan_cells(designs, config);
    let cells = troy_portfolio::run_indexed(jobs, plans.len(), |i| {
        let plan = &plans[i];
        run_cell(&designs[plan.design], config, plan)
    });
    CampaignReport {
        seed: config.seed,
        cells,
    }
}

/// Re-runs the single grid cell named by `cell_id` (as found in a
/// [`CellOutcome::id`] or an [`EscapeWitness`]) and returns its outcome,
/// or `None` when the id names no cell of this grid.
///
/// Together with the master seed this makes every witness replayable in
/// isolation: the outcome is bit-identical to the full run's.
#[must_use]
pub fn replay_cell(
    designs: &[DesignUnderTest],
    config: &GridConfig,
    cell: &str,
) -> Option<CellOutcome> {
    let plans = plan_cells(designs, config);
    plans
        .iter()
        .find(|p| cell_id(&designs[p.design], &p.spec, p.trace) == cell)
        .map(|p| run_cell(&designs[p.design], config, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::PayloadKind;
    use troyhls::{ExactSolver, GreedySolver};

    fn designs(modes: &[Mode]) -> Vec<DesignUnderTest> {
        modes
            .iter()
            .map(|&m| {
                DesignUnderTest::synthesize("diff2", m, &ExactSolver::new(), &SolveOptions::quick())
                    .unwrap()
            })
            .collect()
    }

    fn small_config() -> GridConfig {
        GridConfig {
            seed: 0xFEED,
            steps: 6,
            ..GridConfig::default()
        }
    }

    /// Zeroes the wall-clock field: cell equality in these tests is about
    /// the deterministic observations, never about timing.
    fn strip_timing(c: &CellOutcome) -> CellOutcome {
        CellOutcome {
            elapsed_us: 0,
            ..c.clone()
        }
    }

    #[test]
    fn grid_covers_every_cell_and_ids_are_unique() {
        let d = designs(&[Mode::DetectionRecovery, Mode::DetectionOnly]);
        let cfg = small_config();
        let report = run_grid(&d, &cfg, 2);
        assert_eq!(report.cells.len(), 37 * 2);
        let mut ids: Vec<&str> = report.cells.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), report.cells.len());
        assert!(report.steps() > 0);
    }

    #[test]
    fn max_cells_truncates_deterministically() {
        let d = designs(&[Mode::DetectionRecovery]);
        let cfg = GridConfig {
            max_cells: Some(5),
            ..small_config()
        };
        let report = run_grid(&d, &cfg, 3);
        assert_eq!(report.cells.len(), 5);
        let full = run_grid(&d, &small_config(), 1);
        for (a, b) in report.cells.iter().zip(&full.cells) {
            assert_eq!(
                strip_timing(a),
                strip_timing(b),
                "truncation is a prefix of the full grid"
            );
        }
    }

    #[test]
    fn detection_mode_cells_never_run_recovery() {
        let d = designs(&[Mode::DetectionOnly]);
        let report = run_grid(&d, &small_config(), 2);
        for c in &report.cells {
            assert_eq!(c.recovered + c.recovery_failed, 0, "{}", c.id);
            assert!(!c.guarantee, "guarantee slice is recovery-mode only");
        }
    }

    #[test]
    fn clean_cells_are_spotless() {
        let d = designs(&[Mode::DetectionRecovery]);
        let report = run_grid(&d, &small_config(), 2);
        let clean: Vec<&CellOutcome> = report
            .cells
            .iter()
            .filter(|c| c.spec.kind == PayloadKind::Clean)
            .collect();
        assert!(!clean.is_empty());
        for c in clean {
            assert_eq!(
                (c.activations, c.corrupted, c.false_alarms, c.recovered),
                (0, 0, 0, 0),
                "{}",
                c.id
            );
        }
    }

    #[test]
    fn replayed_cell_matches_the_grid_outcome() {
        let d = designs(&[Mode::DetectionRecovery]);
        let cfg = small_config();
        let report = run_grid(&d, &cfg, 4);
        // Replay an interesting cell (one that saw corruption) plus the
        // first cell regardless.
        let interesting = report
            .cells
            .iter()
            .find(|c| c.corrupted > 0)
            .unwrap_or(&report.cells[0]);
        let replayed = replay_cell(&d, &cfg, &interesting.id).expect("cell exists");
        assert_eq!(strip_timing(&replayed), strip_timing(interesting));
        assert!(replay_cell(&d, &cfg, "no/such/cell").is_none());
    }

    #[test]
    fn greedy_designs_also_run() {
        let d = vec![DesignUnderTest::synthesize(
            "polynom",
            Mode::DetectionRecovery,
            &GreedySolver::new(),
            &SolveOptions::quick(),
        )
        .unwrap()];
        let cfg = GridConfig {
            max_cells: Some(8),
            ..small_config()
        };
        let report = run_grid(&d, &cfg, 2);
        assert_eq!(report.cells.len(), 8);
    }

    #[test]
    fn json_is_deterministic_without_timing() {
        let d = designs(&[Mode::DetectionRecovery]);
        let cfg = GridConfig {
            max_cells: Some(6),
            ..small_config()
        };
        let a = run_grid(&d, &cfg, 1).to_json(false);
        let b = run_grid(&d, &cfg, 4).to_json(false);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": 1"));
        assert!(a.contains("\"rows\": ["));
        assert!(!a.contains("latency_us\":"));
        let timed = run_grid(&d, &cfg, 1).to_json(true);
        assert!(timed.contains("\"latency_us\":"));
    }

    #[test]
    fn unknown_benchmark_is_a_typed_error() {
        let e = DesignUnderTest::synthesize(
            "nope",
            Mode::DetectionOnly,
            &ExactSolver::new(),
            &SolveOptions::quick(),
        )
        .unwrap_err();
        assert!(e.contains("unknown benchmark"));
    }
}
