//! Hardware-Trojan models: trigger mechanisms and payload functions.
//!
//! Follows the paper's Section 3.1 taxonomy:
//!
//! - triggers are **combinational** (a rare operand pattern, Fig. 2a) or
//!   **sequential** (a counter over consecutive matching operations,
//!   Fig. 2b);
//! - payloads alter the host core's output. Memory-*less* payloads (the
//!   paper's scope) corrupt the output only while the trigger holds;
//!   [`Payload::Latched`] models the Fig. 3 memory*ful* contrast that stays
//!   active forever once fired.

/// Trigger mechanism: decides, per executed operation, whether the payload
/// is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fires when `(a & mask_a) == pattern_a && (b & mask_b) == pattern_b`
    /// (Fig. 2a). Wider masks = rarer trigger.
    Combinational {
        /// Mask applied to the first operand.
        mask_a: u64,
        /// Required first-operand bits under `mask_a`.
        pattern_a: u64,
        /// Mask applied to the second operand.
        mask_b: u64,
        /// Required second-operand bits under `mask_b`.
        pattern_b: u64,
    },
    /// A `k`-bit counter incremented on every executed operation whose
    /// first operand matches `(a & mask) == pattern`; a non-matching
    /// operation resets it (the paper: the trigger "will be reset
    /// otherwise"). Fires while the count reaches `threshold` (Fig. 2b).
    Sequential {
        /// Mask applied to the first operand.
        mask: u64,
        /// Required bits under `mask`.
        pattern: u64,
        /// Consecutive matches needed to set the trigger.
        threshold: u32,
    },
}

/// The operand mask selecting the low `bits` bits — the campaign engines'
/// shared notion of trigger *rarity* (wider mask = rarer trigger, firing
/// once per `2^bits` uniform operand values). Saturates at the full word:
/// `bits >= 64` yields an exact-match mask.
#[must_use]
pub fn rarity_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

impl Trigger {
    /// A combinational trigger matching one exact first-operand value.
    #[must_use]
    pub fn on_operand_a(value: u64) -> Self {
        Trigger::Combinational {
            mask_a: u64::MAX,
            pattern_a: value,
            mask_b: 0,
            pattern_b: 0,
        }
    }
}

/// Payload function: how an activated Trojan corrupts the host output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// XOR a mask into the result (Fig. 2's XOR payload).
    XorMask(u64),
    /// Add a constant offset (wrapping) — the "offset" fault model of
    /// Section 3.2.
    AddOffset(u64),
    /// Memoryful payload (Fig. 3): once triggered, keeps XOR-ing the mask
    /// into every subsequent result of the instance. Outside the paper's
    /// recovery scope — shipped to demonstrate *why* it is excluded.
    Latched(u64),
}

/// A Trojan embedded in one vendor's IP-core product. Every instance of
/// that product carries it, each with private sequential/latch state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trojan {
    /// When it activates.
    pub trigger: Trigger,
    /// What it does.
    pub payload: Payload,
}

/// Per-instance Trojan state (sequential counter / latch flip-flop).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrojanState {
    counter: u32,
    latched: bool,
}

impl TrojanState {
    /// Fresh state (counter 0, latch clear).
    #[must_use]
    pub fn new() -> Self {
        TrojanState::default()
    }

    /// Whether the latch has fired (memoryful payloads only).
    #[must_use]
    pub fn is_latched(&self) -> bool {
        self.latched
    }
}

impl Trojan {
    /// Executes the Trojan logic for one host operation.
    ///
    /// `result` is the correct output of the host core for operands
    /// `(a, b)`; returns the (possibly corrupted) output and updates the
    /// instance state.
    #[must_use]
    pub fn apply(&self, state: &mut TrojanState, a: u64, b: u64, result: u64) -> u64 {
        let fired = match self.trigger {
            Trigger::Combinational {
                mask_a,
                pattern_a,
                mask_b,
                pattern_b,
            } => (a & mask_a) == pattern_a && (b & mask_b) == pattern_b,
            Trigger::Sequential {
                mask,
                pattern,
                threshold,
            } => {
                if (a & mask) == pattern {
                    state.counter = state.counter.saturating_add(1);
                } else {
                    state.counter = 0; // trigger condition reset
                }
                state.counter >= threshold
            }
        };
        match self.payload {
            Payload::XorMask(mask) => {
                if fired {
                    result ^ mask
                } else {
                    result
                }
            }
            Payload::AddOffset(delta) => {
                if fired {
                    result.wrapping_add(delta)
                } else {
                    result
                }
            }
            Payload::Latched(mask) => {
                if fired {
                    state.latched = true;
                }
                if state.latched {
                    result ^ mask
                } else {
                    result
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_trigger_exact_pattern() {
        let t = Trojan {
            trigger: Trigger::on_operand_a(0xDEAD),
            payload: Payload::XorMask(0xFF),
        };
        let mut st = TrojanState::new();
        assert_eq!(t.apply(&mut st, 1, 2, 3), 3); // dormant
        assert_eq!(t.apply(&mut st, 0xDEAD, 2, 3), 3 ^ 0xFF); // fired
        assert_eq!(t.apply(&mut st, 1, 2, 3), 3); // memory-less: clean again
    }

    #[test]
    fn combinational_two_operand_condition() {
        // Fig. 2a: fires when A = 0 and B = 0 (low bits).
        let t = Trojan {
            trigger: Trigger::Combinational {
                mask_a: 0b11,
                pattern_a: 0,
                mask_b: 0b11,
                pattern_b: 0,
            },
            payload: Payload::XorMask(1),
        };
        let mut st = TrojanState::new();
        assert_eq!(t.apply(&mut st, 4, 8, 10), 11); // both low bits zero
        assert_eq!(t.apply(&mut st, 5, 8, 10), 10); // A low bit set
    }

    #[test]
    fn sequential_trigger_counts_consecutive_matches() {
        let t = Trojan {
            trigger: Trigger::Sequential {
                mask: 0xF,
                pattern: 0xA,
                threshold: 3,
            },
            payload: Payload::AddOffset(100),
        };
        let mut st = TrojanState::new();
        assert_eq!(t.apply(&mut st, 0xA, 0, 7), 7); // count 1
        assert_eq!(t.apply(&mut st, 0x1A, 0, 7), 7); // count 2
        assert_eq!(t.apply(&mut st, 0x2A, 0, 7), 107); // count 3: fired
        assert_eq!(t.apply(&mut st, 0x3A, 0, 7), 107); // stays while matching
        assert_eq!(t.apply(&mut st, 0x1, 0, 7), 7); // reset on mismatch
        assert_eq!(
            st,
            TrojanState {
                counter: 0,
                latched: false
            }
        );
    }

    #[test]
    fn latched_payload_persists_after_trigger_clears() {
        let t = Trojan {
            trigger: Trigger::on_operand_a(42),
            payload: Payload::Latched(0b1000),
        };
        let mut st = TrojanState::new();
        assert_eq!(t.apply(&mut st, 1, 1, 0), 0);
        assert!(!st.is_latched());
        assert_eq!(t.apply(&mut st, 42, 1, 0), 0b1000);
        assert!(st.is_latched());
        // Trigger condition gone, corruption persists (Fig. 3).
        assert_eq!(t.apply(&mut st, 1, 1, 0), 0b1000);
    }

    #[test]
    fn memoryless_payload_deactivates_with_trigger() {
        // The property the paper's recovery relies on: feed different
        // operand values and the Trojan is dormant again.
        let t = Trojan {
            trigger: Trigger::on_operand_a(7),
            payload: Payload::XorMask(u64::MAX),
        };
        let mut st = TrojanState::new();
        let _ = t.apply(&mut st, 7, 0, 1); // fire once
        assert_eq!(t.apply(&mut st, 8, 0, 1), 1); // clean on other inputs
    }

    #[test]
    fn state_default_is_clean() {
        assert_eq!(TrojanState::new(), TrojanState::default());
        assert!(!TrojanState::new().is_latched());
    }

    #[test]
    fn rarity_mask_saturates_at_word_width() {
        assert_eq!(rarity_mask(0), 0);
        assert_eq!(rarity_mask(1), 1);
        assert_eq!(rarity_mask(12), 0xFFF);
        assert_eq!(rarity_mask(63), u64::MAX >> 1);
        assert_eq!(rarity_mask(64), u64::MAX);
        assert_eq!(rarity_mask(200), u64::MAX);
    }
}
