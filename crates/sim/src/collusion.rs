//! Collusion modeling: why Rule 2 for detection exists.
//!
//! The paper (after Rajendran et al.) warns that two units *from the same
//! vendor* in a direct producer→consumer relation can collude: the
//! upstream unit embeds a covert marker in its (otherwise correct-looking)
//! output, and the downstream unit of the same product recognizes the
//! marker and fires its payload — a trigger that is essentially impossible
//! to hit with external test vectors. Rule 2 forbids same-vendor
//! parent-child (and same-child sibling) bindings precisely to cut this
//! channel.
//!
//! [`ColludingTrojan`] implements that attacker: the upstream instance
//! *steers* its output so the low marker bits carry a secret tag; any
//! instance of the same product that later consumes a tagged operand
//! corrupts its result. Because the steering offset is tiny and the tag is
//! checked only inside the same product, the attack is invisible unless
//! producer and consumer share the vendor.

use troy_dfg::NodeId;
use troyhls::{Implementation, License, Role, SynthesisProblem};

use crate::semantics::{eval_op, operands, InputVector};

/// The colluding pair of behaviors embedded in one vendor product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColludingTrojan {
    /// Tag value hidden in the low [`ColludingTrojan::tag_bits`] bits of
    /// every output the infected product produces.
    pub tag: u64,
    /// Width of the marker field.
    pub tag_bits: u32,
    /// XOR corruption applied when a tagged operand is consumed.
    pub payload_mask: u64,
}

impl ColludingTrojan {
    fn mask(&self) -> u64 {
        if self.tag_bits >= 64 {
            u64::MAX
        } else {
            (1 << self.tag_bits) - 1
        }
    }

    /// Output steering by the upstream unit: force the marker bits to the
    /// tag. The numeric error is at most `2^tag_bits - 1` — small enough to
    /// masquerade as rounding in the attacker's cover story.
    #[must_use]
    pub fn steer(&self, value: u64) -> u64 {
        (value & !self.mask()) | (self.tag & self.mask())
    }

    /// Whether an operand carries the marker.
    #[must_use]
    pub fn senses(&self, operand: u64) -> bool {
        (operand & self.mask()) == (self.tag & self.mask())
    }
}

/// Outcome of executing one computation under a colluding product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollusionOutcome {
    /// Sink outputs of the computation.
    pub outputs: Vec<u64>,
    /// Ops (of this computation) whose payload fired via a tagged operand.
    pub fired: Vec<NodeId>,
}

/// Executes one computation with `license`'s product colluding.
///
/// Returns the sink outputs plus which consumers fired. With a
/// rule-compliant binding the `fired` list is empty for every role — the
/// marker never flows between two instances of the same product.
///
/// # Panics
///
/// Panics if the implementation is missing assignments for `role`.
#[must_use]
pub fn execute_with_collusion(
    problem: &SynthesisProblem,
    imp: &Implementation,
    role: Role,
    license: License,
    trojan: &ColludingTrojan,
    inputs: &InputVector,
) -> CollusionOutcome {
    let dfg = problem.dfg();
    let mut outputs: Vec<Option<u64>> = vec![None; dfg.len()];
    let mut fired = Vec::new();
    // Cycle order is what the hardware sees; topo order is equivalent for
    // data flow and simpler here.
    for op in dfg.topo_order() {
        let a = imp.assignment(op, role).expect("complete implementation");
        let on_infected = a.vendor == license.vendor && dfg.kind(op).ip_type() == license.ip_type;
        let (x, y) = operands(dfg, op, &outputs, inputs);
        let mut value = eval_op(dfg.kind(op), x, y);
        if on_infected {
            // Downstream role: corrupt when a tagged operand arrives from a
            // *producer* (primary inputs can't be steered by the product).
            let tagged_producer = dfg
                .preds(op)
                .iter()
                .enumerate()
                .any(|(slot, _)| trojan.senses(if slot == 0 { x } else { y }));
            if tagged_producer {
                value ^= trojan.payload_mask;
                fired.push(op);
            }
            // Upstream role: every output of the product carries the tag.
            value = trojan.steer(value);
        }
        outputs[op.index()] = Some(value);
    }
    let all: Vec<u64> = outputs.into_iter().map(|o| o.expect("topo")).collect();
    CollusionOutcome {
        outputs: crate::semantics::sink_outputs(dfg, &all),
        fired,
    }
}

/// Checks a design against collusion by *every* product it uses, in every
/// computation. Returns the products whose colluding pair fired anywhere.
///
/// Rule-2-compliant designs return an empty list; this is the dynamic
/// counterpart of [`troyhls::collusion_exposure`].
#[must_use]
pub fn collusion_audit(
    problem: &SynthesisProblem,
    imp: &Implementation,
    trojan: &ColludingTrojan,
    inputs: &InputVector,
) -> Vec<License> {
    let mut vulnerable = Vec::new();
    for license in imp.licenses_used(problem) {
        let fired_any = Role::for_mode(problem.mode()).iter().any(|&role| {
            !execute_with_collusion(problem, imp, role, license, trojan, inputs)
                .fired
                .is_empty()
        });
        if fired_any {
            vulnerable.push(license);
        }
    }
    vulnerable
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::{benchmarks, IpTypeId, OpKind};
    use troyhls::{Assignment, Catalog, ExactSolver, Mode, SolveOptions, Synthesizer, VendorId};

    fn trojan() -> ColludingTrojan {
        ColludingTrojan {
            tag: 0b1011,
            tag_bits: 4,
            payload_mask: 0xFFFF_0000,
        }
    }

    #[test]
    fn steering_preserves_high_bits_and_sets_tag() {
        let t = trojan();
        let v = t.steer(0xABCD_EF12);
        assert_eq!(v & 0xF, 0b1011);
        assert_eq!(v & !0xF, 0xABCD_EF12 & !0xFu64);
        assert!(t.senses(v));
        assert!(!t.senses(v ^ 1));
    }

    #[test]
    fn compliant_designs_pass_the_collusion_audit() {
        for mode in [Mode::DetectionOnly, Mode::DetectionRecovery] {
            let p = troyhls::SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
                .mode(mode)
                .detection_latency(4)
                .recovery_latency(3)
                .build()
                .unwrap();
            let s = ExactSolver::new()
                .synthesize(&p, &SolveOptions::quick())
                .unwrap();
            let iv = InputVector::from_seed(p.dfg(), 3);
            let vulnerable = collusion_audit(&p, &s.implementation, &trojan(), &iv);
            assert!(vulnerable.is_empty(), "{mode}: {vulnerable:?}");
        }
    }

    #[test]
    fn same_vendor_parent_child_is_exploited() {
        // Hand-build a rule-VIOLATING binding: two chained muls on one
        // vendor. The marker planted by the first fires the second.
        let mut g = troy_dfg::Dfg::new("chain");
        let a = g.add_op_with(OpKind::Mul, "a", 2);
        let b = g.add_op_with(OpKind::Mul, "b", 2);
        g.add_edge(a, b).unwrap();
        let p = troyhls::SynthesisProblem::builder(g, Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(2)
            .build()
            .unwrap();
        let mut imp = Implementation::new(2);
        let ven = VendorId::new(0);
        imp.assign(
            a,
            Role::Nc,
            Assignment {
                cycle: 1,
                vendor: ven,
            },
        );
        imp.assign(
            b,
            Role::Nc,
            Assignment {
                cycle: 2,
                vendor: ven,
            },
        ); // violation
        imp.assign(
            a,
            Role::Rc,
            Assignment {
                cycle: 1,
                vendor: VendorId::new(1),
            },
        );
        imp.assign(
            b,
            Role::Rc,
            Assignment {
                cycle: 2,
                vendor: VendorId::new(2),
            },
        );
        let license = License {
            vendor: ven,
            ip_type: IpTypeId::MULTIPLIER,
        };
        let iv = InputVector::from_seed(p.dfg(), 9);
        let out = execute_with_collusion(&p, &imp, Role::Nc, license, &trojan(), &iv);
        assert_eq!(out.fired, vec![b], "downstream unit must fire");
        let audit = collusion_audit(&p, &imp, &trojan(), &iv);
        assert_eq!(audit, vec![license]);
    }

    #[test]
    fn marker_does_not_cross_vendors() {
        // Same chain, compliant binding: no firing even though the marker
        // is planted — the consumer belongs to a different product.
        let mut g = troy_dfg::Dfg::new("chain");
        let a = g.add_op_with(OpKind::Mul, "a", 2);
        let b = g.add_op_with(OpKind::Mul, "b", 2);
        g.add_edge(a, b).unwrap();
        let p = troyhls::SynthesisProblem::builder(g, Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(2)
            .build()
            .unwrap();
        let mut imp = Implementation::new(2);
        imp.assign(
            a,
            Role::Nc,
            Assignment {
                cycle: 1,
                vendor: VendorId::new(0),
            },
        );
        imp.assign(
            b,
            Role::Nc,
            Assignment {
                cycle: 2,
                vendor: VendorId::new(1),
            },
        );
        imp.assign(
            a,
            Role::Rc,
            Assignment {
                cycle: 1,
                vendor: VendorId::new(2),
            },
        );
        imp.assign(
            b,
            Role::Rc,
            Assignment {
                cycle: 2,
                vendor: VendorId::new(3),
            },
        );
        let iv = InputVector::from_seed(p.dfg(), 9);
        assert!(collusion_audit(&p, &imp, &trojan(), &iv).is_empty());
    }

    #[test]
    fn steering_error_is_bounded() {
        let t = trojan();
        for v in [0u64, 1, 0xFFFF, u64::MAX, 0x1234_5678] {
            let d = t.steer(v).abs_diff(v);
            assert!(d < 16, "steering moved {v} by {d}");
        }
    }
}
