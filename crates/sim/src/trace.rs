//! VCD (Value Change Dump) tracing: watch a mission step in GTKWave.
//!
//! [`trace_run`] executes the detection phase (and recovery, when the
//! monitor fires) cycle by cycle and records every operation copy's result
//! as a 64-bit wire, plus the `trojan_detected` flag — the same view a
//! logic analyzer would give on the paper's datapath.

use std::fmt::Write as _;

use troyhls::{Implementation, Mode, Role, SynthesisProblem};

use crate::datapath::{CoreLibrary, Datapath};
use crate::semantics::{golden_eval, sink_outputs, InputVector};

/// One recorded signal: a copy's value, valid from its schedule cycle on.
#[derive(Debug, Clone)]
struct Signal {
    name: String,
    id: String,
    cycle: usize,
    value: u64,
}

/// Executes one mission step and renders it as a VCD document.
///
/// Detection cycles occupy timestamps `1..=λ_det`; when the NC/RC
/// comparison fires, recovery cycles follow at `λ_det+1..=λ_total` and the
/// `trojan_detected` flag rises at the comparison point.
///
/// # Panics
///
/// Panics if the implementation is incomplete for the problem's mode.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troy_sim::{trace_run, CoreLibrary, InputVector};
/// use troyhls::{Catalog, ExactSolver, Mode, SolveOptions, SynthesisProblem, Synthesizer};
///
/// let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionRecovery)
///     .detection_latency(4)
///     .recovery_latency(3)
///     .build()?;
/// let d = ExactSolver::new().synthesize(&p, &SolveOptions::quick())?;
/// let vcd = trace_run(
///     &p,
///     &d.implementation,
///     &CoreLibrary::new(),
///     &InputVector::from_seed(p.dfg(), 1),
/// );
/// assert!(vcd.starts_with("$date"));
/// assert!(vcd.contains("$var wire 64"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn trace_run(
    problem: &SynthesisProblem,
    imp: &Implementation,
    library: &CoreLibrary,
    inputs: &InputVector,
) -> String {
    let dfg = problem.dfg();
    let det = problem.detection_latency();
    let mut dp = Datapath::new(problem, imp, library);

    // Execute phases and collect per-copy values with their cycles.
    let mut signals: Vec<Signal> = Vec::new();
    let mut next_id = 33u8; // VCD identifier characters start at '!'
    let mut mint_id = move || {
        let id = format!("{}{}", next_id as char, (next_id / 2) as char);
        next_id = if next_id >= 125 { 33 } else { next_id + 1 };
        id
    };

    let nc = dp.execute(Role::Nc, inputs);
    let rc = dp.execute(Role::Rc, inputs);
    let mismatch = sink_outputs(dfg, &nc.outputs) != sink_outputs(dfg, &rc.outputs);
    let recovery = (mismatch && problem.mode() == Mode::DetectionRecovery)
        .then(|| dp.execute(Role::Recovery, inputs));

    for op in dfg.node_ids() {
        for (role, outputs) in [(Role::Nc, Some(&nc)), (Role::Rc, Some(&rc))] {
            let a = imp.assignment(op, role).expect("complete");
            signals.push(Signal {
                name: format!("{op}_{role}"),
                id: mint_id(),
                cycle: a.cycle,
                value: outputs.expect("detection always runs").outputs[op.index()],
            });
        }
        if let Some(r) = &recovery {
            let a = imp.assignment(op, Role::Recovery).expect("complete");
            signals.push(Signal {
                name: format!("{op}_R"),
                id: mint_id(),
                cycle: a.cycle,
                value: r.outputs[op.index()],
            });
        }
    }

    let golden = sink_outputs(dfg, &golden_eval(dfg, inputs));
    let _ = &golden;

    // Render the VCD.
    let mut vcd = String::new();
    let _ = writeln!(vcd, "$date troyhls trace $end");
    let _ = writeln!(vcd, "$version troy-sim $end");
    let _ = writeln!(vcd, "$timescale 1ns $end");
    let _ = writeln!(vcd, "$scope module {} $end", dfg.name().replace(' ', "_"));
    for s in &signals {
        let _ = writeln!(vcd, "$var wire 64 {} {} $end", s.id, s.name);
    }
    let _ = writeln!(vcd, "$var wire 1 TD trojan_detected $end");
    let _ = writeln!(vcd, "$upscope $end");
    let _ = writeln!(vcd, "$enddefinitions $end");

    let _ = writeln!(vcd, "#0");
    let _ = writeln!(vcd, "b0 TD");
    let total = problem.total_latency();
    for cycle in 1..=total {
        let mut stanza = String::new();
        for s in signals.iter().filter(|s| s.cycle == cycle) {
            let _ = writeln!(stanza, "b{:b} {}", s.value, s.id);
        }
        if cycle == det && mismatch {
            let _ = writeln!(stanza, "b1 TD");
        }
        if !stanza.is_empty() {
            let _ = writeln!(vcd, "#{cycle}");
            vcd.push_str(&stanza);
        }
    }
    let _ = writeln!(vcd, "#{}", total + 1);
    vcd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojan::{Payload, Trigger, Trojan};
    use troy_dfg::{benchmarks, IpTypeId, NodeId};
    use troyhls::{Catalog, ExactSolver, License, SolveOptions, Synthesizer};

    fn solved() -> (SynthesisProblem, Implementation) {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionRecovery)
            .detection_latency(4)
            .recovery_latency(3)
            .build()
            .unwrap();
        let s = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        (p, s.implementation)
    }

    #[test]
    fn clean_trace_has_detection_signals_only() {
        let (p, imp) = solved();
        let vcd = trace_run(
            &p,
            &imp,
            &CoreLibrary::new(),
            &InputVector::from_seed(p.dfg(), 4),
        );
        // 5 ops x 2 detection roles declared; no recovery signals.
        assert_eq!(vcd.matches("$var wire 64").count(), 10);
        assert!(!vcd.contains("_R "));
        assert!(!vcd.contains("b1 TD"));
    }

    #[test]
    fn infected_trace_shows_alarm_and_recovery_signals() {
        let (p, imp) = solved();
        let iv = InputVector::from_seed(p.dfg(), 4);
        let victim = NodeId::new(2);
        let vendor = imp.assignment(victim, Role::Nc).unwrap().vendor;
        let mut lib = CoreLibrary::new();
        lib.infect(
            License {
                vendor,
                ip_type: IpTypeId::MULTIPLIER,
            },
            Trojan {
                trigger: Trigger::on_operand_a(iv.values(victim)[0]),
                payload: Payload::XorMask(0xFF),
            },
        );
        let vcd = trace_run(&p, &imp, &lib, &iv);
        assert_eq!(vcd.matches("$var wire 64").count(), 15, "recovery traced");
        assert!(vcd.contains("b1 TD"), "alarm rises");
        // Alarm rises exactly at the end of detection (cycle 4 stanza).
        let idx_alarm = vcd.find("b1 TD").unwrap();
        let idx_c4 = vcd.find("#4").unwrap();
        let idx_c5 = vcd.find("#5").unwrap();
        assert!(idx_c4 < idx_alarm && idx_alarm < idx_c5);
    }

    #[test]
    fn every_timestamp_is_monotonic() {
        let (p, imp) = solved();
        let vcd = trace_run(
            &p,
            &imp,
            &CoreLibrary::new(),
            &InputVector::from_seed(p.dfg(), 9),
        );
        let stamps: Vec<usize> = vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#').and_then(|n| n.parse().ok()))
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] < w[1]), "{stamps:?}");
    }

    #[test]
    fn signal_ids_are_unique() {
        let (p, imp) = solved();
        let vcd = trace_run(
            &p,
            &imp,
            &CoreLibrary::new(),
            &InputVector::from_seed(p.dfg(), 2),
        );
        let ids: Vec<&str> = vcd
            .lines()
            .filter(|l| l.starts_with("$var wire 64"))
            .map(|l| l.split_whitespace().nth(3).unwrap())
            .collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
