//! Adversarial-input suite for the textual DFG parser.
//!
//! The synthesis service accepts DFG text over the wire, so the parser
//! is an attack surface: every corpus file under `tests/corpus/` and
//! every seeded mutation of them must produce either a parsed graph or a
//! typed [`ParseDfgError`] carrying a plausible line/column — never a
//! panic, never unbounded memory.

use troy_dfg::{parse_dfg, ParseDfgError, MAX_LABEL_LEN, MAX_LINE_LEN, MAX_OPS};

/// Splitmix64 — the same mixer the chaos injector in `troy-resilience`
/// derives its fault schedules from (duplicated here because `troy-dfg`
/// sits below it in the crate graph).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn corpus(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Asserts the error's position points into the input (or one line past
/// it, for the end-of-input missing-header case).
fn position_is_plausible(text: &str, err: &ParseDfgError) {
    let lines = text.lines().count().max(1);
    assert!(
        err.line() >= 1 && err.line() <= lines,
        "line {} outside 1..={lines}",
        err.line()
    );
    assert!(err.column() >= 1, "columns are 1-based");
}

#[test]
fn corpus_files_yield_typed_errors_with_positions() {
    // (file, line, column, message fragment) — pinned so the corpus also
    // documents the diagnostics the service relays to clients.
    let cases = [
        ("dup_ids.dfg", 4, 4, "duplicate op label `a`"),
        ("self_loop.dfg", 4, 8, "self loop"),
        ("cycle_unreachable.dfg", 8, 8, "would create a cycle"),
        ("oversized_label.dfg", 3, 4, "exceeds the 64-byte limit"),
        ("missing_header.dfg", 2, 1, "header"),
        (
            "bad_arity.dfg",
            4,
            1,
            "wrong number of arguments for `edge`",
        ),
        ("unknown_op.dfg", 3, 6, "unknown op mnemonic `frobnicate`"),
    ];
    for (file, line, column, fragment) in cases {
        let text = corpus(file);
        let err = parse_dfg(&text).unwrap_err();
        assert_eq!((err.line(), err.column()), (line, column), "{file}: {err}");
        assert!(err.to_string().contains(fragment), "{file}: {err}");
        position_is_plausible(&text, &err);
    }
}

#[test]
fn the_ok_seed_parses() {
    let g = parse_dfg(&corpus("ok_small.dfg")).expect("seed is well-formed");
    assert_eq!(g.len(), 3);
    assert_eq!(g.edge_count(), 2);
}

#[test]
fn oversized_inputs_are_bounded_not_buffered() {
    // One monster line.
    let long_line = format!("dfg t\nop a {}\n", "m".repeat(2 * MAX_LINE_LEN));
    let err = parse_dfg(&long_line).unwrap_err();
    assert_eq!(err.line(), 2);
    assert!(err.to_string().contains("byte limit"), "{err}");

    // More ops than the graph cap. Build MAX_OPS valid ops, then one more.
    let mut text = String::from("dfg caps\n");
    for i in 0..=MAX_OPS {
        use std::fmt::Write as _;
        let _ = writeln!(text, "op n{i} add");
    }
    let err = parse_dfg(&text).unwrap_err();
    assert_eq!(err.line(), 2 + MAX_OPS);
    assert!(err.to_string().contains("op limit"), "{err}");

    // A label exactly one byte over.
    let over = "q".repeat(MAX_LABEL_LEN + 1);
    assert!(parse_dfg(&format!("dfg t\nop {over} add\n")).is_err());
}

/// FuCE-style input hammering: splice, flip, truncate and repeat corpus
/// bytes under a seeded schedule; the parser must never panic and every
/// rejection must carry a plausible position.
#[test]
fn seeded_mutations_never_panic_and_errors_stay_positioned() {
    let seeds: Vec<String> = [
        "ok_small.dfg",
        "dup_ids.dfg",
        "self_loop.dfg",
        "cycle_unreachable.dfg",
        "oversized_label.dfg",
        "missing_header.dfg",
        "bad_arity.dfg",
        "unknown_op.dfg",
    ]
    .iter()
    .map(|f| corpus(f))
    .collect();

    let mut parsed = 0usize;
    let mut rejected = 0usize;
    for round in 0..256u64 {
        let h = mix(0x4675_7a7a ^ round); // "Fuzz"
        let base = seeds[(h % seeds.len() as u64) as usize].clone();
        let mut bytes = base.into_bytes();
        match (h >> 8) % 5 {
            // Truncate at an arbitrary point.
            0 => bytes.truncate((h >> 16) as usize % (bytes.len() + 1)),
            // Flip one byte.
            1 if !bytes.is_empty() => {
                let pos = (h >> 16) as usize % bytes.len();
                bytes[pos] ^= (1 << ((h >> 3) % 8)) as u8;
            }
            // Splice a random slice of another corpus file into the middle.
            2 => {
                let other = &seeds[((h >> 24) % seeds.len() as u64) as usize];
                let cut = (h >> 16) as usize % (bytes.len() + 1);
                let take = (h >> 32) as usize % (other.len() + 1);
                let mut spliced = bytes[..cut].to_vec();
                spliced.extend_from_slice(&other.as_bytes()[..take]);
                spliced.extend_from_slice(&bytes[cut..]);
                bytes = spliced;
            }
            // Repeat the whole input a few times (duplicate everything).
            3 => {
                let reps = 2 + (h >> 16) % 3;
                let once = bytes.clone();
                for _ in 1..reps {
                    bytes.extend_from_slice(&once);
                }
            }
            // Inject raw random bytes (likely invalid UTF-8 sequences).
            _ => {
                let pos = (h >> 16) as usize % (bytes.len() + 1);
                let junk: Vec<u8> = (0..8).map(|i| (h >> (i * 7)) as u8).collect();
                bytes.splice(pos..pos, junk);
            }
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        match parse_dfg(&text) {
            Ok(_) => parsed += 1,
            Err(e) => {
                position_is_plausible(&text, &e);
                rejected += 1;
            }
        }
    }
    assert_eq!(parsed + rejected, 256);
    assert!(rejected > 0, "mutations must exercise the reject paths");
}
