//! Property tests over randomly generated DFGs.

use proptest::prelude::*;
use troy_dfg::{
    min_concurrency, parse_dfg, random_dfg, write_dfg, IpTypeId, RandomDfgConfig, ScheduleWindows,
};

fn config() -> impl Strategy<Value = (RandomDfgConfig, u64)> {
    (1usize..=40, 1usize..=8, 0u8..=100, 0u8..=100, any::<u64>()).prop_map(
        |(ops, max_depth, mul, bias, seed)| {
            (
                RandomDfgConfig {
                    ops,
                    max_depth,
                    mul_ratio_percent: mul,
                    edge_bias_percent: bias,
                },
                seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_dfgs_validate_and_respect_bounds((cfg, seed) in config()) {
        let g = random_dfg(&cfg, seed);
        prop_assert_eq!(g.len(), cfg.ops);
        prop_assert!(g.critical_path_len() <= cfg.max_depth);
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn topo_order_is_a_valid_linearization((cfg, seed) in config()) {
        let g = random_dfg(&cfg, seed);
        let order = g.topo_order();
        prop_assert_eq!(order.len(), g.len());
        let pos = |n: troy_dfg::NodeId| order.iter().position(|&x| x == n).unwrap();
        for (a, b) in g.edges() {
            prop_assert!(pos(a) < pos(b));
        }
    }

    #[test]
    fn windows_are_consistent_at_any_feasible_latency((cfg, seed) in config(), slack in 0usize..4) {
        let g = random_dfg(&cfg, seed);
        let latency = g.critical_path_len() + slack;
        let w = ScheduleWindows::compute(&g, latency).expect("latency >= critical path");
        for n in g.node_ids() {
            prop_assert!(w.asap(n) >= 1);
            prop_assert!(w.asap(n) <= w.alap(n));
            prop_assert!(w.alap(n) <= latency);
            // Parents strictly precede children in both bounds.
            for &s in g.succs(n) {
                prop_assert!(w.asap(n) < w.asap(s));
                prop_assert!(w.alap(n) < w.alap(s));
            }
        }
    }

    #[test]
    fn tighter_latency_never_reduces_min_concurrency((cfg, seed) in config()) {
        let g = random_dfg(&cfg, seed);
        let cp = g.critical_path_len();
        for t in [IpTypeId::ADDER, IpTypeId::MULTIPLIER] {
            let tight = min_concurrency(&g, cp, t);
            let loose = min_concurrency(&g, cp + 3, t);
            prop_assert!(loose <= tight);
        }
    }

    #[test]
    fn text_format_round_trips((cfg, seed) in config()) {
        let g = random_dfg(&cfg, seed);
        let text = write_dfg(&g);
        let back = parse_dfg(&text).expect("own output parses");
        prop_assert_eq!(back.len(), g.len());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        prop_assert_eq!(back.critical_path_len(), g.critical_path_len());
        for n in g.node_ids() {
            prop_assert_eq!(back.kind(n), g.kind(n));
        }
    }

    #[test]
    fn sibling_pairs_are_symmetric_and_real((cfg, seed) in config()) {
        let g = random_dfg(&cfg, seed);
        for (a, b) in g.sibling_pairs() {
            prop_assert!(a < b);
            // They must genuinely share a child.
            let share = g
                .node_ids()
                .any(|n| g.preds(n).contains(&a) && g.preds(n).contains(&b));
            prop_assert!(share);
        }
    }
}
