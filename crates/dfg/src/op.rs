//! Operation kinds carried by DFG nodes.
//!
//! The DAC'14 flow partitions operations into *IP-core types*: every
//! operation must execute on an IP core whose type matches. The paper's
//! experiments use three types — multipliers, adders and "other operators" —
//! so [`OpKind`] maps onto a coarser [`IpTypeId`] via [`OpKind::ip_type`].

use std::fmt;
use std::str::FromStr;

/// The concrete arithmetic performed by a DFG node.
///
/// `Add`/`Sub` run on adder cores, `Mul` on multiplier cores, and the
/// remaining kinds on the paper's third "other operators" core type.
///
/// # Examples
///
/// ```
/// use troy_dfg::{IpTypeId, OpKind};
///
/// assert_eq!(OpKind::Add.ip_type(), IpTypeId::ADDER);
/// assert_eq!(OpKind::Sub.ip_type(), IpTypeId::ADDER);
/// assert_eq!(OpKind::Mul.ip_type(), IpTypeId::MULTIPLIER);
/// assert_eq!(OpKind::Less.ip_type(), IpTypeId::OTHER);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum OpKind {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction (runs on an adder core).
    Sub,
    /// Multiplication.
    Mul,
    /// Signed `<` comparison producing 0/1.
    Less,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift by the second operand (mod word width).
    Shl,
    /// Logical right shift by the second operand (mod word width).
    Shr,
}

/// Identifier of an IP-core *type* (the paper's `t` index into `τ`).
///
/// Two operations of the same `IpTypeId` compete for the same pool of IP
/// cores; an operation can only be bound to a core of its own type.
///
/// # Examples
///
/// ```
/// use troy_dfg::IpTypeId;
///
/// let t = IpTypeId::MULTIPLIER;
/// assert_eq!(t.index(), 1);
/// assert_eq!(IpTypeId::new(1), t);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IpTypeId(u8);

impl IpTypeId {
    /// Adder cores (`Add`, `Sub`).
    pub const ADDER: IpTypeId = IpTypeId(0);
    /// Multiplier cores (`Mul`).
    pub const MULTIPLIER: IpTypeId = IpTypeId(1);
    /// The paper's catch-all "other operators" core type.
    pub const OTHER: IpTypeId = IpTypeId(2);

    /// Number of distinct built-in core types (the paper's `|τ|` = 3).
    pub const COUNT: usize = 3;

    /// Creates a type id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= IpTypeId::COUNT`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index < Self::COUNT, "IP type index {index} out of range");
        IpTypeId(index as u8)
    }

    /// Raw index of this type (0 = adder, 1 = multiplier, 2 = other).
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Iterator over all built-in core types.
    pub fn all() -> impl Iterator<Item = IpTypeId> {
        (0..Self::COUNT).map(IpTypeId::new)
    }

    /// Human-readable name used in reports ("adder", "multiplier", "other").
    #[must_use]
    pub fn name(self) -> &'static str {
        match self.0 {
            0 => "adder",
            1 => "multiplier",
            _ => "other",
        }
    }
}

impl fmt::Display for IpTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl OpKind {
    /// The IP-core type this operation must be bound to.
    #[must_use]
    pub fn ip_type(self) -> IpTypeId {
        match self {
            OpKind::Add | OpKind::Sub => IpTypeId::ADDER,
            OpKind::Mul => IpTypeId::MULTIPLIER,
            OpKind::Less | OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Shl | OpKind::Shr => {
                IpTypeId::OTHER
            }
        }
    }

    /// Short mnemonic used by the textual DFG format and DOT labels.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Less => "lt",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
        }
    }

    /// Infix symbol used for pretty-printing expressions.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            OpKind::Add => "+",
            OpKind::Sub => "-",
            OpKind::Mul => "*",
            OpKind::Less => "<",
            OpKind::And => "&",
            OpKind::Or => "|",
            OpKind::Xor => "^",
            OpKind::Shl => "<<",
            OpKind::Shr => ">>",
        }
    }

    /// All operation kinds, in a stable order.
    pub fn all() -> impl Iterator<Item = OpKind> {
        [
            OpKind::Add,
            OpKind::Sub,
            OpKind::Mul,
            OpKind::Less,
            OpKind::And,
            OpKind::Or,
            OpKind::Xor,
            OpKind::Shl,
            OpKind::Shr,
        ]
        .into_iter()
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing an [`OpKind`] mnemonic fails.
///
/// # Examples
///
/// ```
/// use troy_dfg::OpKind;
///
/// let err = "frobnicate".parse::<OpKind>().unwrap_err();
/// assert!(err.to_string().contains("frobnicate"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpKindError {
    token: String,
}

impl fmt::Display for ParseOpKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown operation mnemonic `{}`", self.token)
    }
}

impl std::error::Error for ParseOpKindError {}

impl FromStr for OpKind {
    type Err = ParseOpKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Accept both the mnemonic and the infix symbol so hand-written DFG
        // files can use whichever reads better.
        OpKind::all()
            .find(|k| k.mnemonic() == s || k.symbol() == s)
            .ok_or_else(|| ParseOpKindError {
                token: s.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips_through_mnemonic() {
        for kind in OpKind::all() {
            let parsed: OpKind = kind.mnemonic().parse().expect("mnemonic parses");
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn every_kind_round_trips_through_symbol() {
        for kind in OpKind::all() {
            let parsed: OpKind = kind.symbol().parse().expect("symbol parses");
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn unknown_mnemonic_is_an_error() {
        assert!("nope".parse::<OpKind>().is_err());
    }

    #[test]
    fn ip_type_partitions_ops_into_three_groups() {
        let mut counts = [0usize; IpTypeId::COUNT];
        for kind in OpKind::all() {
            counts[kind.ip_type().index()] += 1;
        }
        assert_eq!(counts[IpTypeId::ADDER.index()], 2);
        assert_eq!(counts[IpTypeId::MULTIPLIER.index()], 1);
        assert_eq!(counts[IpTypeId::OTHER.index()], 6);
    }

    #[test]
    fn ip_type_names_are_distinct() {
        let names: Vec<&str> = IpTypeId::all().map(IpTypeId::name).collect();
        assert_eq!(names, vec!["adder", "multiplier", "other"]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ip_type_index_out_of_range_panics() {
        let _ = IpTypeId::new(3);
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(OpKind::Mul.to_string(), "mul");
        assert_eq!(IpTypeId::ADDER.to_string(), "adder");
    }
}
