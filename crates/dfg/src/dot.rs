//! Graphviz DOT export for visual inspection of DFGs and schedules.

use crate::graph::{Dfg, NodeId};

/// Renders a DFG as a Graphviz `digraph`.
///
/// Multiplications are drawn as boxes, additions/subtractions as ellipses,
/// everything else as diamonds, mirroring the paper's figures.
///
/// # Examples
///
/// ```
/// use troy_dfg::{benchmarks, to_dot};
///
/// let dot = to_dot(&benchmarks::polynom());
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("->"));
/// ```
#[must_use]
pub fn to_dot(dfg: &Dfg) -> String {
    to_dot_with(dfg, |_| None)
}

/// DOT export with an extra-annotation callback.
///
/// `annotate(node)` may return a string appended to the node label — used by
/// the core crate to display `cycle @ vendor` assignments.
#[must_use]
pub fn to_dot_with(dfg: &Dfg, annotate: impl Fn(NodeId) -> Option<String>) -> String {
    use crate::op::OpKind;
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(dfg.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    for n in dfg.node_ids() {
        let node = dfg.node(n);
        let shape = match node.kind() {
            OpKind::Mul => "box",
            OpKind::Add | OpKind::Sub => "ellipse",
            _ => "diamond",
        };
        let mut label = match node.label() {
            Some(l) => format!("{l}\\n{}", node.kind().symbol()),
            None => format!("{n}\\n{}", node.kind().symbol()),
        };
        if let Some(extra) = annotate(n) {
            label.push_str("\\n");
            label.push_str(&escape(&extra));
        }
        let _ = writeln!(out, "  n{} [shape={shape}, label=\"{label}\"];", n.index());
    }
    for (a, b) in dfg.edges() {
        let _ = writeln!(out, "  n{} -> n{};", a.index(), b.index());
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dfg;
    use crate::op::OpKind;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut g = Dfg::new("d");
        let a = g.add_op(OpKind::Mul);
        let b = g.add_op(OpKind::Add);
        g.add_edge(a, b).unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("n0 [shape=box"));
        assert!(dot.contains("n1 [shape=ellipse"));
        assert!(dot.contains("n0 -> n1;"));
    }

    #[test]
    fn annotations_are_appended() {
        let mut g = Dfg::new("d");
        let _ = g.add_op(OpKind::Mul);
        let dot = to_dot_with(&g, |_| Some("cycle 3 @ Ven2".to_owned()));
        assert!(dot.contains("cycle 3 @ Ven2"));
    }

    #[test]
    fn names_with_quotes_are_escaped() {
        let g = Dfg::new("a\"b");
        let dot = to_dot(&g);
        assert!(dot.contains("a\\\"b"));
    }
}
