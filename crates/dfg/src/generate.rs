//! Seeded random DFG generators for stress tests and scaling benchmarks.
//!
//! The generator is deliberately self-contained (a SplitMix64 stream) so the
//! library crate needs no RNG dependency and the same seed always produces
//! the same graph on every platform.

use crate::graph::{Dfg, NodeId};
use crate::op::OpKind;

/// Shape parameters for [`random_dfg`].
///
/// # Examples
///
/// ```
/// use troy_dfg::{random_dfg, RandomDfgConfig};
///
/// let cfg = RandomDfgConfig {
///     ops: 20,
///     max_depth: 5,
///     mul_ratio_percent: 40,
///     edge_bias_percent: 70,
/// };
/// let g = random_dfg(&cfg, 42);
/// assert_eq!(g.len(), 20);
/// assert!(g.critical_path_len() <= 5);
/// // Deterministic: same seed, same graph.
/// assert_eq!(g, random_dfg(&cfg, 42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomDfgConfig {
    /// Total number of operations.
    pub ops: usize,
    /// Upper bound on the critical-path length (layers).
    pub max_depth: usize,
    /// Percentage (0-100) of operations that are multiplications; the rest
    /// are adds/subs.
    pub mul_ratio_percent: u8,
    /// Percentage (0-100) chance that an operand of a non-first-layer node
    /// comes from an earlier node rather than a primary input.
    pub edge_bias_percent: u8,
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        RandomDfgConfig {
            ops: 16,
            max_depth: 4,
            mul_ratio_percent: 50,
            edge_bias_percent: 75,
        }
    }
}

/// Deterministic SplitMix64 — tiny, seedable, good enough for test graphs.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub(crate) fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// `true` with probability `percent`/100.
    pub(crate) fn chance(&mut self, percent: u8) -> bool {
        self.below(100) < usize::from(percent)
    }
}

/// Generates a layered random DAG with the requested shape.
///
/// Nodes are distributed over `max_depth` layers; each node's operands are
/// drawn from strictly earlier layers (so the depth bound holds) or left as
/// primary inputs.
///
/// # Panics
///
/// Panics if `ops == 0` or `max_depth == 0`.
#[must_use]
pub fn random_dfg(config: &RandomDfgConfig, seed: u64) -> Dfg {
    assert!(config.ops > 0, "need at least one op");
    assert!(config.max_depth > 0, "need at least one layer");
    let mut rng = SplitMix64::new(seed);
    let mut dfg = Dfg::new(format!("random-{seed}"));

    // Assign every node a layer; layer 0 gets at least one node so the graph
    // has sources, and no layer index exceeds max_depth-1.
    let mut layer_of: Vec<usize> = (0..config.ops)
        .map(|i| {
            if i == 0 {
                0
            } else {
                rng.below(config.max_depth)
            }
        })
        .collect();
    layer_of.sort_unstable();

    let mut by_layer: Vec<Vec<NodeId>> = vec![Vec::new(); config.max_depth];
    for (i, &layer) in layer_of.iter().enumerate() {
        let kind = if rng.chance(config.mul_ratio_percent) {
            OpKind::Mul
        } else if rng.chance(50) {
            OpKind::Add
        } else {
            OpKind::Sub
        };
        let id = dfg.add_op_with(kind, format!("r{i}"), 2);
        by_layer[layer].push(id);
    }

    for layer in 1..config.max_depth {
        for &node in &by_layer[layer].clone() {
            // Each node needs at least one predecessor from an earlier layer
            // to actually sit at depth > 1; the second operand is random.
            let earlier: Vec<NodeId> = by_layer[..layer].iter().flatten().copied().collect();
            if earlier.is_empty() {
                continue;
            }
            let first = earlier[rng.below(earlier.len())];
            let _ = dfg.add_edge(first, node);
            if rng.chance(config.edge_bias_percent) {
                let second = earlier[rng.below(earlier.len())];
                let _ = dfg.add_edge(second, node); // duplicate edges are rejected; fine
            }
        }
    }

    debug_assert!(dfg.validate().is_ok());
    dfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let cfg = RandomDfgConfig::default();
        assert_eq!(random_dfg(&cfg, 7), random_dfg(&cfg, 7));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomDfgConfig {
            ops: 30,
            ..RandomDfgConfig::default()
        };
        assert_ne!(random_dfg(&cfg, 1), random_dfg(&cfg, 2));
    }

    #[test]
    fn respects_op_count_and_depth() {
        for seed in 0..20 {
            let cfg = RandomDfgConfig {
                ops: 25,
                max_depth: 6,
                mul_ratio_percent: 30,
                edge_bias_percent: 90,
            };
            let g = random_dfg(&cfg, seed);
            assert_eq!(g.len(), 25);
            assert!(g.critical_path_len() <= 6, "seed {seed}");
            g.validate().unwrap();
        }
    }

    #[test]
    fn single_layer_graph_has_no_edges() {
        let cfg = RandomDfgConfig {
            ops: 10,
            max_depth: 1,
            mul_ratio_percent: 50,
            edge_bias_percent: 100,
        };
        let g = random_dfg(&cfg, 3);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.critical_path_len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn zero_ops_panics() {
        let cfg = RandomDfgConfig {
            ops: 0,
            ..RandomDfgConfig::default()
        };
        let _ = random_dfg(&cfg, 0);
    }

    #[test]
    fn splitmix_is_reasonably_spread() {
        let mut rng = SplitMix64::new(99);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.below(10)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket skew: {buckets:?}");
        }
    }
}
