//! Scheduling analyses: ASAP/ALAP levels, mobility and resource lower
//! bounds.
//!
//! These drive both the exact solver's search windows and the heuristic list
//! scheduler. All cycles are 1-based to match the paper's schedule step `l`.

use crate::graph::{Dfg, NodeId};
use crate::op::IpTypeId;

/// Per-node scheduling ranges for a latency bound.
///
/// `asap[i] ..= alap[i]` is the window of cycles in which operation `i` can
/// legally execute in a schedule of length `latency` (unit-latency ops).
///
/// # Examples
///
/// ```
/// use troy_dfg::{benchmarks, ScheduleWindows};
///
/// let g = benchmarks::polynom();
/// let w = ScheduleWindows::compute(&g, 4).expect("depth 3 fits in 4 cycles");
/// for n in g.node_ids() {
///     assert!(w.asap(n) <= w.alap(n));
///     assert!(w.alap(n) <= 4);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleWindows {
    latency: usize,
    asap: Vec<usize>,
    alap: Vec<usize>,
}

impl ScheduleWindows {
    /// Computes ASAP/ALAP levels for a schedule of `latency` cycles.
    ///
    /// Returns `None` when the latency is shorter than the critical path
    /// (no feasible schedule exists).
    #[must_use]
    pub fn compute(dfg: &Dfg, latency: usize) -> Option<Self> {
        if dfg.critical_path_len() > latency {
            return None;
        }
        let order = dfg.topo_order();
        let mut asap = vec![1usize; dfg.len()];
        for &n in &order {
            for &s in dfg.succs(n) {
                asap[s.index()] = asap[s.index()].max(asap[n.index()] + 1);
            }
        }
        let mut alap = vec![latency; dfg.len()];
        for &n in order.iter().rev() {
            for &s in dfg.succs(n) {
                alap[n.index()] = alap[n.index()].min(alap[s.index()] - 1);
            }
        }
        Some(ScheduleWindows {
            latency,
            asap,
            alap,
        })
    }

    /// The latency bound these windows were computed for.
    #[must_use]
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// Earliest feasible cycle for `n` (1-based).
    #[must_use]
    pub fn asap(&self, n: NodeId) -> usize {
        self.asap[n.index()]
    }

    /// Latest feasible cycle for `n` (1-based).
    #[must_use]
    pub fn alap(&self, n: NodeId) -> usize {
        self.alap[n.index()]
    }

    /// Mobility of `n`: slack between its ALAP and ASAP cycles.
    #[must_use]
    pub fn mobility(&self, n: NodeId) -> usize {
        self.alap[n.index()] - self.asap[n.index()]
    }
}

/// Lower bound on concurrent operations of one IP type, over all cycles.
///
/// For each cycle `l`, counts operations whose window forces them into a
/// range covering `l`, divided by the range width — the classic
/// force-directed lower bound. Used to prune area-infeasible license sets.
///
/// # Examples
///
/// ```
/// use troy_dfg::{benchmarks, min_concurrency, IpTypeId};
///
/// let g = benchmarks::fir16();
/// // 16 multiplies cannot fit into 6 cycles with fewer than 3 multipliers.
/// assert!(min_concurrency(&g, 6, IpTypeId::MULTIPLIER) >= 3);
/// ```
#[must_use]
pub fn min_concurrency(dfg: &Dfg, latency: usize, ip_type: IpTypeId) -> usize {
    let Some(w) = ScheduleWindows::compute(dfg, latency) else {
        return usize::MAX; // infeasible latency: no finite resource count helps
    };
    let mut best = 0usize;
    // For every cycle interval [lo, hi], ops entirely confined to it need
    // ceil(count / width) units. Scanning all O(latency^2) intervals is cheap
    // at these sizes and dominates the single-cycle bound.
    for lo in 1..=latency {
        for hi in lo..=latency {
            let width = hi - lo + 1;
            let confined = dfg
                .node_ids()
                .filter(|&n| dfg.kind(n).ip_type() == ip_type && w.asap(n) >= lo && w.alap(n) <= hi)
                .count();
            best = best.max(confined.div_ceil(width));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dfg;
    use crate::op::OpKind;

    fn chain(len: usize) -> Dfg {
        let mut g = Dfg::new("chain");
        let mut prev = g.add_op(OpKind::Add);
        for _ in 1..len {
            let next = g.add_op(OpKind::Add);
            g.add_edge(prev, next).unwrap();
            prev = next;
        }
        g
    }

    #[test]
    fn windows_of_chain_have_zero_mobility_at_tight_latency() {
        let g = chain(4);
        let w = ScheduleWindows::compute(&g, 4).unwrap();
        for n in g.node_ids() {
            assert_eq!(w.mobility(n), 0);
            assert_eq!(w.asap(n), n.index() + 1);
        }
    }

    #[test]
    fn windows_gain_slack_with_extra_latency() {
        let g = chain(3);
        let w = ScheduleWindows::compute(&g, 5).unwrap();
        for n in g.node_ids() {
            assert_eq!(w.mobility(n), 2);
        }
    }

    #[test]
    fn infeasible_latency_returns_none() {
        let g = chain(4);
        assert!(ScheduleWindows::compute(&g, 3).is_none());
    }

    #[test]
    fn asap_never_exceeds_alap() {
        let g = chain(4);
        let w = ScheduleWindows::compute(&g, 6).unwrap();
        for n in g.node_ids() {
            assert!(w.asap(n) <= w.alap(n));
        }
    }

    #[test]
    fn min_concurrency_parallel_ops() {
        // 6 independent multiplies in 2 cycles need >= 3 multipliers.
        let mut g = Dfg::new("par");
        for _ in 0..6 {
            g.add_op(OpKind::Mul);
        }
        assert_eq!(min_concurrency(&g, 2, IpTypeId::MULTIPLIER), 3);
        assert_eq!(min_concurrency(&g, 6, IpTypeId::MULTIPLIER), 1);
        assert_eq!(min_concurrency(&g, 2, IpTypeId::ADDER), 0);
    }

    #[test]
    fn min_concurrency_infeasible_latency_is_max() {
        let g = chain(4);
        assert_eq!(min_concurrency(&g, 2, IpTypeId::ADDER), usize::MAX);
    }

    #[test]
    fn min_concurrency_interval_bound_beats_single_cycle() {
        // Two 2-chains of adds in 3 cycles: cycles 1..=3, each chain occupies
        // 2 of 3 cycles; interval [1,3] confines 4 ops width 3 -> ceil(4/3)=2.
        let mut g = Dfg::new("two-chains");
        for _ in 0..2 {
            let a = g.add_op(OpKind::Add);
            let b = g.add_op(OpKind::Add);
            g.add_edge(a, b).unwrap();
        }
        assert_eq!(min_concurrency(&g, 3, IpTypeId::ADDER), 2);
        assert_eq!(min_concurrency(&g, 2, IpTypeId::ADDER), 2);
        assert_eq!(min_concurrency(&g, 4, IpTypeId::ADDER), 1);
    }
}
