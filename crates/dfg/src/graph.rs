//! The data-flow-graph type at the heart of the synthesis flow.
//!
//! A [`Dfg`] is a directed acyclic graph whose nodes are arithmetic
//! operations ([`OpKind`]) and whose edges are data dependencies: an edge
//! `a → b` means operation `b` consumes the result of operation `a`, i.e.
//! the paper's `e(o_a, o_b) = 1`. Operation inputs that are *primary inputs*
//! of the design (not produced by another operation) are tracked per node so
//! a simulator can feed concrete values.

use std::collections::HashSet;
use std::fmt;

use crate::op::OpKind;

/// Index of an operation node inside a [`Dfg`].
///
/// Node ids are dense (`0..dfg.len()`) and stable: the graph is append-only.
///
/// # Examples
///
/// ```
/// use troy_dfg::{Dfg, OpKind};
///
/// let mut g = Dfg::new("tiny");
/// let a = g.add_op(OpKind::Mul);
/// let b = g.add_op(OpKind::Add);
/// g.add_edge(a, b)?;
/// assert_eq!(a.index(), 0);
/// assert_eq!(b.index(), 1);
/// # Ok::<(), troy_dfg::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// The id is only meaningful against the [`Dfg`] it was minted for.
    #[must_use]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }

    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0 + 1) // match the paper's 1-based `o_i`
    }
}

/// One operation node: its kind, an optional label and its primary-input
/// arity (number of operands fed from outside the DFG rather than by edges).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OpNode {
    kind: OpKind,
    label: Option<String>,
    primary_inputs: u8,
}

impl OpNode {
    /// The operation kind.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Optional human-readable label (e.g. `"t1"` in a benchmark listing).
    #[must_use]
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// How many of this node's operands are primary inputs.
    #[must_use]
    pub fn primary_inputs(&self) -> usize {
        usize::from(self.primary_inputs)
    }
}

/// Errors raised while constructing or validating a [`Dfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A referenced node id does not exist in this graph.
    UnknownNode(NodeId),
    /// An edge would duplicate an existing dependency.
    DuplicateEdge(NodeId, NodeId),
    /// A self-loop `a → a` was requested.
    SelfLoop(NodeId),
    /// Adding the edge would create a dependency cycle.
    WouldCycle(NodeId, NodeId),
    /// A binary operation ended up with more than two operands.
    TooManyOperands(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::SelfLoop(n) => write!(f, "self loop on {n}"),
            GraphError::WouldCycle(a, b) => {
                write!(f, "edge {a} -> {b} would create a cycle")
            }
            GraphError::TooManyOperands(n) => {
                write!(f, "node {n} would have more than two operands")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A data-flow graph: the function-to-be-implemented (the paper's NC).
///
/// # Examples
///
/// Build `(x*x) + (a*x)`:
///
/// ```
/// use troy_dfg::{Dfg, OpKind};
///
/// let mut g = Dfg::new("poly-fragment");
/// let xx = g.add_op_with(OpKind::Mul, "xx", 2);
/// let ax = g.add_op_with(OpKind::Mul, "ax", 2);
/// let sum = g.add_op_with(OpKind::Add, "sum", 0);
/// g.add_edge(xx, sum)?;
/// g.add_edge(ax, sum)?;
///
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.critical_path_len(), 2);
/// assert_eq!(g.sinks().collect::<Vec<_>>(), vec![sum]);
/// # Ok::<(), troy_dfg::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dfg {
    name: String,
    nodes: Vec<OpNode>,
    /// `succs[i]` = children of node i (consumers of its result).
    succs: Vec<Vec<NodeId>>,
    /// `preds[i]` = parents of node i (producers of its operands).
    preds: Vec<Vec<NodeId>>,
}

impl Dfg {
    /// Creates an empty graph with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Dfg {
            name: name.into(),
            nodes: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
        }
    }

    /// The graph's name (benchmark id).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operation nodes (the paper's `n`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Appends an operation with two primary inputs and no label.
    pub fn add_op(&mut self, kind: OpKind) -> NodeId {
        self.add_op_with_label(kind, None, 2)
    }

    /// Appends an operation with an explicit label and primary-input arity.
    ///
    /// `primary_inputs` is clamped when edges are added: a binary op with two
    /// incoming edges has zero remaining primary inputs.
    pub fn add_op_with(
        &mut self,
        kind: OpKind,
        label: impl Into<String>,
        primary_inputs: usize,
    ) -> NodeId {
        self.add_op_with_label(kind, Some(label.into()), primary_inputs)
    }

    fn add_op_with_label(
        &mut self,
        kind: OpKind,
        label: Option<String>,
        primary_inputs: usize,
    ) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(OpNode {
            kind,
            label,
            primary_inputs: primary_inputs.min(2) as u8,
        });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds the data dependency `from → to` (`to` consumes `from`'s result).
    ///
    /// The consumer's primary-input count is reduced by one: an edge replaces
    /// one external operand.
    ///
    /// # Errors
    ///
    /// Returns an error if either node is unknown, the edge already exists,
    /// it is a self-loop, the consumer already has two operands, or the edge
    /// would close a cycle.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if self.succs[from.index()].contains(&to) {
            return Err(GraphError::DuplicateEdge(from, to));
        }
        if self.preds[to.index()].len() >= 2 {
            return Err(GraphError::TooManyOperands(to));
        }
        if self.reaches(to, from) {
            return Err(GraphError::WouldCycle(from, to));
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        let node = &mut self.nodes[to.index()];
        node.primary_inputs = node.primary_inputs.saturating_sub(1);
        Ok(())
    }

    fn check_node(&self, n: NodeId) -> Result<(), GraphError> {
        if n.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownNode(n))
        }
    }

    /// Depth-first reachability query (`from` can reach `target`).
    fn reaches(&self, from: NodeId, target: NodeId) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            stack.extend(self.succs[n.index()].iter().copied());
        }
        false
    }

    /// The node payload for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &OpNode {
        &self.nodes[id.index()]
    }

    /// Operation kind of `id` (the paper's `ot(o_i)`).
    #[must_use]
    pub fn kind(&self, id: NodeId) -> OpKind {
        self.nodes[id.index()].kind
    }

    /// Iterator over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Children of `id`: operations consuming its result.
    #[must_use]
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.index()]
    }

    /// Parents of `id`: operations producing its operands.
    #[must_use]
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.index()]
    }

    /// All edges as `(producer, consumer)` pairs, in producer order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.node_ids()
            .flat_map(move |a| self.succs(a).iter().map(move |&b| (a, b)))
    }

    /// Number of data-dependency edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Nodes with no predecessors (fed entirely by primary inputs).
    pub fn sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |n| self.preds(*n).is_empty())
    }

    /// Nodes with no successors (their results are primary outputs).
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |n| self.succs(*n).is_empty())
    }

    /// A topological order of all nodes (Kahn's algorithm).
    ///
    /// Construction guarantees acyclicity, so this always succeeds and
    /// returns every node exactly once.
    #[must_use]
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut ready: Vec<NodeId> = self.node_ids().filter(|n| indeg[n.index()] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(n) = ready.pop() {
            order.push(n);
            for &s in self.succs(n) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert_eq!(order.len(), self.len(), "graph must be acyclic");
        order
    }

    /// Length (in unit-latency cycles) of the longest dependency chain.
    ///
    /// This is the minimum feasible latency for scheduling the DFG, and 0 for
    /// an empty graph.
    #[must_use]
    pub fn critical_path_len(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        let mut depth = vec![1usize; self.len()];
        for n in self.topo_order() {
            for &s in self.succs(n) {
                depth[s.index()] = depth[s.index()].max(depth[n.index()] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Counts operations per [`OpKind`].
    #[must_use]
    pub fn op_histogram(&self) -> Vec<(OpKind, usize)> {
        let mut hist: Vec<(OpKind, usize)> = Vec::new();
        for kind in OpKind::all() {
            let count = self.nodes.iter().filter(|n| n.kind == kind).count();
            if count > 0 {
                hist.push((kind, count));
            }
        }
        hist
    }

    /// Sibling pairs: distinct `(a, b)` with `a < b` that feed the *same*
    /// child — the paper's Rule 2 "parents with the same child".
    #[must_use]
    pub fn sibling_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = HashSet::new();
        for n in self.node_ids() {
            let parents = self.preds(n);
            for (i, &a) in parents.iter().enumerate() {
                for &b in &parents[i + 1..] {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    if lo != hi {
                        out.insert((lo, hi));
                    }
                }
            }
        }
        let mut v: Vec<_> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Disjoint union: appends every node and edge of `other` to `self`,
    /// returning the id offset applied to `other`'s nodes.
    ///
    /// Useful for building large scaling instances out of known kernels.
    ///
    /// # Examples
    ///
    /// ```
    /// use troy_dfg::benchmarks;
    ///
    /// let mut g = benchmarks::polynom();
    /// let offset = g.absorb(&benchmarks::diff2());
    /// assert_eq!(offset, 5);
    /// assert_eq!(g.len(), 16);
    /// ```
    pub fn absorb(&mut self, other: &Dfg) -> usize {
        let offset = self.len();
        for n in other.node_ids() {
            let node = other.node(n);
            // Reserve full arity; edges below consume slots as in `other`.
            let label = node.label().map_or_else(
                || format!("g{offset}n{}", n.index()),
                |l| format!("{l}_{offset}"),
            );
            let id = self.add_op_with(node.kind(), label, 2);
            debug_assert_eq!(id.index(), offset + n.index());
        }
        for (a, b) in other.edges() {
            self.add_edge(
                NodeId::new(offset + a.index()),
                NodeId::new(offset + b.index()),
            )
            .expect("disjoint copies of acyclic edges stay acyclic");
        }
        // Restore primary-input arities to match the source graph.
        for n in other.node_ids() {
            let want = other.node(n).primary_inputs();
            let id = offset + n.index();
            let have = self.nodes[id].primary_inputs();
            debug_assert!(have >= want || want <= 2);
            self.nodes[id].primary_inputs = want as u8;
        }
        offset
    }

    /// Checks internal invariants; meant for debug assertions and tests.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, if any.
    pub fn validate(&self) -> Result<(), GraphError> {
        for n in self.node_ids() {
            if self.preds(n).len() + self.node(n).primary_inputs() > 2 {
                return Err(GraphError::TooManyOperands(n));
            }
            for &s in self.succs(n) {
                self.check_node(s)?;
                if !self.preds(s).contains(&n) {
                    return Err(GraphError::UnknownNode(s));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dfg {} ({} ops, {} edges, depth {})",
            self.name,
            self.len(),
            self.edge_count(),
            self.critical_path_len()
        )?;
        for n in self.node_ids() {
            let node = self.node(n);
            write!(f, "  {n}: {}", node.kind())?;
            if let Some(l) = node.label() {
                write!(f, " [{l}]")?;
            }
            if !self.preds(n).is_empty() {
                write!(f, " <-")?;
                for p in self.preds(n) {
                    write!(f, " {p}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dfg, [NodeId; 4]) {
        // a   b
        //  \ / \
        //   c   d(sink of b only)... actually: c consumes a,b; d consumes c.
        let mut g = Dfg::new("diamond");
        let a = g.add_op(OpKind::Mul);
        let b = g.add_op(OpKind::Mul);
        let c = g.add_op(OpKind::Add);
        let d = g.add_op(OpKind::Add);
        g.add_edge(a, c).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_query() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.preds(c), &[a, b]);
        assert_eq!(g.succs(a), &[c]);
        assert_eq!(g.sources().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(g.sinks().collect::<Vec<_>>(), vec![d]);
        g.validate().unwrap();
    }

    #[test]
    fn critical_path_of_chain() {
        let mut g = Dfg::new("chain");
        let mut prev = g.add_op(OpKind::Add);
        for _ in 0..4 {
            let next = g.add_op(OpKind::Add);
            g.add_edge(prev, next).unwrap();
            prev = next;
        }
        assert_eq!(g.critical_path_len(), 5);
    }

    #[test]
    fn empty_graph_has_zero_depth() {
        let g = Dfg::new("empty");
        assert!(g.is_empty());
        assert_eq!(g.critical_path_len(), 0);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Dfg::new("g");
        let a = g.add_op(OpKind::Add);
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = Dfg::new("g");
        let a = g.add_op(OpKind::Add);
        let b = g.add_op(OpKind::Add);
        g.add_edge(a, b).unwrap();
        assert_eq!(g.add_edge(a, b), Err(GraphError::DuplicateEdge(a, b)));
    }

    #[test]
    fn cycle_rejected() {
        let mut g = Dfg::new("g");
        let a = g.add_op(OpKind::Add);
        let b = g.add_op(OpKind::Add);
        let c = g.add_op(OpKind::Add);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(g.add_edge(c, a), Err(GraphError::WouldCycle(c, a)));
    }

    #[test]
    fn third_operand_rejected() {
        let mut g = Dfg::new("g");
        let a = g.add_op(OpKind::Add);
        let b = g.add_op(OpKind::Add);
        let c = g.add_op(OpKind::Add);
        let d = g.add_op(OpKind::Add);
        g.add_edge(a, d).unwrap();
        g.add_edge(b, d).unwrap();
        assert_eq!(g.add_edge(c, d), Err(GraphError::TooManyOperands(d)));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut g = Dfg::new("g");
        let a = g.add_op(OpKind::Add);
        let ghost = NodeId::new(7);
        assert_eq!(g.add_edge(a, ghost), Err(GraphError::UnknownNode(ghost)));
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, _) = diamond();
        let order = g.topo_order();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        for (a, b) in g.edges() {
            assert!(pos(a) < pos(b), "{a} must precede {b}");
        }
        assert_eq!(order.len(), g.len());
    }

    #[test]
    fn sibling_pairs_found() {
        let (g, [a, b, ..]) = diamond();
        assert_eq!(g.sibling_pairs(), vec![(a, b)]);
    }

    #[test]
    fn primary_inputs_decrease_with_edges() {
        let (g, [a, _, c, d]) = diamond();
        assert_eq!(g.node(a).primary_inputs(), 2);
        assert_eq!(g.node(c).primary_inputs(), 0);
        assert_eq!(g.node(d).primary_inputs(), 1);
    }

    #[test]
    fn display_mentions_name_and_ops() {
        let (g, _) = diamond();
        let s = g.to_string();
        assert!(s.contains("diamond"));
        assert!(s.contains("4 ops"));
    }

    #[test]
    fn op_histogram_counts() {
        let (g, _) = diamond();
        let hist = g.op_histogram();
        assert_eq!(hist, vec![(OpKind::Add, 2), (OpKind::Mul, 2)]);
    }

    #[test]
    fn absorb_concatenates_graphs() {
        let mut g = Dfg::new("combo");
        let a = g.add_op(OpKind::Mul);
        let b = g.add_op(OpKind::Add);
        g.add_edge(a, b).unwrap();
        let mut other = Dfg::new("other");
        let x = other.add_op(OpKind::Mul);
        let y = other.add_op(OpKind::Add);
        other.add_edge(x, y).unwrap();
        let off = g.absorb(&other);
        assert_eq!(off, 2);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.succs(NodeId::new(2)), &[NodeId::new(3)]);
        // Primary-input arities mirror the source graph.
        assert_eq!(g.node(NodeId::new(3)).primary_inputs(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn node_id_display_is_one_based() {
        assert_eq!(NodeId::new(0).to_string(), "o1");
        assert_eq!(NodeId::new(10).to_string(), "o11");
    }
}
