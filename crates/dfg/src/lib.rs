//! Data-flow-graph substrate for the TroyHLS reproduction of *"High-Level
//! Synthesis for Run-Time Hardware Trojan Detection and Recovery"*
//! (DAC 2014).
//!
//! This crate owns everything graph-shaped that the synthesis flow needs:
//!
//! - [`Dfg`]: an append-only DAG of arithmetic operations with data
//!   dependencies (the paper's function-to-be-implemented, NC);
//! - scheduling analyses ([`ScheduleWindows`], [`min_concurrency`]) used by
//!   the solvers in the `troyhls` crate;
//! - a plain-text format ([`parse_dfg`] / [`write_dfg`]) and Graphviz export
//!   ([`to_dot`]);
//! - seeded random generators ([`random_dfg`]) for stress testing;
//! - the paper's six evaluation benchmarks plus extras ([`benchmarks`]).
//!
//! # Quickstart
//!
//! ```
//! use troy_dfg::{benchmarks, ScheduleWindows};
//!
//! // The HAL differential-equation solver the paper calls `diff2`.
//! let g = benchmarks::diff2();
//! assert_eq!(g.len(), 11);
//!
//! // Can it be scheduled in 4 cycles? (Yes: its critical path is 4.)
//! let windows = ScheduleWindows::compute(&g, 4).expect("feasible");
//! let total_mobility: usize = g.node_ids().map(|n| windows.mobility(n)).sum();
//! assert!(total_mobility > 0, "some ops have slack");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod benchmarks;
mod dot;
mod generate;
mod graph;
mod op;
mod parse;

pub use analysis::{min_concurrency, ScheduleWindows};
pub use dot::{to_dot, to_dot_with};
pub use generate::{random_dfg, RandomDfgConfig};
pub use graph::{Dfg, GraphError, NodeId, OpNode};
pub use op::{IpTypeId, OpKind, ParseOpKindError};
pub use parse::{parse_dfg, write_dfg, ParseDfgError, MAX_LABEL_LEN, MAX_LINE_LEN, MAX_OPS};
