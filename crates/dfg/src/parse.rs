//! A small textual DFG format, so benchmark graphs can live in plain files.
//!
//! Grammar (line-oriented; `#` starts a comment):
//!
//! ```text
//! dfg <name>
//! op <label> <mnemonic>            # e.g. `op t1 mul`
//! edge <from-label> <to-label>     # data dependency
//! ```
//!
//! Labels are arbitrary identifiers; each `op` line mints a node, `edge`
//! lines reference earlier labels.

use std::collections::HashMap;
use std::fmt;

use crate::graph::{Dfg, GraphError, NodeId};
use crate::op::OpKind;

/// Longest accepted source line, in bytes: generous for any legitimate
/// directive, small enough that a hostile megabyte-long "line" is
/// rejected before any token is materialized.
pub const MAX_LINE_LEN: usize = 4096;

/// Longest accepted identifier (graph name or op label), in bytes.
pub const MAX_LABEL_LEN: usize = 64;

/// Most `op` directives a single graph may declare — far above every
/// benchmark in the paper, low enough to bound memory for a graph that
/// arrives over the wire.
pub const MAX_OPS: usize = 65_536;

/// Error from [`parse_dfg`], carrying the 1-based source line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDfgError {
    line: usize,
    column: usize,
    kind: ParseDfgErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseDfgErrorKind {
    MissingHeader,
    UnknownDirective(String),
    BadArity(&'static str),
    UnknownOp(String),
    DuplicateLabel(String),
    UnknownLabel(String),
    LineTooLong(usize),
    OversizedLabel(usize),
    TooManyOps,
    Graph(GraphError),
}

impl ParseDfgError {
    /// 1-based line number where parsing failed.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column (in characters) of the offending token; column 1
    /// for whole-line errors such as an over-long line or a missing
    /// header at end of input.
    #[must_use]
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for ParseDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: ", self.line, self.column)?;
        match &self.kind {
            ParseDfgErrorKind::MissingHeader => {
                write!(f, "expected `dfg <name>` header before other directives")
            }
            ParseDfgErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            ParseDfgErrorKind::BadArity(d) => write!(f, "wrong number of arguments for `{d}`"),
            ParseDfgErrorKind::UnknownOp(m) => write!(f, "unknown op mnemonic `{m}`"),
            ParseDfgErrorKind::DuplicateLabel(l) => write!(f, "duplicate op label `{l}`"),
            ParseDfgErrorKind::UnknownLabel(l) => write!(f, "unknown op label `{l}`"),
            ParseDfgErrorKind::LineTooLong(n) => {
                write!(f, "line of {n} bytes exceeds the {MAX_LINE_LEN}-byte limit")
            }
            ParseDfgErrorKind::OversizedLabel(n) => write!(
                f,
                "identifier of {n} bytes exceeds the {MAX_LABEL_LEN}-byte limit"
            ),
            ParseDfgErrorKind::TooManyOps => {
                write!(f, "graph exceeds the {MAX_OPS}-op limit")
            }
            ParseDfgErrorKind::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseDfgError {}

/// Parses the textual DFG format.
///
/// # Errors
///
/// Returns a [`ParseDfgError`] pinpointing the offending line for malformed
/// directives, unknown labels/mnemonics or graph violations (cycles,
/// operand overflow, duplicates).
///
/// # Examples
///
/// ```
/// use troy_dfg::parse_dfg;
///
/// let g = parse_dfg(
///     "dfg demo\n\
///      op a mul\n\
///      op b mul\n\
///      op s add\n\
///      edge a s\n\
///      edge b s\n",
/// )?;
/// assert_eq!(g.name(), "demo");
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), troy_dfg::ParseDfgError>(())
/// ```
pub fn parse_dfg(text: &str) -> Result<Dfg, ParseDfgError> {
    let mut dfg: Option<Dfg> = None;
    let mut labels: HashMap<String, NodeId> = HashMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let err = |column, kind| ParseDfgError {
            line: line_no,
            column,
            kind,
        };
        if raw.len() > MAX_LINE_LEN {
            return Err(err(1, ParseDfgErrorKind::LineTooLong(raw.len())));
        }
        // Strip the comment but keep the original offsets: columns must
        // point into the line as the author wrote it.
        let content = raw.split('#').next().unwrap_or("");
        let tokens = tokenize(content);
        let Some(&(dir_col, directive)) = tokens.first() else {
            continue;
        };
        let args = &tokens[1..];
        let check_label = |(col, name): (usize, &str)| {
            if name.len() > MAX_LABEL_LEN {
                Err(err(col, ParseDfgErrorKind::OversizedLabel(name.len())))
            } else {
                Ok(())
            }
        };
        match directive {
            "dfg" => {
                let [(name_col, name)] = args[..] else {
                    return Err(err(dir_col, ParseDfgErrorKind::BadArity("dfg")));
                };
                check_label((name_col, name))?;
                dfg = Some(Dfg::new(name));
            }
            "op" => {
                let g = dfg
                    .as_mut()
                    .ok_or_else(|| err(dir_col, ParseDfgErrorKind::MissingHeader))?;
                let [(label_col, label), (mn_col, mnemonic)] = args[..] else {
                    return Err(err(dir_col, ParseDfgErrorKind::BadArity("op")));
                };
                check_label((label_col, label))?;
                let kind: OpKind = mnemonic
                    .parse()
                    .map_err(|_| err(mn_col, ParseDfgErrorKind::UnknownOp(mnemonic.to_owned())))?;
                if labels.contains_key(label) {
                    return Err(err(
                        label_col,
                        ParseDfgErrorKind::DuplicateLabel(label.to_owned()),
                    ));
                }
                if g.len() >= MAX_OPS {
                    return Err(err(dir_col, ParseDfgErrorKind::TooManyOps));
                }
                let id = g.add_op_with(kind, label, 2);
                labels.insert(label.to_owned(), id);
            }
            "edge" => {
                let g = dfg
                    .as_mut()
                    .ok_or_else(|| err(dir_col, ParseDfgErrorKind::MissingHeader))?;
                let [(from_col, from), (to_col, to)] = args[..] else {
                    return Err(err(dir_col, ParseDfgErrorKind::BadArity("edge")));
                };
                let &f = labels.get(from).ok_or_else(|| {
                    err(from_col, ParseDfgErrorKind::UnknownLabel(from.to_owned()))
                })?;
                let &t = labels
                    .get(to)
                    .ok_or_else(|| err(to_col, ParseDfgErrorKind::UnknownLabel(to.to_owned())))?;
                // Graph violations (self-loop, cycle, operand overflow)
                // blame the destination token: that is where the edge as
                // written turns invalid.
                g.add_edge(f, t)
                    .map_err(|e| err(to_col, ParseDfgErrorKind::Graph(e)))?;
            }
            other => {
                return Err(err(
                    dir_col,
                    ParseDfgErrorKind::UnknownDirective(other.to_owned()),
                ));
            }
        }
    }

    dfg.ok_or(ParseDfgError {
        line: text.lines().count().max(1),
        column: 1,
        kind: ParseDfgErrorKind::MissingHeader,
    })
}

/// Splits a comment-stripped line into `(1-based char column, token)`
/// pairs, preserving the original column positions.
fn tokenize(line: &str) -> Vec<(usize, &str)> {
    let mut tokens = Vec::new();
    let mut start: Option<(usize, usize)> = None; // (byte offset, column)
    let mut col = 0usize;
    for (byte, ch) in line.char_indices() {
        col += 1;
        if ch.is_whitespace() {
            if let Some((b, c)) = start.take() {
                tokens.push((c, &line[b..byte]));
            }
        } else if start.is_none() {
            start = Some((byte, col));
        }
    }
    if let Some((b, c)) = start {
        tokens.push((c, &line[b..]));
    }
    tokens
}

/// Serializes a [`Dfg`] into the textual format accepted by [`parse_dfg`].
///
/// Nodes without labels are emitted as `n<index>`.
///
/// # Examples
///
/// ```
/// use troy_dfg::{benchmarks, parse_dfg, write_dfg};
///
/// let g = benchmarks::diff2();
/// let round_tripped = parse_dfg(&write_dfg(&g))?;
/// assert_eq!(round_tripped.len(), g.len());
/// assert_eq!(round_tripped.edge_count(), g.edge_count());
/// # Ok::<(), troy_dfg::ParseDfgError>(())
/// ```
#[must_use]
pub fn write_dfg(dfg: &Dfg) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let label = |n: NodeId| -> String {
        dfg.node(n)
            .label()
            .map_or_else(|| format!("n{}", n.index()), str::to_owned)
    };
    let _ = writeln!(out, "dfg {}", dfg.name());
    for n in dfg.node_ids() {
        let _ = writeln!(out, "op {} {}", label(n), dfg.kind(n).mnemonic());
    }
    for (a, b) in dfg.edges() {
        let _ = writeln!(out, "edge {} {}", label(a), label(b));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let g = parse_dfg("dfg t\nop a add\n").unwrap();
        assert_eq!(g.name(), "t");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse_dfg("# header\n\ndfg t # trailing\nop a add # op\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn missing_header_is_error() {
        let err = parse_dfg("op a add\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(parse_dfg("").is_err());
    }

    #[test]
    fn unknown_directive_reports_line() {
        let err = parse_dfg("dfg t\nfrob a b\n").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn unknown_label_reports_line() {
        let err = parse_dfg("dfg t\nop a add\nedge a ghost\n").unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = parse_dfg("dfg t\nop a add\nop a mul\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn bad_mnemonic_rejected() {
        let err = parse_dfg("dfg t\nop a spin\n").unwrap_err();
        assert!(err.to_string().contains("spin"));
    }

    #[test]
    fn cycle_via_edges_rejected() {
        let err = parse_dfg("dfg t\nop a add\nop b add\nedge a b\nedge b a\n").unwrap_err();
        assert_eq!(err.line(), 5);
    }

    #[test]
    fn symbols_accepted_as_mnemonics() {
        let g = parse_dfg("dfg t\nop a *\nop b +\nedge a b\n").unwrap();
        assert_eq!(g.kind(NodeId::new(0)), OpKind::Mul);
        assert_eq!(g.kind(NodeId::new(1)), OpKind::Add);
    }

    #[test]
    fn columns_point_at_the_offending_token() {
        // The unknown mnemonic sits at column 6 of line 2.
        let err = parse_dfg("dfg t\nop a spin\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (2, 6));
        // The duplicate label is the second token of the op line.
        let err = parse_dfg("dfg t\nop a add\nop  a mul\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (3, 5));
        // The unknown edge label is blamed, not the directive.
        let err = parse_dfg("dfg t\nop a add\nedge a ghost\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (3, 8));
        // Whole-input failures land on column 1.
        let err = parse_dfg("# only a comment\n").unwrap_err();
        assert_eq!(err.column(), 1);
    }

    #[test]
    fn self_loop_is_a_typed_error_with_position() {
        let err = parse_dfg("dfg t\nop a add\nedge a a\n").unwrap_err();
        assert_eq!((err.line(), err.column()), (3, 8));
        assert!(err.to_string().contains("self loop"), "{err}");
    }

    #[test]
    fn oversized_identifiers_are_rejected() {
        let long = "x".repeat(MAX_LABEL_LEN + 1);
        let err = parse_dfg(&format!("dfg t\nop {long} add\n")).unwrap_err();
        assert_eq!((err.line(), err.column()), (2, 4));
        assert!(err.to_string().contains("64-byte limit"), "{err}");
        let err = parse_dfg(&format!("dfg {long}\n")).unwrap_err();
        assert_eq!((err.line(), err.column()), (1, 5));
        // Exactly at the limit is fine.
        let ok = "y".repeat(MAX_LABEL_LEN);
        assert!(parse_dfg(&format!("dfg t\nop {ok} add\n")).is_ok());
    }

    #[test]
    fn over_long_lines_are_rejected_before_tokenizing() {
        let mut text = String::from("dfg t\n");
        text.push_str(&"#".repeat(MAX_LINE_LEN + 1));
        text.push('\n');
        let err = parse_dfg(&text).unwrap_err();
        assert_eq!((err.line(), err.column()), (2, 1));
        assert!(err.to_string().contains("4096-byte limit"), "{err}");
    }

    #[test]
    fn write_then_parse_round_trip() {
        let src = "dfg rt\nop x mul\nop y mul\nop z add\nedge x z\nedge y z\n";
        let g = parse_dfg(src).unwrap();
        let g2 = parse_dfg(&write_dfg(&g)).unwrap();
        assert_eq!(g, g2);
    }
}
