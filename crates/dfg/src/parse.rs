//! A small textual DFG format, so benchmark graphs can live in plain files.
//!
//! Grammar (line-oriented; `#` starts a comment):
//!
//! ```text
//! dfg <name>
//! op <label> <mnemonic>            # e.g. `op t1 mul`
//! edge <from-label> <to-label>     # data dependency
//! ```
//!
//! Labels are arbitrary identifiers; each `op` line mints a node, `edge`
//! lines reference earlier labels.

use std::collections::HashMap;
use std::fmt;

use crate::graph::{Dfg, GraphError, NodeId};
use crate::op::OpKind;

/// Error from [`parse_dfg`], carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDfgError {
    line: usize,
    kind: ParseDfgErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseDfgErrorKind {
    MissingHeader,
    UnknownDirective(String),
    BadArity(&'static str),
    UnknownOp(String),
    DuplicateLabel(String),
    UnknownLabel(String),
    Graph(GraphError),
}

impl ParseDfgError {
    /// 1-based line number where parsing failed.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseDfgErrorKind::MissingHeader => {
                write!(f, "expected `dfg <name>` header before other directives")
            }
            ParseDfgErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            ParseDfgErrorKind::BadArity(d) => write!(f, "wrong number of arguments for `{d}`"),
            ParseDfgErrorKind::UnknownOp(m) => write!(f, "unknown op mnemonic `{m}`"),
            ParseDfgErrorKind::DuplicateLabel(l) => write!(f, "duplicate op label `{l}`"),
            ParseDfgErrorKind::UnknownLabel(l) => write!(f, "unknown op label `{l}`"),
            ParseDfgErrorKind::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseDfgError {}

/// Parses the textual DFG format.
///
/// # Errors
///
/// Returns a [`ParseDfgError`] pinpointing the offending line for malformed
/// directives, unknown labels/mnemonics or graph violations (cycles,
/// operand overflow, duplicates).
///
/// # Examples
///
/// ```
/// use troy_dfg::parse_dfg;
///
/// let g = parse_dfg(
///     "dfg demo\n\
///      op a mul\n\
///      op b mul\n\
///      op s add\n\
///      edge a s\n\
///      edge b s\n",
/// )?;
/// assert_eq!(g.name(), "demo");
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), troy_dfg::ParseDfgError>(())
/// ```
pub fn parse_dfg(text: &str) -> Result<Dfg, ParseDfgError> {
    let mut dfg: Option<Dfg> = None;
    let mut labels: HashMap<String, NodeId> = HashMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let err = |kind| ParseDfgError {
            line: line_no,
            kind,
        };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_whitespace();
        let directive = tok.next().expect("non-empty line has a token");
        let args: Vec<&str> = tok.collect();
        match directive {
            "dfg" => {
                let [name] = args[..] else {
                    return Err(err(ParseDfgErrorKind::BadArity("dfg")));
                };
                dfg = Some(Dfg::new(name));
            }
            "op" => {
                let g = dfg
                    .as_mut()
                    .ok_or_else(|| err(ParseDfgErrorKind::MissingHeader))?;
                let [label, mnemonic] = args[..] else {
                    return Err(err(ParseDfgErrorKind::BadArity("op")));
                };
                let kind: OpKind = mnemonic
                    .parse()
                    .map_err(|_| err(ParseDfgErrorKind::UnknownOp(mnemonic.to_owned())))?;
                if labels.contains_key(label) {
                    return Err(err(ParseDfgErrorKind::DuplicateLabel(label.to_owned())));
                }
                let id = g.add_op_with(kind, label, 2);
                labels.insert(label.to_owned(), id);
            }
            "edge" => {
                let g = dfg
                    .as_mut()
                    .ok_or_else(|| err(ParseDfgErrorKind::MissingHeader))?;
                let [from, to] = args[..] else {
                    return Err(err(ParseDfgErrorKind::BadArity("edge")));
                };
                let &f = labels
                    .get(from)
                    .ok_or_else(|| err(ParseDfgErrorKind::UnknownLabel(from.to_owned())))?;
                let &t = labels
                    .get(to)
                    .ok_or_else(|| err(ParseDfgErrorKind::UnknownLabel(to.to_owned())))?;
                g.add_edge(f, t)
                    .map_err(|e| err(ParseDfgErrorKind::Graph(e)))?;
            }
            other => {
                return Err(err(ParseDfgErrorKind::UnknownDirective(other.to_owned())));
            }
        }
    }

    dfg.ok_or(ParseDfgError {
        line: text.lines().count().max(1),
        kind: ParseDfgErrorKind::MissingHeader,
    })
}

/// Serializes a [`Dfg`] into the textual format accepted by [`parse_dfg`].
///
/// Nodes without labels are emitted as `n<index>`.
///
/// # Examples
///
/// ```
/// use troy_dfg::{benchmarks, parse_dfg, write_dfg};
///
/// let g = benchmarks::diff2();
/// let round_tripped = parse_dfg(&write_dfg(&g))?;
/// assert_eq!(round_tripped.len(), g.len());
/// assert_eq!(round_tripped.edge_count(), g.edge_count());
/// # Ok::<(), troy_dfg::ParseDfgError>(())
/// ```
#[must_use]
pub fn write_dfg(dfg: &Dfg) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let label = |n: NodeId| -> String {
        dfg.node(n)
            .label()
            .map_or_else(|| format!("n{}", n.index()), str::to_owned)
    };
    let _ = writeln!(out, "dfg {}", dfg.name());
    for n in dfg.node_ids() {
        let _ = writeln!(out, "op {} {}", label(n), dfg.kind(n).mnemonic());
    }
    for (a, b) in dfg.edges() {
        let _ = writeln!(out, "edge {} {}", label(a), label(b));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let g = parse_dfg("dfg t\nop a add\n").unwrap();
        assert_eq!(g.name(), "t");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse_dfg("# header\n\ndfg t # trailing\nop a add # op\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn missing_header_is_error() {
        let err = parse_dfg("op a add\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(parse_dfg("").is_err());
    }

    #[test]
    fn unknown_directive_reports_line() {
        let err = parse_dfg("dfg t\nfrob a b\n").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn unknown_label_reports_line() {
        let err = parse_dfg("dfg t\nop a add\nedge a ghost\n").unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = parse_dfg("dfg t\nop a add\nop a mul\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn bad_mnemonic_rejected() {
        let err = parse_dfg("dfg t\nop a spin\n").unwrap_err();
        assert!(err.to_string().contains("spin"));
    }

    #[test]
    fn cycle_via_edges_rejected() {
        let err = parse_dfg("dfg t\nop a add\nop b add\nedge a b\nedge b a\n").unwrap_err();
        assert_eq!(err.line(), 5);
    }

    #[test]
    fn symbols_accepted_as_mnemonics() {
        let g = parse_dfg("dfg t\nop a *\nop b +\nedge a b\n").unwrap();
        assert_eq!(g.kind(NodeId::new(0)), OpKind::Mul);
        assert_eq!(g.kind(NodeId::new(1)), OpKind::Add);
    }

    #[test]
    fn write_then_parse_round_trip() {
        let src = "dfg rt\nop x mul\nop y mul\nop z add\nedge x z\nedge y z\n";
        let g = parse_dfg(src).unwrap();
        let g2 = parse_dfg(&write_dfg(&g)).unwrap();
        assert_eq!(g, g2);
    }
}
