//! The DAC'14 evaluation benchmarks as in-memory DFGs.
//!
//! The paper evaluates on six graphs taken from the 1992 High-Level
//! Synthesis benchmark suite (converted from C to CDFGs with GAUT). The
//! original GAUT dumps are not published with the paper, so these graphs are
//! reconstructions that match everything the paper pins down:
//!
//! | name            | ops (paper `n`) | depth (tightest paper λ) | op mix |
//! |-----------------|-----------------|--------------------------|--------|
//! | `polynom`       | 5               | 3                        | 3 mul, 2 add |
//! | `diff2`         | 11              | 4                        | 6 mul, 2 add, 2 sub, 1 cmp |
//! | `dtmf`          | 11              | 4                        | 5 mul, 5 add/sub, 1 cmp |
//! | `mof2`          | 12              | 7                        | 7 mul, 5 add/sub |
//! | `ellipticicass` | 29              | 8                        | 8 mul, 21 add |
//! | `fir16`         | 31              | 5 (paper uses λ=6)       | 16 mul, 15 add |
//!
//! `diff2` is the classic HAL second-order differential-equation solver
//! (Paulin & Knight), which genuinely has 11 operations; `fir16` is the
//! canonical 16-tap FIR inner product. The others are reconstructed from
//! their op counts and the latency bounds the paper's result tables imply.
//! Three extra graphs (`ewf34`, `ar_filter`, `fft8`) round out the suite
//! for scaling experiments beyond the paper.

use crate::graph::{Dfg, NodeId};
use crate::op::OpKind;

/// Convenience: add `a op b` consuming two prior results.
fn bin(g: &mut Dfg, kind: OpKind, label: &str, a: NodeId, b: NodeId) -> NodeId {
    let n = g.add_op_with(kind, label, 0);
    g.add_edge(a, n).expect("benchmark edges are acyclic");
    g.add_edge(b, n).expect("benchmark edges are acyclic");
    n
}

/// Convenience: add `a op <primary input>`. The node starts with two free
/// operand slots; the edge consumes one, leaving one primary input.
fn unary_feed(g: &mut Dfg, kind: OpKind, label: &str, a: NodeId) -> NodeId {
    let n = g.add_op_with(kind, label, 2);
    g.add_edge(a, n).expect("benchmark edges are acyclic");
    debug_assert_eq!(g.node(n).primary_inputs(), 1);
    n
}

/// Convenience: operation over two primary inputs.
fn leaf(g: &mut Dfg, kind: OpKind, label: &str) -> NodeId {
    g.add_op_with(kind, label, 2)
}

/// `polynom` — 5-op polynomial evaluator `x*x + a*x + b*c`.
///
/// This is also the motivational example of the paper's Figure 5: with the
/// Table 1 catalog, λ_det = 4, λ_rec = 3 and area ≤ 22000, the minimum
/// license cost is $4160.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
///
/// let g = benchmarks::polynom();
/// assert_eq!(g.len(), 5);
/// assert_eq!(g.critical_path_len(), 3);
/// ```
#[must_use]
pub fn polynom() -> Dfg {
    let mut g = Dfg::new("polynom");
    let t1 = leaf(&mut g, OpKind::Mul, "t1"); // x*x
    let t2 = leaf(&mut g, OpKind::Mul, "t2"); // a*x
    let t3 = leaf(&mut g, OpKind::Mul, "t3"); // b*c
    let t4 = bin(&mut g, OpKind::Add, "t4", t1, t2);
    let _t5 = bin(&mut g, OpKind::Add, "t5", t4, t3);
    debug_assert!(g.validate().is_ok());
    g
}

/// `diff2` — the HAL second-order differential-equation solver (11 ops).
///
/// One Euler step of `y'' + 3xy' + 3y = 0`:
/// `u1 = u - 3*x*u*dx - 3*y*dx; y1 = y + u*dx; x1 = x + dx; c = x1 < a`.
#[must_use]
pub fn diff2() -> Dfg {
    let mut g = Dfg::new("diff2");
    let m1 = leaf(&mut g, OpKind::Mul, "3x"); // 3 * x
    let m2 = leaf(&mut g, OpKind::Mul, "u_dx"); // u * dx
    let m3 = leaf(&mut g, OpKind::Mul, "3y"); // 3 * y
    let m4 = bin(&mut g, OpKind::Mul, "3x_u_dx", m1, m2);
    let m5 = unary_feed(&mut g, OpKind::Mul, "3y_dx", m3); // (3y) * dx
    let m6 = leaf(&mut g, OpKind::Mul, "u_dx2"); // u * dx (for y1)
    let s1 = unary_feed(&mut g, OpKind::Sub, "u_minus", m4); // u - m4
    let _u1 = bin(&mut g, OpKind::Sub, "u1", s1, m5);
    let x1 = leaf(&mut g, OpKind::Add, "x1"); // x + dx
    let _y1 = unary_feed(&mut g, OpKind::Add, "y1", m6); // y + m6
    let _c = unary_feed(&mut g, OpKind::Less, "c", x1); // x1 < a
    debug_assert!(g.validate().is_ok());
    g
}

/// `dtmf` — dual-tone generator core (11 ops): two coupled-form oscillators,
/// per-tone gains, a mix and a saturation test.
#[must_use]
pub fn dtmf() -> Dfg {
    let mut g = Dfg::new("dtmf");
    let m1 = leaf(&mut g, OpKind::Mul, "c1y1"); // c1 * y1[n-1]
    let s1 = unary_feed(&mut g, OpKind::Sub, "osc1", m1); // m1 - y1[n-2]
    let m2 = leaf(&mut g, OpKind::Mul, "c2y2"); // c2 * y2[n-1]
    let s2 = unary_feed(&mut g, OpKind::Sub, "osc2", m2); // m2 - y2[n-2]
    let m3 = unary_feed(&mut g, OpKind::Mul, "g1", s1); // s1 * g1
    let m4 = unary_feed(&mut g, OpKind::Mul, "g2", s2); // s2 * g2
    let _mix = bin(&mut g, OpKind::Add, "mix", m3, m4);
    let m5 = leaf(&mut g, OpKind::Mul, "krkc"); // row/col amplitude product
    let a2 = unary_feed(&mut g, OpKind::Add, "off", m5); // m5 + offset
    let _a3 = unary_feed(&mut g, OpKind::Add, "bias", a2);
    let _cmp = unary_feed(&mut g, OpKind::Less, "sat", a2); // a2 < limit
    debug_assert!(g.validate().is_ok());
    g
}

/// `mof2` — multiple-output second-order filter (12 ops): a direct-form
/// biquad with serial accumulation plus a second scaled output tap.
#[must_use]
pub fn mof2() -> Dfg {
    let mut g = Dfg::new("mof2");
    let m1 = leaf(&mut g, OpKind::Mul, "b0x");
    let m2 = leaf(&mut g, OpKind::Mul, "b1x1");
    let m3 = leaf(&mut g, OpKind::Mul, "b2x2");
    let m4 = leaf(&mut g, OpKind::Mul, "a1y1");
    let m5 = leaf(&mut g, OpKind::Mul, "a2y2");
    let a1 = bin(&mut g, OpKind::Add, "acc1", m1, m2);
    let a2 = bin(&mut g, OpKind::Add, "acc2", a1, m3);
    let a3 = bin(&mut g, OpKind::Sub, "acc3", a2, m4);
    let y = bin(&mut g, OpKind::Sub, "y", a3, m5);
    let m6 = leaf(&mut g, OpKind::Mul, "c0w");
    let m7 = unary_feed(&mut g, OpKind::Mul, "c1y", y);
    let _y2 = bin(&mut g, OpKind::Add, "y2", m7, m6);
    debug_assert!(g.validate().is_ok());
    g
}

/// `ellipticicass` — 29-op elliptic-filter cascade reconstruction
/// (8 multipliers, 21 adders, depth 8).
///
/// The canonical elliptic wave filter has 34 operations; the paper's
/// GAUT-converted variant has 29 with a schedule as short as 8 cycles, so
/// this reconstruction keeps the EWF's add-dominated mix at that size/depth.
/// The full 34-op EWF ships separately as [`ewf34`].
#[must_use]
pub fn ellipticicass() -> Dfg {
    let mut g = Dfg::new("ellipticicass");
    // Spine: alternating add/mul ladder, rigid at depth 8 — like the EWF's
    // central section where coefficient products sit at different depths.
    let s1 = leaf(&mut g, OpKind::Add, "s1"); // d1
    let m1 = unary_feed(&mut g, OpKind::Mul, "m1", s1); // d2
    let s2 = unary_feed(&mut g, OpKind::Add, "s2", m1); // d3
    let m2 = unary_feed(&mut g, OpKind::Mul, "m2", s2); // d4
    let s3 = unary_feed(&mut g, OpKind::Add, "s3", m2); // d5
    let m3 = unary_feed(&mut g, OpKind::Mul, "m3", s3); // d6
    let s4 = unary_feed(&mut g, OpKind::Add, "s4", m3); // d7
    let _s5 = unary_feed(&mut g, OpKind::Add, "s5", s4); // d8
                                                         // Branch B: shorter ladder, two products, mobility 2.
    let t1 = leaf(&mut g, OpKind::Add, "t1");
    let m4 = unary_feed(&mut g, OpKind::Mul, "m4", t1);
    let t2 = unary_feed(&mut g, OpKind::Add, "t2", m4);
    let m5 = unary_feed(&mut g, OpKind::Mul, "m5", t2);
    let t3 = unary_feed(&mut g, OpKind::Add, "t3", m5);
    let _t4 = unary_feed(&mut g, OpKind::Add, "t4", t3);
    // Branch C: two more products, mobility 3.
    let u1 = leaf(&mut g, OpKind::Add, "u1");
    let m6 = unary_feed(&mut g, OpKind::Mul, "m6", u1);
    let u2 = unary_feed(&mut g, OpKind::Add, "u2", m6);
    let m7 = unary_feed(&mut g, OpKind::Mul, "m7", u2);
    let _u3 = unary_feed(&mut g, OpKind::Add, "u3", m7);
    // Branch D: one slack product.
    let w1 = leaf(&mut g, OpKind::Add, "w1");
    let m8 = unary_feed(&mut g, OpKind::Mul, "m8", w1);
    let _w2 = unary_feed(&mut g, OpKind::Add, "w2", m8);
    // Parallel state-update adds with generous mobility.
    let x1 = leaf(&mut g, OpKind::Add, "x1");
    let x2 = leaf(&mut g, OpKind::Add, "x2");
    let x3 = leaf(&mut g, OpKind::Add, "x3");
    let x4 = leaf(&mut g, OpKind::Add, "x4");
    let x5 = bin(&mut g, OpKind::Add, "x5", x1, x2);
    let x6 = bin(&mut g, OpKind::Add, "x6", x3, x4);
    let _x7 = bin(&mut g, OpKind::Add, "x7", x5, x6);
    debug_assert!(g.validate().is_ok());
    g
}

/// `fir16` — canonical 16-tap FIR inner product (16 mul + 15 add, depth 5).
#[must_use]
pub fn fir16() -> Dfg {
    let mut g = Dfg::new("fir16");
    let products: Vec<NodeId> = (0..16)
        .map(|i| leaf(&mut g, OpKind::Mul, &format!("p{i}")))
        .collect();
    let mut level = products;
    let mut stage = 0;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for (j, pair) in level.chunks(2).enumerate() {
            match *pair {
                [a, b] => next.push(bin(&mut g, OpKind::Add, &format!("s{stage}_{j}"), a, b)),
                [a] => next.push(a),
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            }
        }
        level = next;
        stage += 1;
    }
    debug_assert!(g.validate().is_ok());
    g
}

/// `ewf34` — the full canonical elliptic wave filter (34 ops: 26 add,
/// 8 mul). Not part of the paper's tables; used for scaling experiments.
#[must_use]
pub fn ewf34() -> Dfg {
    let mut g = Dfg::new("ewf34");
    // Faithful-in-spirit EWF: long add chains with multiplier side taps.
    // Four state sums at depth 1.
    let s: Vec<NodeId> = (0..4)
        .map(|i| leaf(&mut g, OpKind::Add, &format!("s{i}")))
        .collect();
    // Two coefficient products on the early sums.
    let m0 = unary_feed(&mut g, OpKind::Mul, "m0", s[0]);
    let m1 = unary_feed(&mut g, OpKind::Mul, "m1", s[1]);
    let a0 = bin(&mut g, OpKind::Add, "a0", m0, s[2]); // d3
    let a1 = bin(&mut g, OpKind::Add, "a1", m1, s[3]); // d3
    let a2 = bin(&mut g, OpKind::Add, "a2", a0, a1); // d4
    let m2 = unary_feed(&mut g, OpKind::Mul, "m2", a2); // d5
    let a3 = unary_feed(&mut g, OpKind::Add, "a3", m2); // d6
    let a4 = bin(&mut g, OpKind::Add, "a4", a3, s[0]); // d7
    let m3 = unary_feed(&mut g, OpKind::Mul, "m3", a4); // d8
    let a5 = unary_feed(&mut g, OpKind::Add, "a5", m3); // d9
    let a6 = bin(&mut g, OpKind::Add, "a6", a5, a2); // d10
    let m4 = unary_feed(&mut g, OpKind::Mul, "m4", a6); // d11
    let a7 = unary_feed(&mut g, OpKind::Add, "a7", m4); // d12
    let a8 = bin(&mut g, OpKind::Add, "a8", a7, a5); // d13
    let _a9 = unary_feed(&mut g, OpKind::Add, "a9", a8); // d14 (output)
                                                         // Parallel back half: mirrored ladder on independent states.
    let u: Vec<NodeId> = (0..4)
        .map(|i| leaf(&mut g, OpKind::Add, &format!("u{i}")))
        .collect();
    let m5 = unary_feed(&mut g, OpKind::Mul, "m5", u[0]);
    let m6 = unary_feed(&mut g, OpKind::Mul, "m6", u[1]);
    let b0 = bin(&mut g, OpKind::Add, "b0", m5, u[2]);
    let b1 = bin(&mut g, OpKind::Add, "b1", m6, u[3]);
    let b2 = bin(&mut g, OpKind::Add, "b2", b0, b1);
    let m7 = unary_feed(&mut g, OpKind::Mul, "m7", b2);
    let b3 = unary_feed(&mut g, OpKind::Add, "b3", m7);
    let b4 = bin(&mut g, OpKind::Add, "b4", b3, u[0]);
    let b5 = bin(&mut g, OpKind::Add, "b5", b4, b2);
    let b6 = unary_feed(&mut g, OpKind::Add, "b6", b5);
    let _b7 = unary_feed(&mut g, OpKind::Add, "b7", b6);
    debug_assert!(g.validate().is_ok());
    g
}

/// `ar_filter` — auto-regressive lattice filter (28 ops: 16 mul, 12 add),
/// a common HLS benchmark; used for extra scaling data.
#[must_use]
pub fn ar_filter() -> Dfg {
    let mut g = Dfg::new("ar_filter");
    // Four lattice stages; each stage: 4 products + 3 adds, stages chained.
    let mut carry: Option<NodeId> = None;
    for stage in 0..4 {
        let m0 = match carry {
            Some(c) => unary_feed(&mut g, OpKind::Mul, &format!("k{stage}a"), c),
            None => leaf(&mut g, OpKind::Mul, &format!("k{stage}a")),
        };
        let m1 = leaf(&mut g, OpKind::Mul, &format!("k{stage}b"));
        let m2 = leaf(&mut g, OpKind::Mul, &format!("k{stage}c"));
        let m3 = leaf(&mut g, OpKind::Mul, &format!("k{stage}d"));
        let a0 = bin(&mut g, OpKind::Add, &format!("f{stage}"), m0, m1);
        let a1 = bin(&mut g, OpKind::Add, &format!("b{stage}"), m2, m3);
        let a2 = bin(&mut g, OpKind::Add, &format!("o{stage}"), a0, a1);
        carry = Some(a2);
    }
    debug_assert!(g.validate().is_ok());
    g
}

/// `fft8` — an 8-point radix-2 FFT signal-flow graph, real-valued
/// simplification (3 butterfly stages; each butterfly is one add and one
/// subtract, with a twiddle multiply ahead of stages 2 and 3 on half the
/// lanes). 32 ops: 8 mul, 24 add/sub; depth 8. Not part of the paper's
/// tables; used for scaling experiments.
#[must_use]
pub fn fft8() -> Dfg {
    let mut g = Dfg::new("fft8");
    // Stage 1: butterflies over the 8 primary inputs (pairs share inputs).
    let mut stage: Vec<NodeId> = Vec::with_capacity(8);
    for i in 0..4 {
        let sum = leaf(&mut g, OpKind::Add, &format!("s1a{i}"));
        let diff = leaf(&mut g, OpKind::Sub, &format!("s1b{i}"));
        stage.push(sum);
        stage.push(diff);
    }
    // Stages 2 and 3: twiddle-multiply the odd lanes, then butterfly.
    for st in 2..=3 {
        let half = stage.len() / 2;
        let mut next = Vec::with_capacity(stage.len());
        for i in 0..half {
            let a = stage[i];
            let b = stage[i + half];
            // Twiddle on the second operand lane.
            let tw = unary_feed(&mut g, OpKind::Mul, &format!("s{st}w{i}"), b);
            let sum = bin(&mut g, OpKind::Add, &format!("s{st}a{i}"), a, tw);
            let diff = bin(&mut g, OpKind::Sub, &format!("s{st}b{i}"), a, tw);
            next.push(sum);
            next.push(diff);
        }
        stage = next;
    }
    debug_assert!(g.validate().is_ok());
    g
}

/// `dct8` — the Loeffler 8-point DCT signal-flow graph (canonical HLS
/// benchmark): 11 multiplications and 29 additions/subtractions across
/// four stages. Not part of the paper's tables; used for scaling
/// experiments.
#[must_use]
pub fn dct8() -> Dfg {
    let mut g = Dfg::new("dct8");
    // Stage 1: 4 butterflies over the 8 input samples.
    let mut s1 = Vec::with_capacity(8);
    for i in 0..4 {
        s1.push(leaf(&mut g, OpKind::Add, &format!("s1a{i}")));
        s1.push(leaf(&mut g, OpKind::Sub, &format!("s1b{i}")));
    }
    // Stage 2 even half: two butterflies over the sums.
    let e0 = bin(&mut g, OpKind::Add, "e0", s1[0], s1[2]);
    let e1 = bin(&mut g, OpKind::Sub, "e1", s1[0], s1[2]);
    let e2 = bin(&mut g, OpKind::Add, "e2", s1[4], s1[6]);
    let e3 = bin(&mut g, OpKind::Sub, "e3", s1[4], s1[6]);
    // Stage 2 odd half: rotators (each rotator: 2 mul + 2 add in the
    // 3-mult factored form approximated as 2-mult here).
    let r0m0 = unary_feed(&mut g, OpKind::Mul, "r0m0", s1[1]);
    let r0m1 = unary_feed(&mut g, OpKind::Mul, "r0m1", s1[3]);
    let o0 = bin(&mut g, OpKind::Add, "o0", r0m0, r0m1);
    let o1 = bin(&mut g, OpKind::Sub, "o1", r0m0, r0m1);
    let r1m0 = unary_feed(&mut g, OpKind::Mul, "r1m0", s1[5]);
    let r1m1 = unary_feed(&mut g, OpKind::Mul, "r1m1", s1[7]);
    let o2 = bin(&mut g, OpKind::Add, "o2", r1m0, r1m1);
    let o3 = bin(&mut g, OpKind::Sub, "o3", r1m0, r1m1);
    // Stage 3: even outputs via sqrt(2) scalers, odd recombination.
    let x0 = bin(&mut g, OpKind::Add, "x0", e0, e2);
    let x4 = bin(&mut g, OpKind::Sub, "x4", e0, e2);
    let r2m0 = unary_feed(&mut g, OpKind::Mul, "x2m", e1);
    let r2m1 = unary_feed(&mut g, OpKind::Mul, "x6m", e3);
    let x2 = bin(&mut g, OpKind::Add, "x2", r2m0, r2m1);
    let x6 = bin(&mut g, OpKind::Sub, "x6", r2m0, r2m1);
    let o4 = bin(&mut g, OpKind::Add, "o4", o0, o2);
    let o5 = bin(&mut g, OpKind::Sub, "o5", o1, o3);
    // Stage 4: odd outputs through the final rotator pair.
    let m_a = unary_feed(&mut g, OpKind::Mul, "ma", o4);
    let m_b = unary_feed(&mut g, OpKind::Mul, "mb", o5);
    let m_c = unary_feed(&mut g, OpKind::Mul, "mc", o4);
    let m_d = unary_feed(&mut g, OpKind::Mul, "md", o5);
    let m_e = unary_feed(&mut g, OpKind::Mul, "me", o1);
    let x1 = bin(&mut g, OpKind::Add, "x1", m_a, m_b);
    let x7 = bin(&mut g, OpKind::Sub, "x7", m_c, m_d);
    let x3 = bin(&mut g, OpKind::Add, "x3", m_e, o0);
    let x5 = bin(&mut g, OpKind::Sub, "x5", m_e, o3);
    let _ = (x0, x1, x2, x3, x4, x5, x6, x7);
    debug_assert!(g.validate().is_ok());
    g
}

/// The six benchmarks of the paper's Tables 3 and 4, in table order.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
///
/// let suite = benchmarks::paper_suite();
/// let names: Vec<&str> = suite.iter().map(|g| g.name()).collect();
/// assert_eq!(
///     names,
///     ["polynom", "diff2", "dtmf", "mof2", "ellipticicass", "fir16"]
/// );
/// ```
#[must_use]
pub fn paper_suite() -> Vec<Dfg> {
    vec![polynom(), diff2(), dtmf(), mof2(), ellipticicass(), fir16()]
}

/// Looks a benchmark up by name (paper suite plus `ewf34` / `ar_filter`).
#[must_use]
pub fn by_name(name: &str) -> Option<Dfg> {
    match name {
        "polynom" => Some(polynom()),
        "diff2" => Some(diff2()),
        "dtmf" => Some(dtmf()),
        "mof2" => Some(mof2()),
        "ellipticicass" => Some(ellipticicass()),
        "fir16" => Some(fir16()),
        "ewf34" => Some(ewf34()),
        "ar_filter" => Some(ar_filter()),
        "fft8" => Some(fft8()),
        "dct8" => Some(dct8()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::IpTypeId;

    #[test]
    fn paper_op_counts_match_table() {
        let expected = [
            ("polynom", 5),
            ("diff2", 11),
            ("dtmf", 11),
            ("mof2", 12),
            ("ellipticicass", 29),
            ("fir16", 31),
        ];
        for (dfg, (name, n)) in paper_suite().iter().zip(expected) {
            assert_eq!(dfg.name(), name);
            assert_eq!(dfg.len(), n, "{name} op count");
            dfg.validate().unwrap();
        }
    }

    #[test]
    fn paper_depths_fit_tightest_latency_rows() {
        // Tightest λ per benchmark from Table 3 (detection-only).
        let max_depth = [
            ("polynom", 3),
            ("diff2", 4),
            ("dtmf", 4),
            ("mof2", 7),
            ("ellipticicass", 8),
            ("fir16", 6),
        ];
        for (dfg, (name, lambda)) in paper_suite().iter().zip(max_depth) {
            assert!(
                dfg.critical_path_len() <= lambda,
                "{name}: depth {} exceeds paper λ {lambda}",
                dfg.critical_path_len()
            );
        }
    }

    #[test]
    fn polynom_structure() {
        let g = polynom();
        assert_eq!(g.critical_path_len(), 3);
        let hist = g.op_histogram();
        assert_eq!(hist, vec![(OpKind::Add, 2), (OpKind::Mul, 3)]);
    }

    #[test]
    fn diff2_is_hal_shaped() {
        let g = diff2();
        assert_eq!(g.len(), 11);
        assert_eq!(g.critical_path_len(), 4);
        let muls = g.node_ids().filter(|&n| g.kind(n) == OpKind::Mul).count();
        assert_eq!(muls, 6);
        // HAL has one comparison producing the loop-exit condition.
        let cmps = g.node_ids().filter(|&n| g.kind(n) == OpKind::Less).count();
        assert_eq!(cmps, 1);
    }

    #[test]
    fn mof2_depth_is_exactly_seven() {
        assert_eq!(mof2().critical_path_len(), 7);
    }

    #[test]
    fn ellipticicass_is_add_dominated() {
        let g = ellipticicass();
        assert_eq!(g.len(), 29);
        assert_eq!(g.critical_path_len(), 8);
        let adds = g
            .node_ids()
            .filter(|&n| g.kind(n).ip_type() == IpTypeId::ADDER)
            .count();
        assert_eq!(adds, 21);
    }

    #[test]
    fn fir16_is_canonical() {
        let g = fir16();
        assert_eq!(g.len(), 31);
        assert_eq!(g.critical_path_len(), 5);
        assert_eq!(g.sinks().count(), 1);
        let muls = g.node_ids().filter(|&n| g.kind(n) == OpKind::Mul).count();
        assert_eq!(muls, 16);
    }

    #[test]
    fn extras_validate() {
        let e = ewf34();
        assert_eq!(e.len(), 34);
        e.validate().unwrap();
        let a = ar_filter();
        assert_eq!(a.len(), 28);
        a.validate().unwrap();
    }

    #[test]
    fn dct8_structure() {
        let g = dct8();
        g.validate().unwrap();
        let muls = g.node_ids().filter(|&n| g.kind(n) == OpKind::Mul).count();
        assert_eq!(muls, 11);
        assert!(g.len() >= 30, "{}", g.len());
        assert!(g.critical_path_len() <= 6);
        assert_eq!(g.sinks().count(), 8, "8 DCT coefficients");
    }

    #[test]
    fn fft8_structure() {
        let g = fft8();
        g.validate().unwrap();
        assert_eq!(g.len(), 32);
        let muls = g.node_ids().filter(|&n| g.kind(n) == OpKind::Mul).count();
        assert_eq!(muls, 8);
        // Three butterfly stages with twiddles in front of two of them.
        assert_eq!(g.critical_path_len(), 5);
        // The final stage produces 8 outputs.
        assert_eq!(g.sinks().count(), 8);
    }

    #[test]
    fn by_name_finds_all() {
        for name in [
            "polynom",
            "diff2",
            "dtmf",
            "mof2",
            "ellipticicass",
            "fir16",
            "ewf34",
            "ar_filter",
            "fft8",
            "dct8",
        ] {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn all_benchmarks_have_unique_labels() {
        for g in paper_suite() {
            let mut labels: Vec<&str> = g.node_ids().filter_map(|n| g.node(n).label()).collect();
            let before = labels.len();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), before, "{}", g.name());
            assert_eq!(before, g.len(), "{}: every node labeled", g.name());
        }
    }
}
