//! Human-readable views of a synthesized design: a textual schedule chart,
//! annotated Graphviz export and a collusion-exposure analysis.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use troy_dfg::{to_dot_with, NodeId};

use crate::catalog::VendorId;
use crate::implementation::Implementation;
use crate::problem::SynthesisProblem;
use crate::rules::Role;

/// Renders the schedule as a cycle-by-cycle chart: one line per physical
/// core, one column per cycle.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troyhls::{schedule_chart, Catalog, ExactSolver, Mode, SolveOptions,
///               SynthesisProblem, Synthesizer};
///
/// let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionOnly)
///     .detection_latency(4)
///     .build()?;
/// let s = ExactSolver::new().synthesize(&p, &SolveOptions::quick())?;
/// let chart = schedule_chart(&p, &s.implementation);
/// assert!(chart.contains("cycle"));
/// assert!(chart.contains("Ven"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn schedule_chart(problem: &SynthesisProblem, imp: &Implementation) -> String {
    let total = problem.total_latency();
    // (license, instance) rows discovered by walking cycles in order.
    let occupancy = imp.occupancy(problem);
    // row key: (vendor, type, instance index) -> cells per cycle.
    let mut rows: BTreeMap<(VendorId, usize, usize), Vec<String>> = BTreeMap::new();
    for (&cycle, cores) in &occupancy {
        for (&(vendor, t), copies) in cores {
            for (m, copy) in copies.iter().enumerate() {
                let cells = rows
                    .entry((vendor, t.index(), m))
                    .or_insert_with(|| vec![String::new(); total + 1]);
                cells[cycle] = copy.to_string();
            }
        }
    }

    let col = rows
        .values()
        .flatten()
        .map(String::len)
        .max()
        .unwrap_or(6)
        .max(6);
    let mut out = String::new();
    let _ = write!(out, "{:<24}", "core");
    for c in 1..=total {
        let _ = write!(out, " {:>col$}", format!("cycle{c}"));
    }
    let _ = writeln!(out);
    let det = problem.detection_latency();
    let _ = write!(out, "{:<24}", "");
    for c in 1..=total {
        let tag = if c <= det { "det" } else { "rec" };
        let _ = write!(out, " {tag:>col$}");
    }
    let _ = writeln!(out);
    for ((vendor, t, m), cells) in rows {
        let label = format!("{vendor}/{}#{m}", troy_dfg::IpTypeId::new(t).name());
        let _ = write!(out, "{label:<24}");
        for text in cells.iter().skip(1).take(total) {
            let cell = if text.is_empty() { "." } else { text };
            let _ = write!(out, " {cell:>col$}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Graphviz export of the DFG with each node annotated by its per-role
/// `(cycle, vendor)` assignments.
#[must_use]
pub fn implementation_dot(problem: &SynthesisProblem, imp: &Implementation) -> String {
    to_dot_with(problem.dfg(), |n: NodeId| {
        let mut parts = Vec::new();
        for role in [Role::Nc, Role::Rc, Role::Recovery] {
            if let Some(a) = imp.assignment(n, role) {
                parts.push(format!("{role}:{}@c{}", a.vendor, a.cycle));
            }
        }
        (!parts.is_empty()).then(|| parts.join(" "))
    })
}

/// One directly-interacting vendor pair in a computation: the producer's
/// result feeds the consumer. Rule 2 exists to keep such pairs on
/// *different* vendors (collusion prevention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interaction {
    /// The computation in which the interaction occurs.
    pub role: Role,
    /// Producer operation.
    pub producer: NodeId,
    /// Consumer operation.
    pub consumer: NodeId,
    /// Producer's vendor.
    pub from: VendorId,
    /// Consumer's vendor.
    pub to: VendorId,
}

/// Lists every direct data interaction in every computation, with the
/// vendors on each side. For a rule-compliant design, no interaction has
/// `from == to` — asserted by [`collusion_exposure`] returning 0.
#[must_use]
pub fn interactions(problem: &SynthesisProblem, imp: &Implementation) -> Vec<Interaction> {
    let mut out = Vec::new();
    for (p, c) in problem.dfg().edges() {
        for &role in Role::for_mode(problem.mode()) {
            if let (Some(pa), Some(ca)) = (imp.assignment(p, role), imp.assignment(c, role)) {
                out.push(Interaction {
                    role,
                    producer: p,
                    consumer: c,
                    from: pa.vendor,
                    to: ca.vendor,
                });
            }
        }
    }
    out
}

/// Number of direct same-vendor interactions — the collusion channels the
/// paper's Rule 2 eliminates. A valid design scores 0.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troyhls::{collusion_exposure, Catalog, ExactSolver, Mode, SolveOptions,
///               SynthesisProblem, Synthesizer};
///
/// let p = SynthesisProblem::builder(benchmarks::diff2(), Catalog::paper8())
///     .mode(Mode::DetectionRecovery)
///     .detection_latency(5)
///     .recovery_latency(5)
///     .build()?;
/// let s = ExactSolver::new().synthesize(&p, &SolveOptions::quick())?;
/// assert_eq!(collusion_exposure(&p, &s.implementation), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn collusion_exposure(problem: &SynthesisProblem, imp: &Implementation) -> usize {
    interactions(problem, imp)
        .iter()
        .filter(|i| i.from == i.to)
        .count()
}

/// Markdown rendering of a design summary (stats + licenses), for reports.
#[must_use]
pub fn markdown_summary(problem: &SynthesisProblem, imp: &Implementation) -> String {
    let stats = imp.stats(problem);
    let mut out = String::new();
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| instances (u) | {} |", stats.instances_used);
    let _ = writeln!(out, "| licenses (t) | {} |", stats.licenses_used);
    let _ = writeln!(out, "| vendors (v) | {} |", stats.vendors_used);
    let _ = writeln!(out, "| license cost (mc) | ${} |", stats.license_cost);
    let _ = writeln!(out, "| area | {} |", stats.area);
    let _ = writeln!(out, "\nlicenses:\n");
    for l in imp.licenses_used(problem) {
        let off = problem.catalog().offering_of(l).expect("used license");
        let _ = writeln!(out, "- `{l}` — area {}, ${}", off.area, off.cost);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::exact::ExactSolver;
    use crate::implementation::Assignment;
    use crate::problem::Mode;
    use crate::solver::{SolveOptions, Synthesizer};
    use troy_dfg::benchmarks;

    fn solved() -> (SynthesisProblem, Implementation) {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionRecovery)
            .detection_latency(4)
            .recovery_latency(3)
            .area_limit(22_000)
            .build()
            .unwrap();
        let s = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        (p, s.implementation)
    }

    #[test]
    fn chart_shows_every_copy_once() {
        let (p, imp) = solved();
        let chart = schedule_chart(&p, &imp);
        // 5 ops x 3 roles = 15 cells occupied.
        let cells = chart.matches('o').count(); // each copy prints oN[role]
        assert!(cells >= 15, "{chart}");
        assert!(chart.contains("det"));
        assert!(chart.contains("rec"));
    }

    #[test]
    fn dot_is_annotated_with_assignments() {
        let (p, imp) = solved();
        let dot = implementation_dot(&p, &imp);
        assert!(dot.contains("NC:"));
        assert!(dot.contains("R:"));
        assert!(dot.contains("@c"));
    }

    #[test]
    fn valid_designs_have_zero_collusion_exposure() {
        let (p, imp) = solved();
        assert_eq!(collusion_exposure(&p, &imp), 0);
        // Interactions exist (4 edges x 3 roles).
        assert_eq!(interactions(&p, &imp).len(), 12);
    }

    #[test]
    fn violating_design_is_exposed() {
        let (p, imp) = solved();
        let mut bad = imp.clone();
        // Force o4's NC vendor equal to its parent o1's NC vendor.
        let parent = bad.assignment(NodeId::new(0), Role::Nc).unwrap();
        let child = bad.assignment(NodeId::new(3), Role::Nc).unwrap();
        bad.assign(
            NodeId::new(3),
            Role::Nc,
            Assignment {
                cycle: child.cycle,
                vendor: parent.vendor,
            },
        );
        assert!(collusion_exposure(&p, &bad) >= 1);
    }

    #[test]
    fn markdown_summary_lists_all_licenses() {
        let (p, imp) = solved();
        let md = markdown_summary(&p, &imp);
        assert!(md.contains("| license cost (mc) | $4160 |"));
        assert_eq!(md.matches("- `Ven").count(), 6);
    }
}
