//! Vendor and IP-core catalogs: who sells which core type, at what silicon
//! area and license cost.
//!
//! The paper's cost model: buying the license for a `(vendor, type)` pair
//! costs `c(k, t)` dollars **once** — any number of instances of that core
//! can then be placed, each occupying `π(k, t)` area units.

use std::collections::BTreeMap;
use std::fmt;

use troy_dfg::IpTypeId;

/// Identifier of an IP vendor (the paper's index `k`).
///
/// # Examples
///
/// ```
/// use troyhls::VendorId;
///
/// let v = VendorId::new(2);
/// assert_eq!(v.index(), 2);
/// assert_eq!(v.to_string(), "Ven3"); // display is 1-based like the paper
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VendorId(u8);

impl VendorId {
    /// Creates a vendor id from a 0-based index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        VendorId(u8::try_from(index).expect("vendor index fits in u8"))
    }

    /// 0-based index.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for VendorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ven{}", self.0 + 1)
    }
}

/// One `(vendor, type)` catalog entry: silicon area per instance and the
/// one-off license cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IpOffering {
    /// Area of one instance, in unit cells (the paper's `π(k, t)`).
    pub area: u64,
    /// License cost in dollars (the paper's `c(k, t)`).
    pub cost: u64,
}

/// A license: the right to instantiate `(vendor, ip_type)` cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct License {
    /// Selling vendor.
    pub vendor: VendorId,
    /// Core type covered.
    pub ip_type: IpTypeId,
}

impl fmt::Display for License {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.vendor, self.ip_type)
    }
}

/// The vendor/IP library available to the synthesis flow.
///
/// # Examples
///
/// ```
/// use troy_dfg::IpTypeId;
/// use troyhls::{Catalog, VendorId};
///
/// let cat = Catalog::table1();
/// assert_eq!(cat.num_vendors(), 4);
/// let adder = cat
///     .offering(VendorId::new(0), IpTypeId::ADDER)
///     .expect("Ven1 sells adders");
/// assert_eq!(adder.cost, 450);
/// assert_eq!(adder.area, 532);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Catalog {
    /// Offerings keyed by `(vendor index, type index)`.
    offerings: BTreeMap<(u8, u8), IpOffering>,
    num_vendors: usize,
}

impl Catalog {
    /// An empty catalog; populate with [`Catalog::insert`].
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds (or replaces) the offering for `(vendor, ip_type)`.
    pub fn insert(&mut self, vendor: VendorId, ip_type: IpTypeId, offering: IpOffering) {
        self.num_vendors = self.num_vendors.max(vendor.index() + 1);
        self.offerings
            .insert((vendor.0, ip_type.index() as u8), offering);
    }

    /// Number of vendors (the paper's `|ven|`; indices `0..num_vendors`).
    #[must_use]
    pub fn num_vendors(&self) -> usize {
        self.num_vendors
    }

    /// All vendor ids.
    pub fn vendors(&self) -> impl Iterator<Item = VendorId> + '_ {
        (0..self.num_vendors).map(VendorId::new)
    }

    /// The offering of `vendor` for `ip_type`, if it sells one.
    #[must_use]
    pub fn offering(&self, vendor: VendorId, ip_type: IpTypeId) -> Option<IpOffering> {
        self.offerings
            .get(&(vendor.0, ip_type.index() as u8))
            .copied()
    }

    /// Offering looked up by license.
    #[must_use]
    pub fn offering_of(&self, license: License) -> Option<IpOffering> {
        self.offering(license.vendor, license.ip_type)
    }

    /// Vendors that sell `ip_type`, in index order.
    pub fn vendors_for(&self, ip_type: IpTypeId) -> impl Iterator<Item = VendorId> + '_ {
        let t = ip_type.index() as u8;
        self.offerings
            .keys()
            .filter(move |(_, ty)| *ty == t)
            .map(|&(v, _)| VendorId(v))
    }

    /// Every license on sale, cheapest first.
    #[must_use]
    pub fn licenses_by_cost(&self) -> Vec<(License, IpOffering)> {
        let mut v: Vec<(License, IpOffering)> = self
            .offerings
            .iter()
            .map(|(&(ven, ty), &off)| {
                (
                    License {
                        vendor: VendorId(ven),
                        ip_type: IpTypeId::new(usize::from(ty)),
                    },
                    off,
                )
            })
            .collect();
        v.sort_by_key(|(l, off)| (off.cost, l.vendor, l.ip_type));
        v
    }

    /// Total license cost of a set of licenses.
    ///
    /// # Panics
    ///
    /// Panics if a license is not offered by this catalog.
    #[must_use]
    pub fn cost_of(&self, licenses: impl IntoIterator<Item = License>) -> u64 {
        licenses
            .into_iter()
            .map(|l| {
                self.offering_of(l)
                    .unwrap_or_else(|| panic!("license {l} not in catalog"))
                    .cost
            })
            .sum()
    }

    /// The paper's Table 1: four vendors, adders and multipliers.
    #[must_use]
    pub fn table1() -> Self {
        let rows: [(usize, u64, u64, u64, u64); 4] = [
            // vendor, adder area, adder cost, mult area, mult cost
            (0, 532, 450, 6843, 950),
            (1, 640, 630, 5731, 880),
            (2, 763, 540, 6325, 760),
            (3, 618, 580, 5937, 1000),
        ];
        let mut cat = Catalog::new();
        for (v, a_area, a_cost, m_area, m_cost) in rows {
            let ven = VendorId::new(v);
            cat.insert(
                ven,
                IpTypeId::ADDER,
                IpOffering {
                    area: a_area,
                    cost: a_cost,
                },
            );
            cat.insert(
                ven,
                IpTypeId::MULTIPLIER,
                IpOffering {
                    area: m_area,
                    cost: m_cost,
                },
            );
        }
        cat
    }

    /// A randomly generated catalog with `num_vendors` vendors covering
    /// all three core types, with areas/costs drawn from the same bands as
    /// [`Catalog::table1`]. Deterministic per seed — used by stress tests
    /// and design-space experiments beyond the paper's two libraries.
    ///
    /// # Panics
    ///
    /// Panics if `num_vendors` is 0.
    ///
    /// # Examples
    ///
    /// ```
    /// use troyhls::Catalog;
    ///
    /// let a = Catalog::random(5, 42);
    /// assert_eq!(a.num_vendors(), 5);
    /// assert_eq!(a, Catalog::random(5, 42));
    /// assert_ne!(a, Catalog::random(5, 43));
    /// ```
    #[must_use]
    pub fn random(num_vendors: usize, seed: u64) -> Self {
        assert!(num_vendors > 0, "need at least one vendor");
        let mut state = seed;
        let mut next = move |span: u64| -> u64 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % span
        };
        let mut cat = Catalog::new();
        for v in 0..num_vendors {
            let ven = VendorId::new(v);
            cat.insert(
                ven,
                IpTypeId::ADDER,
                IpOffering {
                    area: 500 + next(300),
                    cost: 450 + next(250),
                },
            );
            cat.insert(
                ven,
                IpTypeId::MULTIPLIER,
                IpOffering {
                    area: 5700 + next(1200),
                    cost: 760 + next(240),
                },
            );
            cat.insert(
                ven,
                IpTypeId::OTHER,
                IpOffering {
                    area: 1100 + next(350),
                    cost: 480 + next(180),
                },
            );
        }
        cat
    }

    /// The experiment catalog: 8 vendors × 3 core types.
    ///
    /// The paper uses this shape but omits the actual numbers for space
    /// ("very similar to the lists shown in Table 1"); this reconstruction
    /// extends Table 1's price/area bands — adders $450–$700 at 500–800
    /// cells, multipliers $760–$1000 at 5700–6900 cells, and "other"
    /// operators (comparators/logic) in between.
    #[must_use]
    pub fn paper8() -> Self {
        let rows: [(u64, u64, u64, u64, u64, u64); 8] = [
            // adder(area,cost), multiplier(area,cost), other(area,cost)
            (532, 450, 6843, 950, 1210, 520),
            (640, 630, 5731, 880, 1345, 610),
            (763, 540, 6325, 760, 1188, 480),
            (618, 580, 5937, 1000, 1422, 650),
            (574, 470, 6190, 820, 1265, 540),
            (701, 660, 6540, 910, 1150, 500),
            (689, 510, 5810, 840, 1398, 590),
            (556, 700, 6075, 980, 1240, 560),
        ];
        let mut cat = Catalog::new();
        for (v, (aa, ac, ma, mc, oa, oc)) in rows.into_iter().enumerate() {
            let ven = VendorId::new(v);
            cat.insert(ven, IpTypeId::ADDER, IpOffering { area: aa, cost: ac });
            cat.insert(ven, IpTypeId::MULTIPLIER, IpOffering { area: ma, cost: mc });
            cat.insert(ven, IpTypeId::OTHER, IpOffering { area: oa, cost: oc });
        }
        cat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let cat = Catalog::table1();
        assert_eq!(cat.num_vendors(), 4);
        let checks = [
            (0, IpTypeId::ADDER, 532, 450),
            (0, IpTypeId::MULTIPLIER, 6843, 950),
            (1, IpTypeId::ADDER, 640, 630),
            (1, IpTypeId::MULTIPLIER, 5731, 880),
            (2, IpTypeId::ADDER, 763, 540),
            (2, IpTypeId::MULTIPLIER, 6325, 760),
            (3, IpTypeId::ADDER, 618, 580),
            (3, IpTypeId::MULTIPLIER, 5937, 1000),
        ];
        for (v, t, area, cost) in checks {
            let off = cat.offering(VendorId::new(v), t).unwrap();
            assert_eq!(off.area, area);
            assert_eq!(off.cost, cost);
        }
        assert!(cat.offering(VendorId::new(0), IpTypeId::OTHER).is_none());
    }

    #[test]
    fn table1_cheapest_three_per_type_sum_to_4160_components() {
        // The Fig. 5 optimum buys the 3 cheapest multiplier licenses
        // (760+880+950) and the 3 cheapest adder licenses (450+540+580).
        let cat = Catalog::table1();
        let mut mult_costs: Vec<u64> = cat
            .vendors_for(IpTypeId::MULTIPLIER)
            .map(|v| cat.offering(v, IpTypeId::MULTIPLIER).unwrap().cost)
            .collect();
        mult_costs.sort_unstable();
        let mut add_costs: Vec<u64> = cat
            .vendors_for(IpTypeId::ADDER)
            .map(|v| cat.offering(v, IpTypeId::ADDER).unwrap().cost)
            .collect();
        add_costs.sort_unstable();
        let total: u64 = mult_costs[..3].iter().sum::<u64>() + add_costs[..3].iter().sum::<u64>();
        assert_eq!(total, 4160);
    }

    #[test]
    fn paper8_has_all_24_offerings() {
        let cat = Catalog::paper8();
        assert_eq!(cat.num_vendors(), 8);
        for v in cat.vendors() {
            for t in IpTypeId::all() {
                let off = cat.offering(v, t).unwrap();
                assert!(off.area > 0 && off.cost > 0);
            }
        }
        assert_eq!(cat.licenses_by_cost().len(), 24);
    }

    #[test]
    fn paper8_stays_in_table1_bands() {
        let cat = Catalog::paper8();
        for v in cat.vendors() {
            let adder = cat.offering(v, IpTypeId::ADDER).unwrap();
            assert!((450..=700).contains(&adder.cost), "{v} adder cost");
            assert!((500..=800).contains(&adder.area), "{v} adder area");
            let mult = cat.offering(v, IpTypeId::MULTIPLIER).unwrap();
            assert!((760..=1000).contains(&mult.cost), "{v} mult cost");
            assert!((5700..=6900).contains(&mult.area), "{v} mult area");
        }
    }

    #[test]
    fn random_catalogs_stay_in_band_and_are_seeded() {
        for seed in 0..10 {
            let cat = Catalog::random(6, seed);
            assert_eq!(cat.num_vendors(), 6);
            for v in cat.vendors() {
                let adder = cat.offering(v, IpTypeId::ADDER).unwrap();
                assert!((450..=700).contains(&adder.cost));
                let mult = cat.offering(v, IpTypeId::MULTIPLIER).unwrap();
                assert!((760..=1000).contains(&mult.cost));
                assert!(mult.area > adder.area);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one vendor")]
    fn random_catalog_zero_vendors_panics() {
        let _ = Catalog::random(0, 1);
    }

    #[test]
    fn licenses_by_cost_is_sorted() {
        let cat = Catalog::paper8();
        let ls = cat.licenses_by_cost();
        for pair in ls.windows(2) {
            assert!(pair[0].1.cost <= pair[1].1.cost);
        }
    }

    #[test]
    fn cost_of_sums_license_fees() {
        let cat = Catalog::table1();
        let licenses = [
            License {
                vendor: VendorId::new(0),
                ip_type: IpTypeId::ADDER,
            },
            License {
                vendor: VendorId::new(2),
                ip_type: IpTypeId::MULTIPLIER,
            },
        ];
        assert_eq!(cat.cost_of(licenses), 450 + 760);
    }

    #[test]
    #[should_panic(expected = "not in catalog")]
    fn cost_of_unknown_license_panics() {
        let cat = Catalog::table1();
        let ghost = License {
            vendor: VendorId::new(0),
            ip_type: IpTypeId::OTHER,
        };
        let _ = cat.cost_of([ghost]);
    }

    #[test]
    fn vendors_for_filters_by_type() {
        let mut cat = Catalog::new();
        cat.insert(
            VendorId::new(0),
            IpTypeId::ADDER,
            IpOffering { area: 1, cost: 1 },
        );
        cat.insert(
            VendorId::new(3),
            IpTypeId::MULTIPLIER,
            IpOffering { area: 1, cost: 1 },
        );
        let adders: Vec<_> = cat.vendors_for(IpTypeId::ADDER).collect();
        assert_eq!(adders, vec![VendorId::new(0)]);
        // num_vendors tracks the largest index even with gaps.
        assert_eq!(cat.num_vendors(), 4);
    }

    #[test]
    fn display_formats() {
        let l = License {
            vendor: VendorId::new(1),
            ip_type: IpTypeId::MULTIPLIER,
        };
        assert_eq!(l.to_string(), "Ven2/multiplier");
    }
}
