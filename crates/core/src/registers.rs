//! Register allocation for synthesized designs.
//!
//! A scheduled datapath needs storage between the cycle a value is produced
//! and the last cycle it is consumed. This module computes those lifetimes
//! for every operation copy and packs them into registers with the classic
//! left-edge algorithm, which is optimal for interval graphs: the register
//! count equals the maximum number of simultaneously-live values.
//!
//! Lifetimes follow the phase structure: NC and RC results that reach a
//! sink stay live until the end of the detection phase (the comparator
//! reads them there); recovery sinks stay live until the end of the
//! schedule.

use std::collections::BTreeMap;

use crate::implementation::Implementation;
use crate::problem::SynthesisProblem;
use crate::rules::{OpCopy, Role};

/// Identifier of an allocated register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(pub u32);

impl std::fmt::Display for RegisterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The live interval of one produced value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// The copy producing the value.
    pub copy: OpCopy,
    /// Cycle the value becomes available (the producer's cycle).
    pub from: usize,
    /// Last cycle the value must still be readable.
    pub to: usize,
}

/// A complete register allocation.
#[derive(Debug, Clone)]
pub struct RegisterAllocation {
    lifetimes: Vec<Lifetime>,
    /// Register per copy (same order as `lifetimes`).
    assignment: BTreeMap<(usize, usize), RegisterId>,
    registers: usize,
}

impl RegisterAllocation {
    /// Number of registers the design needs.
    #[must_use]
    pub fn register_count(&self) -> usize {
        self.registers
    }

    /// The register holding `copy`'s result.
    #[must_use]
    pub fn register_of(&self, copy: OpCopy) -> Option<RegisterId> {
        self.assignment
            .get(&(copy.op.index(), copy.role.index()))
            .copied()
    }

    /// All computed lifetimes.
    #[must_use]
    pub fn lifetimes(&self) -> &[Lifetime] {
        &self.lifetimes
    }

    /// Maximum number of simultaneously live values (equals
    /// [`RegisterAllocation::register_count`] by left-edge optimality).
    #[must_use]
    pub fn peak_pressure(&self) -> usize {
        let mut events: Vec<(usize, i32)> = Vec::new();
        for lt in &self.lifetimes {
            events.push((lt.from, 1));
            events.push((lt.to + 1, -1));
        }
        events.sort_unstable();
        let mut live = 0i32;
        let mut peak = 0i32;
        for (_, d) in events {
            live += d;
            peak = peak.max(live);
        }
        peak.max(0) as usize
    }
}

/// Computes value lifetimes and allocates registers for a complete design.
///
/// # Panics
///
/// Panics if the implementation is missing assignments required by the
/// problem's mode — validate first.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troyhls::{allocate_registers, Catalog, ExactSolver, Mode, SolveOptions,
///               SynthesisProblem, Synthesizer};
///
/// let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionOnly)
///     .detection_latency(4)
///     .build()?;
/// let s = ExactSolver::new().synthesize(&p, &SolveOptions::quick())?;
/// let regs = allocate_registers(&p, &s.implementation);
/// assert_eq!(regs.register_count(), regs.peak_pressure());
/// assert!(regs.register_count() >= 2); // both sink copies live at the comparator
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn allocate_registers(problem: &SynthesisProblem, imp: &Implementation) -> RegisterAllocation {
    let dfg = problem.dfg();
    let det = problem.detection_latency();
    let total = problem.total_latency();

    let mut lifetimes = Vec::new();
    for op in dfg.node_ids() {
        for &role in Role::for_mode(problem.mode()) {
            let copy = OpCopy::new(op, role);
            let a = imp.assignment_of(copy).expect("complete implementation");
            let phase_end = match role {
                Role::Nc | Role::Rc => det,
                Role::Recovery => total,
            };
            // Consumers in the same computation read the value at their own
            // cycles; a sink's value is read by the comparator/output at
            // the end of its phase.
            let last_use = dfg
                .succs(op)
                .iter()
                .map(|&c| {
                    imp.assignment(c, role)
                        .expect("complete implementation")
                        .cycle
                })
                .max()
                .unwrap_or(phase_end)
                .max(if dfg.succs(op).is_empty() {
                    phase_end
                } else {
                    0
                });
            lifetimes.push(Lifetime {
                copy,
                from: a.cycle,
                to: last_use,
            });
        }
    }

    // Left-edge: sort by start cycle, greedily reuse the register whose
    // last interval ended earliest.
    let mut order: Vec<usize> = (0..lifetimes.len()).collect();
    order.sort_by_key(|&i| (lifetimes[i].from, lifetimes[i].to));
    // free_at[r] = first cycle register r is free again.
    let mut free_at: Vec<usize> = Vec::new();
    let mut assignment = BTreeMap::new();
    for i in order {
        let lt = lifetimes[i];
        // A register is reusable if its previous value died strictly
        // before this one is produced (same-cycle write-after-read is
        // allowed in a registered datapath: read happens on the edge).
        let slot = free_at.iter().position(|&f| f <= lt.from);
        let r = if let Some(r) = slot {
            r
        } else {
            free_at.push(0);
            free_at.len() - 1
        };
        free_at[r] = lt.to + 1;
        assignment.insert(
            (lt.copy.op.index(), lt.copy.role.index()),
            RegisterId(r as u32),
        );
    }

    RegisterAllocation {
        lifetimes,
        assignment,
        registers: free_at.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::exact::ExactSolver;
    use crate::problem::Mode;
    use crate::solver::{SolveOptions, Synthesizer};
    use troy_dfg::benchmarks;

    fn solved(mode: Mode) -> (SynthesisProblem, Implementation) {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(mode)
            .detection_latency(4)
            .recovery_latency(3)
            .build()
            .unwrap();
        let s = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        (p, s.implementation)
    }

    #[test]
    fn register_count_equals_peak_pressure() {
        for mode in [Mode::DetectionOnly, Mode::DetectionRecovery] {
            let (p, imp) = solved(mode);
            let regs = allocate_registers(&p, &imp);
            assert_eq!(regs.register_count(), regs.peak_pressure(), "{mode}");
        }
    }

    #[test]
    fn every_copy_gets_a_register() {
        let (p, imp) = solved(Mode::DetectionRecovery);
        let regs = allocate_registers(&p, &imp);
        for op in p.dfg().node_ids() {
            for role in [Role::Nc, Role::Rc, Role::Recovery] {
                assert!(regs.register_of(OpCopy::new(op, role)).is_some());
            }
        }
        assert_eq!(regs.lifetimes().len(), 15);
    }

    #[test]
    fn overlapping_lifetimes_never_share_a_register() {
        let (p, imp) = solved(Mode::DetectionRecovery);
        let regs = allocate_registers(&p, &imp);
        let lts = regs.lifetimes();
        for (i, a) in lts.iter().enumerate() {
            for b in &lts[i + 1..] {
                let ra = regs.register_of(a.copy).unwrap();
                let rb = regs.register_of(b.copy).unwrap();
                if ra == rb {
                    let disjoint = a.to < b.from || b.to < a.from;
                    assert!(
                        disjoint,
                        "{} and {} share {ra} but overlap ([{},{}] vs [{},{}])",
                        a.copy, b.copy, a.from, a.to, b.from, b.to
                    );
                }
            }
        }
    }

    #[test]
    fn sink_values_live_until_their_phase_ends() {
        let (p, imp) = solved(Mode::DetectionRecovery);
        let regs = allocate_registers(&p, &imp);
        let sink = p.dfg().sinks().next().unwrap();
        for (role, end) in [
            (Role::Nc, p.detection_latency()),
            (Role::Rc, p.detection_latency()),
            (Role::Recovery, p.total_latency()),
        ] {
            let lt = regs
                .lifetimes()
                .iter()
                .find(|l| l.copy == OpCopy::new(sink, role))
                .unwrap();
            assert_eq!(lt.to, end, "{role}");
        }
    }

    #[test]
    fn serial_chain_needs_few_registers() {
        // A pure chain: at most two values live at once (producer +
        // consumer-in-flight), plus the sink held for the comparator.
        let mut g = troy_dfg::Dfg::new("chain");
        let mut prev = g.add_op_with(troy_dfg::OpKind::Add, "a0", 2);
        for i in 1..5 {
            let n = g.add_op_with(troy_dfg::OpKind::Add, &format!("a{i}")[..], 2);
            g.add_edge(prev, n).unwrap();
            prev = n;
        }
        let p = SynthesisProblem::builder(g, Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(5)
            .build()
            .unwrap();
        let s = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        let regs = allocate_registers(&p, &s.implementation);
        // Two interleaved chains (NC + RC): pressure stays small.
        assert!(regs.register_count() <= 6, "{}", regs.register_count());
    }
}
