//! Design-space exploration: sweep latency and area constraints and
//! collect the cost frontier a designer actually trades along.

use std::time::Duration;

use troy_dfg::Dfg;

use crate::catalog::Catalog;
use crate::exact::ExactSolver;
use crate::implementation::DesignStats;
use crate::problem::{Mode, SynthesisProblem};
use crate::solver::{SolveOptions, Synthesizer};

/// One sweep point and its outcome.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Total latency λ used at this point.
    pub lambda: usize,
    /// Area bound used at this point.
    pub area: u64,
    /// `None` when the point is infeasible (or exceeded the per-point
    /// budget).
    pub stats: Option<DesignStats>,
    /// Whether the cost at this point was proven optimal.
    pub proven_optimal: bool,
}

/// Sweeps total latency over `lambdas` at a fixed `area` bound.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troyhls::{sweep_latency, Catalog, Mode};
///
/// let points = sweep_latency(
///     &benchmarks::polynom(),
///     &Catalog::table1(),
///     Mode::DetectionRecovery,
///     &[6, 8, 10],
///     40_000,
/// );
/// assert_eq!(points.len(), 3);
/// // Looser latency never raises the (proven-optimal) cost.
/// let costs: Vec<u64> = points
///     .iter()
///     .filter(|p| p.proven_optimal)
///     .filter_map(|p| p.stats.map(|s| s.license_cost))
///     .collect();
/// assert!(costs.windows(2).all(|w| w[1] <= w[0]));
/// ```
#[must_use]
pub fn sweep_latency(
    dfg: &Dfg,
    catalog: &Catalog,
    mode: Mode,
    lambdas: &[usize],
    area: u64,
) -> Vec<SweepPoint> {
    lambdas
        .iter()
        .map(|&lambda| solve_point(dfg, catalog, mode, lambda, area))
        .collect()
}

/// Sweeps the area bound over `areas` at a fixed total latency.
#[must_use]
pub fn sweep_area(
    dfg: &Dfg,
    catalog: &Catalog,
    mode: Mode,
    lambda: usize,
    areas: &[u64],
) -> Vec<SweepPoint> {
    areas
        .iter()
        .map(|&area| solve_point(dfg, catalog, mode, lambda, area))
        .collect()
}

/// The smallest area at which the instance becomes feasible, found by
/// bisection between `lo` and `hi`. Returns `None` when even `hi` is
/// infeasible.
///
/// Feasibility is monotone in the area bound, so bisection is exact (up to
/// the solver's per-point budget).
#[must_use]
pub fn min_feasible_area(
    dfg: &Dfg,
    catalog: &Catalog,
    mode: Mode,
    lambda: usize,
    mut lo: u64,
    mut hi: u64,
) -> Option<u64> {
    solve_point(dfg, catalog, mode, lambda, hi).stats?;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if solve_point(dfg, catalog, mode, lambda, mid).stats.is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(hi)
}

/// License cost of an *unprotected* single-computation design: one license
/// of the cheapest vendor per IP type used by the DFG. The floor any
/// protection scheme is measured against.
///
/// Returns `None` if some op type is offered by no vendor.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troyhls::{unprotected_cost, Catalog};
///
/// // polynom needs one adder + one multiplier license: $450 + $760.
/// let cost = unprotected_cost(&benchmarks::polynom(), &Catalog::table1());
/// assert_eq!(cost, Some(1210));
/// ```
#[must_use]
pub fn unprotected_cost(dfg: &Dfg, catalog: &Catalog) -> Option<u64> {
    let mut types: Vec<troy_dfg::IpTypeId> = dfg
        .op_histogram()
        .into_iter()
        .map(|(k, _)| k.ip_type())
        .collect();
    types.sort_unstable();
    types.dedup();
    let mut total = 0u64;
    for t in types {
        let cheapest = catalog
            .vendors_for(t)
            .map(|v| catalog.offering(v, t).expect("listed vendor").cost)
            .min()?;
        total += cheapest;
    }
    Some(total)
}

fn solve_point(dfg: &Dfg, catalog: &Catalog, mode: Mode, lambda: usize, area: u64) -> SweepPoint {
    let builder = SynthesisProblem::builder(dfg.clone(), catalog.clone()).mode(mode);
    let builder = match mode {
        Mode::DetectionOnly => builder.detection_latency(lambda),
        Mode::DetectionRecovery => builder.total_latency(lambda),
    };
    let Ok(problem) = builder.area_limit(area).build() else {
        return SweepPoint {
            lambda,
            area,
            stats: None,
            proven_optimal: false,
        };
    };
    let options = SolveOptions {
        time_limit: Duration::from_secs(10),
        node_limit: 150_000,
        ..SolveOptions::default()
    };
    match ExactSolver::new().synthesize(&problem, &options) {
        Ok(s) => SweepPoint {
            lambda,
            area,
            stats: Some(s.implementation.stats(&problem)),
            proven_optimal: s.proven_optimal,
        },
        Err(_) => SweepPoint {
            lambda,
            area,
            stats: None,
            proven_optimal: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::benchmarks;

    #[test]
    fn latency_sweep_is_monotone_in_cost() {
        let pts = sweep_latency(
            &benchmarks::polynom(),
            &Catalog::table1(),
            Mode::DetectionOnly,
            &[3, 4, 6, 8],
            u64::MAX,
        );
        assert_eq!(pts.len(), 4);
        let costs: Vec<u64> = pts
            .iter()
            .filter(|p| p.proven_optimal)
            .map(|p| p.stats.expect("feasible").license_cost)
            .collect();
        assert!(costs.windows(2).all(|w| w[1] <= w[0]), "{costs:?}");
    }

    #[test]
    fn area_sweep_turns_infeasible_below_the_floor() {
        let pts = sweep_area(
            &benchmarks::polynom(),
            &Catalog::table1(),
            Mode::DetectionOnly,
            4,
            &[40_000, 20_000, 10_000, 5_000],
        );
        // Costs never decrease as area tightens, then feasibility dies.
        let mut seen_infeasible = false;
        let mut last_cost = 0u64;
        for p in &pts {
            match &p.stats {
                Some(s) => {
                    assert!(!seen_infeasible, "feasibility must be monotone");
                    assert!(s.license_cost >= last_cost);
                    last_cost = s.license_cost;
                }
                None => seen_infeasible = true,
            }
        }
        assert!(seen_infeasible, "5k area cannot fit a multiplier");
    }

    #[test]
    fn bisection_finds_the_area_floor() {
        let g = benchmarks::polynom();
        let floor = min_feasible_area(&g, &Catalog::table1(), Mode::DetectionOnly, 4, 1, 60_000)
            .expect("feasible at 60k");
        // The floor must behave like a threshold.
        assert!(
            solve_point(&g, &Catalog::table1(), Mode::DetectionOnly, 4, floor)
                .stats
                .is_some()
        );
        assert!(
            solve_point(&g, &Catalog::table1(), Mode::DetectionOnly, 4, floor - 1)
                .stats
                .is_none()
        );
        // Sanity: at least two multipliers plus two adders must fit.
        assert!(floor > 11_000, "{floor}");
    }

    #[test]
    fn hopeless_bisection_returns_none() {
        let g = benchmarks::polynom();
        assert!(
            min_feasible_area(&g, &Catalog::table1(), Mode::DetectionOnly, 4, 1, 4_000).is_none()
        );
    }
}
