//! Simulated-annealing synthesis: a metaheuristic back end that explores
//! the binding space directly instead of the license lattice.
//!
//! Useful as an ablation point between [`crate::GreedySolver`] (pure
//! construction) and [`crate::ExactSolver`] (complete search), and as a
//! robustness fallback on instances whose structure defeats both. The
//! walk operates on a *complete* implementation at all times:
//!
//! - **moves**: re-bind one copy to a random legal-type vendor, or move one
//!   copy to a random cycle inside its phase window;
//! - **energy**: license cost plus heavy penalties for rule violations and
//!   area overflow (so the walk can cross infeasible regions);
//! - **schedule**: geometric cooling with Metropolis acceptance; the best
//!   *feasible* state ever visited is returned.

use std::time::Instant;

use troy_dfg::ScheduleWindows;

use crate::implementation::{Assignment, Implementation};
use crate::problem::{Mode, SynthesisProblem};
use crate::rules::Role;
use crate::solver::{SolveOptions, Synthesis, SynthesisError, Synthesizer};
use crate::validate::validate;

/// Tunables for [`AnnealingSolver`].
#[derive(Debug, Clone)]
pub struct AnnealingConfig {
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Monte-Carlo steps per temperature level.
    pub steps_per_level: usize,
    /// Number of temperature levels.
    pub levels: usize,
    /// Initial temperature in energy units (dollars).
    pub start_temperature: f64,
    /// Geometric cooling factor per level.
    pub cooling: f64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            seed: 0x00A1_1EA1,
            steps_per_level: 400,
            levels: 60,
            start_temperature: 800.0,
            cooling: 0.9,
        }
    }
}

/// Simulated-annealing synthesizer (see the module docs).
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troyhls::{
///     validate, AnnealingSolver, Catalog, Mode, SolveOptions, SynthesisProblem, Synthesizer,
/// };
///
/// let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionRecovery)
///     .detection_latency(4)
///     .recovery_latency(3)
///     .area_limit(22_000)
///     .build()?;
/// let s = AnnealingSolver::new().synthesize(&p, &SolveOptions::quick())?;
/// assert!(validate(&p, &s.implementation).is_empty());
/// assert!(s.cost >= 4160); // never better than the exact optimum
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct AnnealingSolver {
    config: AnnealingConfig,
}

impl AnnealingSolver {
    /// Creates the solver with default parameters.
    #[must_use]
    pub fn new() -> Self {
        AnnealingSolver::default()
    }

    /// Creates the solver with explicit parameters.
    #[must_use]
    pub fn with_config(config: AnnealingConfig) -> Self {
        AnnealingSolver { config }
    }
}

/// Violation penalty: larger than any plausible license bill so feasibility
/// always dominates cost.
const PENALTY: f64 = 50_000.0;

struct Walker<'a> {
    problem: &'a SynthesisProblem,
    windows_det: ScheduleWindows,
    windows_rec: Option<ScheduleWindows>,
    rng: u64,
}

impl Walker<'_> {
    fn rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.rand() % bound as u64) as usize
    }

    fn unit(&mut self) -> f64 {
        (self.rand() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniformly random complete (not necessarily valid) implementation.
    fn random_state(&mut self) -> Implementation {
        let dfg = self.problem.dfg();
        let det = self.problem.detection_latency();
        let mut imp = Implementation::new(dfg.len());
        for op in dfg.node_ids() {
            let t = dfg.kind(op).ip_type();
            let vendors: Vec<_> = self.problem.catalog().vendors_for(t).collect();
            for &role in Role::for_mode(self.problem.mode()) {
                let (lo, hi) = match role {
                    Role::Nc | Role::Rc => (self.windows_det.asap(op), self.windows_det.alap(op)),
                    Role::Recovery => {
                        let w = self.windows_rec.as_ref().expect("recovery mode");
                        (det + w.asap(op), det + w.alap(op))
                    }
                };
                let cycle = lo + self.below(hi - lo + 1);
                let vendor = vendors[self.below(vendors.len())];
                imp.assign(op, role, Assignment { cycle, vendor });
            }
        }
        imp
    }

    /// Applies one random move; returns an undo closure description.
    fn perturb(&mut self, imp: &mut Implementation) -> (troy_dfg::NodeId, Role, Assignment) {
        let dfg = self.problem.dfg();
        let det = self.problem.detection_latency();
        let roles = Role::for_mode(self.problem.mode());
        let op = troy_dfg::NodeId::new(self.below(dfg.len()));
        let role = roles[self.below(roles.len())];
        let old = imp.assignment(op, role).expect("complete state");
        let t = dfg.kind(op).ip_type();
        let new = if self.below(2) == 0 {
            // Re-bind vendor.
            let vendors: Vec<_> = self.problem.catalog().vendors_for(t).collect();
            Assignment {
                cycle: old.cycle,
                vendor: vendors[self.below(vendors.len())],
            }
        } else {
            // Move cycle within the phase window.
            let (lo, hi) = match role {
                Role::Nc | Role::Rc => (self.windows_det.asap(op), self.windows_det.alap(op)),
                Role::Recovery => {
                    let w = self.windows_rec.as_ref().expect("recovery mode");
                    (det + w.asap(op), det + w.alap(op))
                }
            };
            Assignment {
                cycle: lo + self.below(hi - lo + 1),
                vendor: old.vendor,
            }
        };
        imp.assign(op, role, new);
        (op, role, old)
    }
}

/// Energy = license cost + PENALTY × violations (+ scaled area overflow).
fn energy(problem: &SynthesisProblem, imp: &Implementation) -> f64 {
    let violations = validate(problem, imp);
    let mut e = imp.license_cost(problem) as f64;
    e += PENALTY * violations.len() as f64;
    e
}

impl Synthesizer for AnnealingSolver {
    fn name(&self) -> &'static str {
        "annealing"
    }

    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        options: &SolveOptions,
    ) -> Result<Synthesis, SynthesisError> {
        let start = Instant::now();
        let dfg = problem.dfg();
        let windows_det =
            ScheduleWindows::compute(dfg, problem.detection_latency()).expect("problem validated");
        let windows_rec = (problem.mode() == Mode::DetectionRecovery)
            .then(|| ScheduleWindows::compute(dfg, problem.recovery_latency()).expect("validated"));
        let mut walker = Walker {
            problem,
            windows_det,
            windows_rec,
            rng: self.config.seed,
        };

        // Seed from greedy when it succeeds — a good basin to cool in.
        let mut state = match crate::heuristic::GreedySolver::new()
            .synthesize(problem, &SolveOptions::quick())
        {
            Ok(s) => s.implementation,
            Err(_) => walker.random_state(),
        };
        let mut current = energy(problem, &state);
        let mut best: Option<(Implementation, u64)> = validate(problem, &state)
            .is_empty()
            .then(|| (state.clone(), state.license_cost(problem)));

        let mut temperature = self.config.start_temperature;
        for _level in 0..self.config.levels {
            for _step in 0..self.config.steps_per_level {
                if options.out_of_time(start) {
                    break;
                }
                let undo = walker.perturb(&mut state);
                let proposed = energy(problem, &state);
                let accept = proposed <= current
                    || walker.unit() < ((current - proposed) / temperature).exp();
                if accept {
                    current = proposed;
                    if proposed < PENALTY {
                        // Feasible by construction of the penalty scale.
                        let cost = state.license_cost(problem);
                        if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                            best = Some((state.clone(), cost));
                        }
                    }
                } else {
                    let (op, role, old) = undo;
                    state.assign(op, role, old);
                }
            }
            temperature *= self.config.cooling;
        }

        match best {
            Some((implementation, cost)) => Ok(Synthesis {
                implementation,
                cost,
                proven_optimal: false,
            }),
            None => Err(SynthesisError::BudgetExhausted),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::exact::ExactSolver;
    use troy_dfg::benchmarks;

    fn problem(mode: Mode) -> SynthesisProblem {
        SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(mode)
            .detection_latency(4)
            .recovery_latency(3)
            .area_limit(22_000)
            .build()
            .unwrap()
    }

    #[test]
    fn annealing_finds_valid_designs_in_both_modes() {
        for mode in [Mode::DetectionOnly, Mode::DetectionRecovery] {
            let p = problem(mode);
            let s = AnnealingSolver::new()
                .synthesize(&p, &SolveOptions::quick())
                .unwrap();
            let vs = validate(&p, &s.implementation);
            assert!(vs.is_empty(), "{mode}: {vs:?}");
            assert!(!s.proven_optimal);
        }
    }

    #[test]
    fn annealing_never_beats_exact() {
        let p = problem(Mode::DetectionRecovery);
        let a = AnnealingSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        let e = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        assert!(a.cost >= e.cost, "annealing {} < exact {}", a.cost, e.cost);
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let p = problem(Mode::DetectionOnly);
        let solver = AnnealingSolver::with_config(AnnealingConfig {
            seed: 7,
            levels: 10,
            steps_per_level: 100,
            ..AnnealingConfig::default()
        });
        let a = solver.synthesize(&p, &SolveOptions::quick()).unwrap();
        let b = solver.synthesize(&p, &SolveOptions::quick()).unwrap();
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.implementation, b.implementation);
    }

    #[test]
    fn annealing_matches_optimum_on_the_motivational_example() {
        // With the greedy seed it lands on (or keeps) the $4160 optimum.
        let p = problem(Mode::DetectionRecovery);
        let s = AnnealingSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        assert_eq!(s.cost, 4160);
    }

    #[test]
    fn annealing_survives_without_a_greedy_seed() {
        // Area so tight greedy's seed set may fail: verify pure random
        // start still produces something valid (or honestly errors).
        let p = SynthesisProblem::builder(benchmarks::diff2(), Catalog::paper8())
            .mode(Mode::DetectionOnly)
            .detection_latency(6)
            .area_limit(45_000)
            .build()
            .unwrap();
        match AnnealingSolver::new().synthesize(&p, &SolveOptions::quick()) {
            Ok(s) => assert!(validate(&p, &s.implementation).is_empty()),
            Err(e) => assert!(matches!(e, SynthesisError::BudgetExhausted)),
        }
    }
}
