//! Output-cone extraction over a bound data-flow graph.
//!
//! An *output cone* is the transitive fan-in of one DFG sink: every
//! operation whose result can influence that output. The run-time
//! comparator checks each output by comparing its NC and RC values, so
//! the security question is posed per cone: which vendors sit inside
//! the cone in each computation copy, and can a small coalition of them
//! corrupt both copies of the same output consistently?
//!
//! The reachability closure is computed with bit sets (one `u64` word
//! chain per node) folded in topological order, so cone extraction is
//! `O(V · E / 64)` and exact — no sampling, no abstraction. The
//! `troy-analysis` security pass enumerates vendor coalitions over these
//! cones to prove or refute the paper's diversity guarantee.

use std::collections::BTreeSet;

use troy_dfg::{Dfg, NodeId};

use crate::implementation::Implementation;
use crate::rules::Role;
use crate::VendorId;

/// The transitive fan-in of one DFG sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputCone {
    /// The sink operation whose output the cone feeds.
    pub sink: NodeId,
    /// Every operation in the cone (the sink included), ascending by
    /// node index.
    pub members: Vec<NodeId>,
}

impl OutputCone {
    /// Number of operations in the cone.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the cone has no members (never happens for cones
    /// produced by [`output_cones`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `node` lies inside the cone.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.members
            .binary_search_by_key(&node.index(), |m| m.index())
            .is_ok()
    }
}

/// A fixed-width bit set over DFG nodes.
#[derive(Clone)]
struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    fn new(len: usize) -> Self {
        NodeSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    fn insert(&mut self, node: NodeId) {
        self.words[node.index() / 64] |= 1 << (node.index() % 64);
    }

    fn union_with(&mut self, other: &NodeSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    fn contains(&self, index: usize) -> bool {
        self.words[index / 64] & (1 << (index % 64)) != 0
    }
}

/// Extracts the output cone of every sink, in ascending sink order.
///
/// Each cone contains its sink plus every transitive predecessor. Every
/// DFG node appears in at least one cone (a node that fed no sink would
/// be dead code, which [`Dfg::validate`] style construction precludes —
/// and even an isolated node is its own sink).
#[must_use]
pub fn output_cones(dfg: &Dfg) -> Vec<OutputCone> {
    let len = dfg.len();
    // reach[v] = {v} ∪ ⋃ reach[p] over predecessors p, folded in topo
    // order so every predecessor's closure is final before it is used.
    let mut reach: Vec<NodeSet> = (0..len).map(|_| NodeSet::new(len)).collect();
    for node in dfg.topo_order() {
        let mut set = NodeSet::new(len);
        set.insert(node);
        for &p in dfg.preds(node) {
            let pred = reach[p.index()].clone();
            set.union_with(&pred);
        }
        reach[node.index()] = set;
    }
    let mut sinks: Vec<NodeId> = dfg.sinks().collect();
    sinks.sort_by_key(|n| n.index());
    sinks
        .into_iter()
        .map(|sink| {
            let set = &reach[sink.index()];
            let members = (0..len)
                .filter(|&i| set.contains(i))
                .map(NodeId::new)
                .collect();
            OutputCone { sink, members }
        })
        .collect()
}

/// The set of vendors bound to the cone's members in one computation
/// copy. Returns `None` if any member lacks an assignment for `role` —
/// an incomplete binding has no meaningful cone vendor set.
#[must_use]
pub fn cone_vendors(
    imp: &Implementation,
    cone: &OutputCone,
    role: Role,
) -> Option<BTreeSet<VendorId>> {
    cone.members
        .iter()
        .map(|&op| imp.assignment(op, role).map(|a| a.vendor))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::{benchmarks, OpKind};

    use crate::Assignment;

    #[test]
    fn polynom_is_one_five_op_cone() {
        let g = benchmarks::polynom();
        let cones = output_cones(&g);
        assert_eq!(cones.len(), 1, "polynom has one output");
        let cone = &cones[0];
        assert_eq!(cone.len(), g.len());
        assert_eq!(cone.sink, cone.members[cone.members.len() - 1]);
        for n in g.node_ids() {
            assert!(cone.contains(n));
        }
    }

    #[test]
    fn disjoint_sinks_get_disjoint_cones() {
        // a → c and b → d: two independent two-op chains.
        let mut g = Dfg::new("pair");
        let a = g.add_op_with(OpKind::Mul, "a", 2);
        let b = g.add_op_with(OpKind::Add, "b", 2);
        let c = g.add_op_with(OpKind::Mul, "c", 1);
        let d = g.add_op_with(OpKind::Add, "d", 1);
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        let cones = output_cones(&g);
        assert_eq!(cones.len(), 2);
        assert_eq!(cones[0].members, vec![a, c]);
        assert_eq!(cones[1].members, vec![b, d]);
        assert!(!cones[0].contains(b));
        assert!(!cones[1].contains(a));
    }

    #[test]
    fn shared_fan_in_appears_in_both_cones() {
        // a feeds both sinks: it must be a member of both cones.
        let mut g = Dfg::new("diamond");
        let a = g.add_op_with(OpKind::Mul, "a", 2);
        let s1 = g.add_op_with(OpKind::Add, "s1", 1);
        let s2 = g.add_op_with(OpKind::Sub, "s2", 1);
        g.add_edge(a, s1).unwrap();
        g.add_edge(a, s2).unwrap();
        let cones = output_cones(&g);
        assert_eq!(cones.len(), 2);
        assert!(cones.iter().all(|c| c.contains(a)));
    }

    #[test]
    fn cone_vendors_reports_the_bound_set_or_incompleteness() {
        let mut g = Dfg::new("chain");
        let a = g.add_op_with(OpKind::Mul, "a", 2);
        let b = g.add_op_with(OpKind::Mul, "b", 1);
        g.add_edge(a, b).unwrap();
        let cones = output_cones(&g);
        let mut imp = Implementation::new(2);
        imp.assign(
            a,
            Role::Nc,
            Assignment {
                cycle: 1,
                vendor: VendorId::new(0),
            },
        );
        assert_eq!(cone_vendors(&imp, &cones[0], Role::Nc), None);
        imp.assign(
            b,
            Role::Nc,
            Assignment {
                cycle: 2,
                vendor: VendorId::new(1),
            },
        );
        let vendors = cone_vendors(&imp, &cones[0], Role::Nc).unwrap();
        assert_eq!(
            vendors.into_iter().collect::<Vec<_>>(),
            vec![VendorId::new(0), VendorId::new(1)]
        );
    }
}
