//! Problem statement: the DFG to implement, the catalog, latency/area
//! constraints and the protection mode.

use std::fmt;

use troy_dfg::{Dfg, NodeId};

use crate::catalog::Catalog;

/// Which protection the synthesized design must provide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Detection only (the Rajendran et al. IOLTS'13 baseline, Table 3):
    /// every operation runs twice (NC + RC) on diverse vendors.
    DetectionOnly,
    /// Detection plus the paper's fast-recovery phase (Table 4): on a
    /// mismatch the DFG is re-executed with re-bound vendors.
    DetectionRecovery,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::DetectionOnly => "detection-only",
            Mode::DetectionRecovery => "detection+recovery",
        })
    }
}

/// Errors raised when assembling a [`SynthesisProblem`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProblemError {
    /// The DFG has no operations.
    EmptyDfg,
    /// The detection latency is shorter than the DFG's critical path.
    DetectionLatencyTooShort {
        /// Requested detection-phase latency.
        latency: usize,
        /// The DFG's critical-path length.
        critical_path: usize,
    },
    /// The recovery latency is shorter than the DFG's critical path.
    RecoveryLatencyTooShort {
        /// Requested recovery-phase latency.
        latency: usize,
        /// The DFG's critical-path length.
        critical_path: usize,
    },
    /// Some operation's IP type is offered by no vendor in the catalog.
    MissingIpType(troy_dfg::IpTypeId),
    /// A closely-related pair references a node outside the DFG or has
    /// mismatching operation types.
    BadRelatedPair(NodeId, NodeId),
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::EmptyDfg => write!(f, "the DFG has no operations"),
            ProblemError::DetectionLatencyTooShort {
                latency,
                critical_path,
            } => write!(
                f,
                "detection latency {latency} is below the critical path {critical_path}"
            ),
            ProblemError::RecoveryLatencyTooShort {
                latency,
                critical_path,
            } => write!(
                f,
                "recovery latency {latency} is below the critical path {critical_path}"
            ),
            ProblemError::MissingIpType(t) => {
                write!(f, "no vendor offers IP type `{t}`")
            }
            ProblemError::BadRelatedPair(a, b) => {
                write!(f, "invalid closely-related pair ({a}, {b})")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

/// A complete synthesis instance.
///
/// Built with [`SynthesisProblem::builder`]; validated on
/// [`ProblemBuilder::build`].
///
/// # Examples
///
/// The paper's Figure 5 motivational instance:
///
/// ```
/// use troy_dfg::benchmarks;
/// use troyhls::{Catalog, Mode, SynthesisProblem};
///
/// let problem = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionRecovery)
///     .detection_latency(4)
///     .recovery_latency(3)
///     .area_limit(22_000)
///     .build()?;
/// assert_eq!(problem.total_latency(), 7);
/// # Ok::<(), troyhls::ProblemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SynthesisProblem {
    dfg: Dfg,
    catalog: Catalog,
    mode: Mode,
    detection_latency: usize,
    recovery_latency: usize,
    area_limit: u64,
    related_pairs: Vec<(NodeId, NodeId)>,
}

impl SynthesisProblem {
    /// Starts a builder over a DFG and catalog.
    #[must_use]
    pub fn builder(dfg: Dfg, catalog: Catalog) -> ProblemBuilder {
        ProblemBuilder {
            dfg,
            catalog,
            mode: Mode::DetectionRecovery,
            detection_latency: None,
            recovery_latency: None,
            area_limit: u64::MAX,
            related_pairs: Vec::new(),
        }
    }

    /// The function-to-be-implemented.
    #[must_use]
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// The vendor/IP library.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Protection mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Cycles available to the detection phase (NC ∥ RC).
    #[must_use]
    pub fn detection_latency(&self) -> usize {
        self.detection_latency
    }

    /// Cycles available to the recovery phase (0 in detection-only mode).
    #[must_use]
    pub fn recovery_latency(&self) -> usize {
        match self.mode {
            Mode::DetectionOnly => 0,
            Mode::DetectionRecovery => self.recovery_latency,
        }
    }

    /// Total schedule length (the paper's λ: detection plus recovery).
    #[must_use]
    pub fn total_latency(&self) -> usize {
        self.detection_latency + self.recovery_latency()
    }

    /// Maximum total silicon area (the paper's `A̅`).
    #[must_use]
    pub fn area_limit(&self) -> u64 {
        self.area_limit
    }

    /// Closely-related operation pairs (Rule 2 for fast recovery).
    #[must_use]
    pub fn related_pairs(&self) -> &[(NodeId, NodeId)] {
        &self.related_pairs
    }
}

/// Builder for [`SynthesisProblem`]; see there for an example.
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    dfg: Dfg,
    catalog: Catalog,
    mode: Mode,
    detection_latency: Option<usize>,
    recovery_latency: Option<usize>,
    area_limit: u64,
    related_pairs: Vec<(NodeId, NodeId)>,
}

impl ProblemBuilder {
    /// Sets the protection mode (default: detection + recovery).
    #[must_use]
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the detection-phase latency bound (default: critical path).
    #[must_use]
    pub fn detection_latency(mut self, cycles: usize) -> Self {
        self.detection_latency = Some(cycles);
        self
    }

    /// Sets the recovery-phase latency bound (default: critical path).
    #[must_use]
    pub fn recovery_latency(mut self, cycles: usize) -> Self {
        self.recovery_latency = Some(cycles);
        self
    }

    /// Splits a paper-style *total* λ evenly across the two phases
    /// (detection gets the extra cycle when λ is odd).
    #[must_use]
    pub fn total_latency(mut self, lambda: usize) -> Self {
        let rec = lambda / 2;
        self.detection_latency = Some(lambda - rec);
        self.recovery_latency = Some(rec);
        self
    }

    /// Sets the total-area bound (default: unlimited).
    #[must_use]
    pub fn area_limit(mut self, area: u64) -> Self {
        self.area_limit = area;
        self
    }

    /// Declares two operations closely related (Rule 2 for fast recovery):
    /// their recovery copies must avoid each other's detection vendors.
    #[must_use]
    pub fn related_pair(mut self, a: NodeId, b: NodeId) -> Self {
        self.related_pairs.push((a, b));
        self
    }

    /// Validates and produces the problem.
    ///
    /// # Errors
    ///
    /// See [`ProblemError`]: empty DFG, latency below the critical path, an
    /// op type no vendor offers, or an invalid related pair.
    pub fn build(self) -> Result<SynthesisProblem, ProblemError> {
        if self.dfg.is_empty() {
            return Err(ProblemError::EmptyDfg);
        }
        let cp = self.dfg.critical_path_len();
        let detection_latency = self.detection_latency.unwrap_or(cp);
        let recovery_latency = self.recovery_latency.unwrap_or(cp);
        if detection_latency < cp {
            return Err(ProblemError::DetectionLatencyTooShort {
                latency: detection_latency,
                critical_path: cp,
            });
        }
        if self.mode == Mode::DetectionRecovery && recovery_latency < cp {
            return Err(ProblemError::RecoveryLatencyTooShort {
                latency: recovery_latency,
                critical_path: cp,
            });
        }
        for n in self.dfg.node_ids() {
            let t = self.dfg.kind(n).ip_type();
            if self.catalog.vendors_for(t).next().is_none() {
                return Err(ProblemError::MissingIpType(t));
            }
        }
        for &(a, b) in &self.related_pairs {
            let valid = a != b
                && a.index() < self.dfg.len()
                && b.index() < self.dfg.len()
                && self.dfg.kind(a).ip_type() == self.dfg.kind(b).ip_type();
            if !valid {
                return Err(ProblemError::BadRelatedPair(a, b));
            }
        }
        Ok(SynthesisProblem {
            dfg: self.dfg,
            catalog: self.catalog,
            mode: self.mode,
            detection_latency,
            recovery_latency,
            area_limit: self.area_limit,
            related_pairs: self.related_pairs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_dfg::benchmarks;

    #[test]
    fn builder_defaults_to_critical_path() {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .build()
            .unwrap();
        assert_eq!(p.detection_latency(), 3);
        assert_eq!(p.recovery_latency(), 3);
        assert_eq!(p.total_latency(), 6);
        assert_eq!(p.area_limit(), u64::MAX);
    }

    #[test]
    fn detection_only_has_no_recovery_window() {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .build()
            .unwrap();
        assert_eq!(p.recovery_latency(), 0);
        assert_eq!(p.total_latency(), 4);
    }

    #[test]
    fn total_latency_split_matches_paper_convention() {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .total_latency(7)
            .build()
            .unwrap();
        assert_eq!(p.detection_latency(), 4);
        assert_eq!(p.recovery_latency(), 3);
    }

    #[test]
    fn short_detection_latency_rejected() {
        let err = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .detection_latency(2)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ProblemError::DetectionLatencyTooShort {
                latency: 2,
                critical_path: 3
            }
        ));
    }

    #[test]
    fn short_recovery_latency_rejected_only_in_recovery_mode() {
        let err = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .detection_latency(4)
            .recovery_latency(1)
            .build()
            .unwrap_err();
        assert!(matches!(err, ProblemError::RecoveryLatencyTooShort { .. }));
        // Same bounds are fine when recovery is disabled.
        assert!(
            SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
                .mode(Mode::DetectionOnly)
                .detection_latency(4)
                .recovery_latency(1)
                .build()
                .is_ok()
        );
    }

    #[test]
    fn missing_ip_type_rejected() {
        // diff2 contains a comparison; Table 1 has no "other" cores.
        let err = SynthesisProblem::builder(benchmarks::diff2(), Catalog::table1())
            .build()
            .unwrap_err();
        assert!(matches!(err, ProblemError::MissingIpType(_)));
        // paper8 offers all three types.
        assert!(
            SynthesisProblem::builder(benchmarks::diff2(), Catalog::paper8())
                .build()
                .is_ok()
        );
    }

    #[test]
    fn empty_dfg_rejected() {
        let err = SynthesisProblem::builder(Dfg::new("empty"), Catalog::table1())
            .build()
            .unwrap_err();
        assert_eq!(err, ProblemError::EmptyDfg);
    }

    #[test]
    fn related_pair_validation() {
        let g = benchmarks::polynom(); // t1..t3 mul, t4..t5 add
        let mul_a = NodeId::new(0);
        let mul_b = NodeId::new(1);
        let add = NodeId::new(3);
        assert!(SynthesisProblem::builder(g.clone(), Catalog::table1())
            .related_pair(mul_a, mul_b)
            .build()
            .is_ok());
        // Type mismatch.
        assert!(matches!(
            SynthesisProblem::builder(g.clone(), Catalog::table1())
                .related_pair(mul_a, add)
                .build(),
            Err(ProblemError::BadRelatedPair(..))
        ));
        // Self pair.
        assert!(SynthesisProblem::builder(g.clone(), Catalog::table1())
            .related_pair(mul_a, mul_a)
            .build()
            .is_err());
        // Out of range.
        assert!(SynthesisProblem::builder(g, Catalog::table1())
            .related_pair(mul_a, NodeId::new(99))
            .build()
            .is_err());
    }

    #[test]
    fn mode_display() {
        assert_eq!(Mode::DetectionOnly.to_string(), "detection-only");
        assert_eq!(Mode::DetectionRecovery.to_string(), "detection+recovery");
    }

    use troy_dfg::Dfg;
}
