//! The output of synthesis: a schedule plus a vendor binding for every
//! operation copy, with cost/area/diversity accounting.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use troy_dfg::IpTypeId;

use crate::catalog::{License, VendorId};
use crate::problem::{Mode, SynthesisProblem};
use crate::rules::{OpCopy, Role};

/// Where and on whose core one operation copy executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Global schedule step, 1-based. Detection copies occupy
    /// `1..=λ_det`; recovery copies occupy `λ_det+1..=λ_det+λ_rec`.
    pub cycle: usize,
    /// The vendor whose IP core executes the copy.
    pub vendor: VendorId,
}

/// A complete synthesized design: per-copy assignments.
///
/// Use [`Implementation::stats`] for the paper's `u`/`t`/`v`/`mc` columns
/// and `crate::validate` to check it against the design rules.
///
/// # Examples
///
/// ```
/// use troy_dfg::NodeId;
/// use troyhls::{Assignment, Implementation, Role, VendorId};
///
/// let mut imp = Implementation::new(2);
/// imp.assign(NodeId::new(0), Role::Nc, Assignment { cycle: 1, vendor: VendorId::new(0) });
/// imp.assign(NodeId::new(0), Role::Rc, Assignment { cycle: 1, vendor: VendorId::new(1) });
/// assert_eq!(imp.assignment(NodeId::new(0), Role::Nc).unwrap().cycle, 1);
/// assert!(imp.assignment(NodeId::new(1), Role::Nc).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Implementation {
    /// `slots[op][role]`.
    slots: Vec<[Option<Assignment>; 3]>,
}

impl Implementation {
    /// An empty implementation for a DFG with `num_ops` operations.
    #[must_use]
    pub fn new(num_ops: usize) -> Self {
        Implementation {
            slots: vec![[None; 3]; num_ops],
        }
    }

    /// Records the assignment of one copy (overwrites an earlier one).
    pub fn assign(&mut self, op: troy_dfg::NodeId, role: Role, a: Assignment) {
        self.slots[op.index()][role.index()] = Some(a);
    }

    /// Clears the assignment of one copy.
    pub fn unassign(&mut self, op: troy_dfg::NodeId, role: Role) {
        self.slots[op.index()][role.index()] = None;
    }

    /// The assignment of one copy, if made.
    #[must_use]
    pub fn assignment(&self, op: troy_dfg::NodeId, role: Role) -> Option<Assignment> {
        self.slots[op.index()][role.index()]
    }

    /// Assignment looked up by [`OpCopy`].
    #[must_use]
    pub fn assignment_of(&self, copy: OpCopy) -> Option<Assignment> {
        self.assignment(copy.op, copy.role)
    }

    /// Number of operations this implementation covers.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over all made assignments as `(copy, assignment)`.
    pub fn iter(&self) -> impl Iterator<Item = (OpCopy, Assignment)> + '_ {
        self.slots.iter().enumerate().flat_map(|(i, roles)| {
            let op = troy_dfg::NodeId::new(i);
            [Role::Nc, Role::Rc, Role::Recovery]
                .into_iter()
                .filter_map(move |role| roles[role.index()].map(|a| (OpCopy::new(op, role), a)))
        })
    }

    /// The set of licenses actually used by the assignments.
    #[must_use]
    pub fn licenses_used(&self, problem: &SynthesisProblem) -> BTreeSet<License> {
        self.iter()
            .map(|(copy, a)| License {
                vendor: a.vendor,
                ip_type: problem.dfg().kind(copy.op).ip_type(),
            })
            .collect()
    }

    /// Physical instance count per license: the peak number of copies bound
    /// to `(vendor, type)` in any single cycle. Instances persist across the
    /// detection and recovery phases (same silicon), so the maximum is taken
    /// over the whole schedule.
    #[must_use]
    pub fn instances(&self, problem: &SynthesisProblem) -> BTreeMap<License, usize> {
        let mut per_cycle: BTreeMap<(License, usize), usize> = BTreeMap::new();
        for (copy, a) in self.iter() {
            let lic = License {
                vendor: a.vendor,
                ip_type: problem.dfg().kind(copy.op).ip_type(),
            };
            *per_cycle.entry((lic, a.cycle)).or_insert(0) += 1;
        }
        let mut peak: BTreeMap<License, usize> = BTreeMap::new();
        for ((lic, _), count) in per_cycle {
            let e = peak.entry(lic).or_insert(0);
            *e = (*e).max(count);
        }
        peak
    }

    /// Total silicon area of the instantiated cores.
    ///
    /// # Panics
    ///
    /// Panics if a used license is not offered by the problem's catalog
    /// (validate first for a graceful diagnostic).
    #[must_use]
    pub fn area(&self, problem: &SynthesisProblem) -> u64 {
        self.instances(problem)
            .iter()
            .map(|(lic, &n)| {
                let off = problem
                    .catalog()
                    .offering_of(*lic)
                    .unwrap_or_else(|| panic!("license {lic} not in catalog"));
                off.area * n as u64
            })
            .sum()
    }

    /// Total license cost in dollars (the paper's `mc` once minimized).
    ///
    /// # Panics
    ///
    /// Panics if a used license is not offered by the catalog.
    #[must_use]
    pub fn license_cost(&self, problem: &SynthesisProblem) -> u64 {
        problem
            .catalog()
            .cost_of(self.licenses_used(problem).into_iter().collect::<Vec<_>>())
    }

    /// The paper's table columns for this design.
    #[must_use]
    pub fn stats(&self, problem: &SynthesisProblem) -> DesignStats {
        let licenses = self.licenses_used(problem);
        let instances = self.instances(problem);
        DesignStats {
            instances_used: instances.values().sum(),
            licenses_used: licenses.len(),
            vendors_used: licenses
                .iter()
                .map(|l| l.vendor)
                .collect::<BTreeSet<_>>()
                .len(),
            license_cost: self.license_cost(problem),
            area: self.area(problem),
        }
    }

    /// Per-cycle, per-type occupancy table (for reports): cycle →
    /// `(vendor, type)` → ops bound there.
    #[must_use]
    pub fn occupancy(
        &self,
        problem: &SynthesisProblem,
    ) -> BTreeMap<usize, BTreeMap<(VendorId, IpTypeId), Vec<OpCopy>>> {
        let mut table: BTreeMap<usize, BTreeMap<(VendorId, IpTypeId), Vec<OpCopy>>> =
            BTreeMap::new();
        for (copy, a) in self.iter() {
            table
                .entry(a.cycle)
                .or_default()
                .entry((a.vendor, problem.dfg().kind(copy.op).ip_type()))
                .or_default()
                .push(copy);
        }
        table
    }

    /// Whether every required copy for the mode has an assignment.
    #[must_use]
    pub fn is_complete(&self, mode: Mode) -> bool {
        self.slots.iter().all(|roles| {
            Role::for_mode(mode)
                .iter()
                .all(|r| roles[r.index()].is_some())
        })
    }
}

/// The paper's result columns: `u` instances of `t` license types from `v`
/// vendors, at minimum cost `mc`, plus the occupied area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignStats {
    /// `u`: number of physical IP-core instances.
    pub instances_used: usize,
    /// `t`: number of distinct `(vendor, type)` licenses bought.
    pub licenses_used: usize,
    /// `v`: number of distinct vendors involved.
    pub vendors_used: usize,
    /// `mc`: total license cost in dollars.
    pub license_cost: u64,
    /// Total silicon area of the instantiated cores.
    pub area: u64,
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "u={} t={} v={} mc=${} area={}",
            self.instances_used,
            self.licenses_used,
            self.vendors_used,
            self.license_cost,
            self.area
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::problem::SynthesisProblem;
    use troy_dfg::{benchmarks, NodeId};

    fn tiny_problem() -> SynthesisProblem {
        SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .build()
            .unwrap()
    }

    /// polynom ops: o1,o2,o3 = mul; o4,o5 = add.
    fn sample_impl() -> Implementation {
        let mut imp = Implementation::new(5);
        let a = |c: usize, v: usize| Assignment {
            cycle: c,
            vendor: VendorId::new(v),
        };
        // NC: t1,t2 cycle1; t3 cycle2; t4 cycle2... t4 needs t1,t2 -> c2; t5 c3.
        imp.assign(NodeId::new(0), Role::Nc, a(1, 0));
        imp.assign(NodeId::new(1), Role::Nc, a(1, 1));
        imp.assign(NodeId::new(2), Role::Nc, a(2, 0));
        imp.assign(NodeId::new(3), Role::Nc, a(2, 2));
        imp.assign(NodeId::new(4), Role::Nc, a(3, 1));
        // RC shifted by one cycle, vendors rotated.
        imp.assign(NodeId::new(0), Role::Rc, a(2, 1));
        imp.assign(NodeId::new(1), Role::Rc, a(2, 2));
        imp.assign(NodeId::new(2), Role::Rc, a(3, 1));
        imp.assign(NodeId::new(3), Role::Rc, a(3, 3));
        imp.assign(NodeId::new(4), Role::Rc, a(4, 0));
        imp
    }

    #[test]
    fn completeness_tracks_mode() {
        let imp = sample_impl();
        assert!(imp.is_complete(Mode::DetectionOnly));
        assert!(!imp.is_complete(Mode::DetectionRecovery));
    }

    #[test]
    fn licenses_and_vendors_counted() {
        let p = tiny_problem();
        let imp = sample_impl();
        let stats = imp.stats(&p);
        // Mults on vendors {0,1,2} (NC: 0,1,0 / RC: 1,2,1) -> mult licenses
        // {0,1,2}; adds on vendors {2,1} NC and {3,0} RC -> adder licenses
        // {0,1,2,3}. t = 3 + 4 = 7.
        assert_eq!(stats.licenses_used, 7);
        assert_eq!(stats.vendors_used, 4);
    }

    #[test]
    fn instances_take_peak_concurrency() {
        let p = tiny_problem();
        let imp = sample_impl();
        let inst = imp.instances(&p);
        // Vendor0 mults: NC t1@1, NC t3@2 -> never concurrent: 1 instance.
        let v0mul = License {
            vendor: VendorId::new(0),
            ip_type: IpTypeId::MULTIPLIER,
        };
        assert_eq!(inst[&v0mul], 1);
        // Vendor1 mults: NC t2@1, RC t1@2, RC t3@3 -> 1 instance.
        let v1mul = License {
            vendor: VendorId::new(1),
            ip_type: IpTypeId::MULTIPLIER,
        };
        assert_eq!(inst[&v1mul], 1);
        // Total u = sum of instances.
        assert_eq!(imp.stats(&p).instances_used, inst.values().sum::<usize>());
    }

    #[test]
    fn concurrent_same_license_needs_two_instances() {
        let p = tiny_problem();
        let mut imp = Implementation::new(5);
        let a = |c: usize, v: usize| Assignment {
            cycle: c,
            vendor: VendorId::new(v),
        };
        // Two mults on vendor 0 in the same cycle.
        imp.assign(NodeId::new(0), Role::Nc, a(1, 0));
        imp.assign(NodeId::new(1), Role::Nc, a(1, 0));
        let v0mul = License {
            vendor: VendorId::new(0),
            ip_type: IpTypeId::MULTIPLIER,
        };
        assert_eq!(imp.instances(&p)[&v0mul], 2);
        assert_eq!(imp.area(&p), 2 * 6843);
    }

    #[test]
    fn cost_counts_each_license_once() {
        let p = tiny_problem();
        let mut imp = Implementation::new(5);
        let a = |c: usize, v: usize| Assignment {
            cycle: c,
            vendor: VendorId::new(v),
        };
        imp.assign(NodeId::new(0), Role::Nc, a(1, 0));
        imp.assign(NodeId::new(1), Role::Nc, a(1, 0));
        imp.assign(NodeId::new(2), Role::Nc, a(2, 0));
        // Three mults, one vendor -> one license fee.
        assert_eq!(imp.license_cost(&p), 950);
    }

    #[test]
    fn unassign_clears_slot() {
        let mut imp = sample_impl();
        imp.unassign(NodeId::new(0), Role::Nc);
        assert!(imp.assignment(NodeId::new(0), Role::Nc).is_none());
        assert!(!imp.is_complete(Mode::DetectionOnly));
    }

    #[test]
    fn occupancy_groups_by_cycle_and_core() {
        let p = tiny_problem();
        let imp = sample_impl();
        let occ = imp.occupancy(&p);
        let cycle1 = &occ[&1];
        assert_eq!(cycle1.len(), 2); // two distinct (vendor,type) cores used
        let total: usize = occ.values().flat_map(|m| m.values()).map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn stats_display_mentions_all_columns() {
        let p = tiny_problem();
        let s = sample_impl().stats(&p);
        let text = s.to_string();
        for needle in ["u=", "t=", "v=", "mc=$", "area="] {
            assert!(text.contains(needle), "{text}");
        }
    }

    #[test]
    fn iter_yields_all_assignments() {
        let imp = sample_impl();
        assert_eq!(imp.iter().count(), 10);
        assert!(imp.iter().all(|(c, _)| c.role != Role::Recovery));
    }
}
