//! Full design validation: every paper constraint checked against an
//! [`Implementation`].
//!
//! All three solvers (ILP formulation, exact domain search, heuristic) are
//! required to produce implementations this module accepts; the property
//! tests in the workspace enforce that.

use std::fmt;

use crate::implementation::Implementation;
use crate::problem::SynthesisProblem;
use crate::rules::{diversity_constraints, OpCopy, Role};

/// One violated constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// A required copy has no assignment (paper eq. (3)).
    Unassigned(OpCopy),
    /// A copy is scheduled outside its phase window (eqs. (14)-(15)).
    OutsideWindow {
        /// The offending copy.
        copy: OpCopy,
        /// Its assigned cycle.
        cycle: usize,
        /// The allowed window (inclusive).
        window: (usize, usize),
    },
    /// A data dependency is not respected within a computation (eq. (4)).
    DependencyOrder {
        /// Producer copy.
        parent: OpCopy,
        /// Consumer copy scheduled no later than the producer.
        child: OpCopy,
    },
    /// A copy is bound to a vendor that does not sell its IP type.
    NoSuchCore(OpCopy),
    /// Two copies that the design rules require on different vendors share
    /// one (eqs. (5)-(10)).
    SameVendor {
        /// First copy.
        a: OpCopy,
        /// Second copy.
        b: OpCopy,
        /// The rule that is violated.
        rule: crate::rules::RuleKind,
    },
    /// Total instantiated area exceeds the limit (eq. (13)).
    AreaExceeded {
        /// Area used by the implementation.
        used: u64,
        /// The problem's area limit.
        limit: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Unassigned(c) => write!(f, "copy {c} is not scheduled"),
            Violation::OutsideWindow {
                copy,
                cycle,
                window,
            } => write!(
                f,
                "copy {copy} at cycle {cycle} outside window {}..={}",
                window.0, window.1
            ),
            Violation::DependencyOrder { parent, child } => {
                write!(f, "dependency {parent} -> {child} not respected")
            }
            Violation::NoSuchCore(c) => {
                write!(f, "copy {c} bound to a vendor without a matching core")
            }
            Violation::SameVendor { a, b, rule } => {
                write!(f, "{a} and {b} share a vendor, violating {rule}")
            }
            Violation::AreaExceeded { used, limit } => {
                write!(f, "area {used} exceeds limit {limit}")
            }
        }
    }
}

/// Checks an implementation against every constraint of the problem.
///
/// Returns all violations (empty = valid design). Resource exclusivity
/// (paper eq. (16), one op per core per cycle) is accounted for by
/// construction: [`Implementation::instances`] sizes the core pool by peak
/// concurrency, so concurrency shows up as area instead.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troyhls::{validate, Catalog, Implementation, Mode, SynthesisProblem};
///
/// let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionOnly)
///     .detection_latency(4)
///     .build()?;
/// let empty = Implementation::new(p.dfg().len());
/// // Nothing scheduled: one violation per required copy.
/// assert_eq!(validate(&p, &empty).len(), 10);
/// # Ok::<(), troyhls::ProblemError>(())
/// ```
#[must_use]
pub fn validate(problem: &SynthesisProblem, imp: &Implementation) -> Vec<Violation> {
    let mut out = Vec::new();
    let dfg = problem.dfg();
    let det = problem.detection_latency();
    let total = problem.total_latency();

    // Completeness + windows + core existence.
    for op in dfg.node_ids() {
        for &role in Role::for_mode(problem.mode()) {
            let copy = OpCopy::new(op, role);
            let Some(a) = imp.assignment_of(copy) else {
                out.push(Violation::Unassigned(copy));
                continue;
            };
            let window = match role {
                Role::Nc | Role::Rc => (1, det),
                Role::Recovery => (det + 1, total),
            };
            if a.cycle < window.0 || a.cycle > window.1 {
                out.push(Violation::OutsideWindow {
                    copy,
                    cycle: a.cycle,
                    window,
                });
            }
            if problem
                .catalog()
                .offering(a.vendor, dfg.kind(op).ip_type())
                .is_none()
            {
                out.push(Violation::NoSuchCore(copy));
            }
        }
    }

    // Dependencies within each computation.
    for (p, c) in dfg.edges() {
        for &role in Role::for_mode(problem.mode()) {
            let (pa, ca) = (imp.assignment(p, role), imp.assignment(c, role));
            if let (Some(pa), Some(ca)) = (pa, ca) {
                if ca.cycle <= pa.cycle {
                    out.push(Violation::DependencyOrder {
                        parent: OpCopy::new(p, role),
                        child: OpCopy::new(c, role),
                    });
                }
            }
        }
    }

    // Vendor-diversity rules.
    for dc in diversity_constraints(problem) {
        if let (Some(a), Some(b)) = (imp.assignment_of(dc.a), imp.assignment_of(dc.b)) {
            if a.vendor == b.vendor {
                out.push(Violation::SameVendor {
                    a: dc.a,
                    b: dc.b,
                    rule: dc.rule,
                });
            }
        }
    }

    // Area limit — only meaningful once every copy is placed on a real core.
    if imp.is_complete(problem.mode()) && !out.iter().any(|v| matches!(v, Violation::NoSuchCore(_)))
    {
        let used = imp.area(problem);
        if used > problem.area_limit() {
            out.push(Violation::AreaExceeded {
                used,
                limit: problem.area_limit(),
            });
        }
    }

    out
}

/// `true` when [`validate`] reports no violations.
#[must_use]
pub fn is_valid(problem: &SynthesisProblem, imp: &Implementation) -> bool {
    validate(problem, imp).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, VendorId};
    use crate::implementation::Assignment;
    use crate::problem::Mode;
    use troy_dfg::{benchmarks, NodeId};

    fn problem(mode: Mode) -> SynthesisProblem {
        SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(mode)
            .detection_latency(4)
            .recovery_latency(3)
            .area_limit(50_000)
            .build()
            .unwrap()
    }

    fn a(c: usize, v: usize) -> Assignment {
        Assignment {
            cycle: c,
            vendor: VendorId::new(v),
        }
    }

    /// A hand-built valid detection-only design for polynom.
    /// ops: o1,o2,o3 mul; o4 add(o1,o2); o5 add(o4,o3).
    fn valid_detection() -> Implementation {
        let mut imp = Implementation::new(5);
        // NC: vendors satisfy sibling (o1!=o2), parent-child (o1,o2 != o4;
        // o4 != o5; o3 != o5), sibling (o4 != o3).
        imp.assign(NodeId::new(0), Role::Nc, a(1, 0));
        imp.assign(NodeId::new(1), Role::Nc, a(1, 1));
        imp.assign(NodeId::new(2), Role::Nc, a(1, 0));
        imp.assign(NodeId::new(3), Role::Nc, a(2, 2));
        imp.assign(NodeId::new(4), Role::Nc, a(3, 1));
        // RC: per-op different from NC, same internal pattern shifted.
        imp.assign(NodeId::new(0), Role::Rc, a(2, 1));
        imp.assign(NodeId::new(1), Role::Rc, a(2, 2));
        imp.assign(NodeId::new(2), Role::Rc, a(2, 1));
        imp.assign(NodeId::new(3), Role::Rc, a(3, 3));
        imp.assign(NodeId::new(4), Role::Rc, a(4, 0));
        imp
    }

    #[test]
    fn valid_design_passes() {
        let p = problem(Mode::DetectionOnly);
        let imp = valid_detection();
        let vs = validate(&p, &imp);
        assert!(vs.is_empty(), "{vs:?}");
        assert!(is_valid(&p, &imp));
    }

    #[test]
    fn missing_copy_reported() {
        let p = problem(Mode::DetectionOnly);
        let mut imp = valid_detection();
        imp.unassign(NodeId::new(2), Role::Rc);
        let vs = validate(&p, &imp);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::Unassigned(c) if c.op == NodeId::new(2))));
    }

    #[test]
    fn detection_copy_outside_window_reported() {
        let p = problem(Mode::DetectionOnly);
        let mut imp = valid_detection();
        imp.assign(NodeId::new(4), Role::Rc, a(5, 0)); // window is 1..=4
        assert!(validate(&p, &imp)
            .iter()
            .any(|v| matches!(v, Violation::OutsideWindow { .. })));
    }

    #[test]
    fn dependency_violation_reported() {
        let p = problem(Mode::DetectionOnly);
        let mut imp = valid_detection();
        // o4 consumes o1/o2; schedule it in the same cycle.
        imp.assign(NodeId::new(3), Role::Nc, a(1, 2));
        assert!(validate(&p, &imp)
            .iter()
            .any(|v| matches!(v, Violation::DependencyOrder { .. })));
    }

    #[test]
    fn rule1_detection_violation_reported() {
        let p = problem(Mode::DetectionOnly);
        let mut imp = valid_detection();
        // Give RC o1 the same vendor as NC o1.
        imp.assign(NodeId::new(0), Role::Rc, a(2, 0));
        let vs = validate(&p, &imp);
        assert!(vs.iter().any(|v| matches!(
            v,
            Violation::SameVendor {
                rule: crate::rules::RuleKind::DetectionDuplicate,
                ..
            }
        )));
    }

    #[test]
    fn sibling_violation_reported() {
        let p = problem(Mode::DetectionOnly);
        let mut imp = valid_detection();
        // o1 and o2 feed o4; same vendor violates Rule 2.
        imp.assign(NodeId::new(1), Role::Nc, a(1, 0));
        let vs = validate(&p, &imp);
        assert!(vs.iter().any(|v| matches!(
            v,
            Violation::SameVendor {
                rule: crate::rules::RuleKind::DetectionSiblings,
                ..
            }
        )));
    }

    #[test]
    fn unknown_core_reported() {
        // Table 1 has 4 vendors; vendor 7 exists in paper8 only.
        let p = problem(Mode::DetectionOnly);
        let mut imp = valid_detection();
        imp.assign(NodeId::new(0), Role::Nc, a(1, 7));
        assert!(validate(&p, &imp)
            .iter()
            .any(|v| matches!(v, Violation::NoSuchCore(_))));
    }

    #[test]
    fn recovery_requires_third_vendor() {
        let p = problem(Mode::DetectionRecovery);
        let mut imp = valid_detection();
        // Recovery copies in window 5..=7, re-bound to fresh vendors.
        // o1: NC=0, RC=1 -> R must avoid {0,1}.
        imp.assign(NodeId::new(0), Role::Recovery, a(5, 2));
        imp.assign(NodeId::new(1), Role::Recovery, a(5, 3));
        imp.assign(NodeId::new(2), Role::Recovery, a(5, 2));
        imp.assign(NodeId::new(3), Role::Recovery, a(6, 0));
        imp.assign(NodeId::new(4), Role::Recovery, a(7, 3));
        let vs = validate(&p, &imp);
        assert!(vs.is_empty(), "{vs:?}");

        // Violate rule 1 recovery: o1 R on its NC vendor.
        imp.assign(NodeId::new(0), Role::Recovery, a(5, 0));
        assert!(validate(&p, &imp).iter().any(|v| matches!(
            v,
            Violation::SameVendor {
                rule: crate::rules::RuleKind::RecoveryRebind,
                ..
            }
        )));
    }

    #[test]
    fn recovery_copy_in_detection_window_reported() {
        let p = problem(Mode::DetectionRecovery);
        let mut imp = valid_detection();
        imp.assign(NodeId::new(0), Role::Recovery, a(3, 2)); // window 5..=7
        assert!(validate(&p, &imp).iter().any(|v| matches!(
            v,
            Violation::OutsideWindow {
                copy,
                ..
            } if copy.role == Role::Recovery
        )));
    }

    #[test]
    fn area_limit_enforced() {
        let g = benchmarks::polynom();
        let p = SynthesisProblem::builder(g, Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .area_limit(10_000) // three mult licenses alone exceed this
            .build()
            .unwrap();
        let imp = valid_detection();
        let vs = validate(&p, &imp);
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::AreaExceeded { .. })),
            "{vs:?}"
        );
    }

    #[test]
    fn area_not_checked_while_incomplete() {
        let g = benchmarks::polynom();
        let p = SynthesisProblem::builder(g, Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .area_limit(1)
            .build()
            .unwrap();
        let mut imp = valid_detection();
        imp.unassign(NodeId::new(0), Role::Nc);
        let vs = validate(&p, &imp);
        assert!(!vs
            .iter()
            .any(|v| matches!(v, Violation::AreaExceeded { .. })));
    }

    #[test]
    fn violations_display() {
        let p = problem(Mode::DetectionOnly);
        let imp = Implementation::new(5);
        for v in validate(&p, &imp) {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn related_pair_rule2_recovery_enforced() {
        let g = benchmarks::polynom();
        let p = SynthesisProblem::builder(g, Catalog::table1())
            .detection_latency(4)
            .recovery_latency(3)
            .area_limit(50_000)
            .related_pair(NodeId::new(0), NodeId::new(2))
            .build()
            .unwrap();
        let mut imp = valid_detection();
        // o3 (index 2) detection vendors: NC=0, RC=1. o1 recovery must also
        // avoid those because (o1, o3) are closely related.
        imp.assign(NodeId::new(0), Role::Recovery, a(5, 2));
        imp.assign(NodeId::new(1), Role::Recovery, a(5, 3));
        imp.assign(NodeId::new(2), Role::Recovery, a(5, 2));
        imp.assign(NodeId::new(3), Role::Recovery, a(6, 0));
        imp.assign(NodeId::new(4), Role::Recovery, a(7, 3));
        assert!(validate(&p, &imp).is_empty(), "{:?}", validate(&p, &imp));
        // Now bind o1's recovery copy to vendor 1 = RC vendor of o3... o1's
        // own detection vendors are {0,1} too, so use a pair where only the
        // related rule fires: rebind o3's NC to vendor 3 first.
        imp.assign(NodeId::new(2), Role::Nc, a(1, 3));
        imp.assign(NodeId::new(2), Role::Recovery, a(5, 0));
        // o3 detection vendors now {3,1}; o1 recovery at vendor 2 is fine,
        // but at vendor 3 it violates only RecoveryRelated.
        imp.assign(NodeId::new(0), Role::Recovery, a(5, 3));
        let vs = validate(&p, &imp);
        assert!(
            vs.iter().any(|v| matches!(
                v,
                Violation::SameVendor {
                    rule: crate::rules::RuleKind::RecoveryRelated,
                    ..
                }
            )),
            "{vs:?}"
        );
    }
}
