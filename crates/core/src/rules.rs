//! The design rules as a single source of truth.
//!
//! Every consumer — the ILP formulation, the exact domain solver, the
//! heuristic and the validator — derives its vendor-diversity constraints
//! from [`diversity_constraints`], so the four rules are encoded exactly
//! once:
//!
//! - **Rule 1 (detection)**: `vendor(NC_i) ≠ vendor(RC_i)` for every op `i`.
//! - **Rule 2 (detection)**: within each computation (NC, RC and the
//!   recovery run alike), a parent and its child, and two parents of the
//!   same child, use different vendors (collusion prevention).
//! - **Rule 1 (recovery)**: `vendor(R_i) ∉ {vendor(NC_i), vendor(RC_i)}`.
//! - **Rule 2 (recovery)**: for a closely-related pair `(i, j)`,
//!   `vendor(R_i) ∉ {vendor(NC_j), vendor(RC_j)}` and symmetrically.

use std::fmt;

use troy_dfg::NodeId;

use crate::problem::{Mode, SynthesisProblem};

/// Which execution an operation copy belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Normal computation (the original function) in the detection phase.
    Nc,
    /// Redundant re-computation in the detection phase.
    Rc,
    /// The re-bound computation in the recovery phase.
    Recovery,
}

impl Role {
    /// All roles relevant to a mode, in scheduling order.
    #[must_use]
    pub fn for_mode(mode: Mode) -> &'static [Role] {
        match mode {
            Mode::DetectionOnly => &[Role::Nc, Role::Rc],
            Mode::DetectionRecovery => &[Role::Nc, Role::Rc, Role::Recovery],
        }
    }

    /// Dense index (NC=0, RC=1, Recovery=2) used by per-copy tables.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Role::Nc => 0,
            Role::Rc => 1,
            Role::Recovery => 2,
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Nc => "NC",
            Role::Rc => "RC",
            Role::Recovery => "R",
        })
    }
}

/// One scheduled copy of an operation: the paper's `D`, `D'` and `R`
/// families correspond to roles `Nc`, `Rc` and `Recovery`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpCopy {
    /// The operation in the DFG.
    pub op: NodeId,
    /// Which execution this copy belongs to.
    pub role: Role,
}

impl OpCopy {
    /// Convenience constructor.
    #[must_use]
    pub fn new(op: NodeId, role: Role) -> Self {
        OpCopy { op, role }
    }
}

impl fmt::Display for OpCopy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.op, self.role)
    }
}

/// Which design rule produced a constraint (for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// Rule 1 for detection: NC and RC copies of one op differ.
    DetectionDuplicate,
    /// Rule 2 for detection: parent and child within one computation differ.
    DetectionParentChild,
    /// Rule 2 for detection: two parents of the same child differ.
    DetectionSiblings,
    /// Rule 1 for fast recovery: recovery copy differs from both detection
    /// copies of the same op.
    RecoveryRebind,
    /// Rule 2 for fast recovery: recovery copy differs from the detection
    /// copies of a closely-related op.
    RecoveryRelated,
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RuleKind::DetectionDuplicate => "rule 1 (detection)",
            RuleKind::DetectionParentChild => "rule 2 (detection, parent-child)",
            RuleKind::DetectionSiblings => "rule 2 (detection, siblings)",
            RuleKind::RecoveryRebind => "rule 1 (recovery)",
            RuleKind::RecoveryRelated => "rule 2 (recovery, related ops)",
        })
    }
}

/// A pairwise requirement: the two copies must be bound to IP cores from
/// *different vendors*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiversityConstraint {
    /// First copy.
    pub a: OpCopy,
    /// Second copy.
    pub b: OpCopy,
    /// Which rule demands it.
    pub rule: RuleKind,
}

/// Expands the four design rules into the full pairwise constraint list for
/// a problem.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troyhls::{diversity_constraints, Catalog, Mode, RuleKind, SynthesisProblem};
///
/// let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionOnly)
///     .build()?;
/// let cs = diversity_constraints(&p);
/// // 5 ops -> 5 NC/RC pairs, plus parent-child and sibling pairs per copy.
/// assert_eq!(
///     cs.iter().filter(|c| c.rule == RuleKind::DetectionDuplicate).count(),
///     5
/// );
/// # Ok::<(), troyhls::ProblemError>(())
/// ```
#[must_use]
pub fn diversity_constraints(problem: &SynthesisProblem) -> Vec<DiversityConstraint> {
    let dfg = problem.dfg();
    let mode = problem.mode();
    let mut out = Vec::new();

    // Rule 1 for detection.
    for op in dfg.node_ids() {
        out.push(DiversityConstraint {
            a: OpCopy::new(op, Role::Nc),
            b: OpCopy::new(op, Role::Rc),
            rule: RuleKind::DetectionDuplicate,
        });
    }

    // Rule 2 for detection, applied within every computation. The paper
    // writes eq. (6) with the generic `H` (all of D, D', R) and eq. (7) for
    // D; collusion prevention concerns any two directly-interacting cores,
    // so both checks apply inside each of NC, RC and the recovery run.
    for &role in Role::for_mode(mode) {
        for (parent, child) in dfg.edges() {
            out.push(DiversityConstraint {
                a: OpCopy::new(parent, role),
                b: OpCopy::new(child, role),
                rule: RuleKind::DetectionParentChild,
            });
        }
        for (a, b) in dfg.sibling_pairs() {
            out.push(DiversityConstraint {
                a: OpCopy::new(a, role),
                b: OpCopy::new(b, role),
                rule: RuleKind::DetectionSiblings,
            });
        }
    }

    if mode == Mode::DetectionRecovery {
        // Rule 1 for fast recovery.
        for op in dfg.node_ids() {
            for det in [Role::Nc, Role::Rc] {
                out.push(DiversityConstraint {
                    a: OpCopy::new(op, Role::Recovery),
                    b: OpCopy::new(op, det),
                    rule: RuleKind::RecoveryRebind,
                });
            }
        }
        // Rule 2 for fast recovery over declared closely-related pairs.
        for &(i, j) in problem.related_pairs() {
            for (rec, det_op) in [(i, j), (j, i)] {
                for det in [Role::Nc, Role::Rc] {
                    out.push(DiversityConstraint {
                        a: OpCopy::new(rec, Role::Recovery),
                        b: OpCopy::new(det_op, det),
                        rule: RuleKind::RecoveryRelated,
                    });
                }
            }
        }
    }

    out
}

/// Lower bound on the number of distinct vendors required per IP type.
///
/// Three ingredients, all exact necessary conditions:
///
/// - any type that occurs needs ≥ 2 vendors (NC vs RC, Rule 1 detection),
///   and ≥ 3 in recovery mode (Rule 1 recovery);
/// - within one computation, an operation and its parents form a clique in
///   the diversity graph (parents are pairwise siblings, each is
///   parent-child with the op), so a type needs at least as many vendors as
///   its largest per-op clique share.
///
/// Used to prune license subsets cheaply before a full feasibility check.
#[must_use]
pub fn min_vendors_per_type(problem: &SynthesisProblem) -> Vec<(troy_dfg::IpTypeId, usize)> {
    let base = match problem.mode() {
        Mode::DetectionOnly => 2,
        Mode::DetectionRecovery => 3,
    };
    let dfg = problem.dfg();
    let mut need: Vec<(troy_dfg::IpTypeId, usize)> = Vec::new();
    for (kind, _) in dfg.op_histogram() {
        let t = kind.ip_type();
        if !need.iter().any(|&(at, _)| at == t) {
            need.push((t, base));
        }
    }
    // Clique bound: {op} ∪ parents(op) are pairwise diverse within a role.
    for op in dfg.node_ids() {
        let mut counts = [0usize; troy_dfg::IpTypeId::COUNT];
        counts[dfg.kind(op).ip_type().index()] += 1;
        for &p in dfg.preds(op) {
            counts[dfg.kind(p).ip_type().index()] += 1;
        }
        for (t, n) in &mut need {
            *n = (*n).max(counts[t.index()]);
        }
    }
    need
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use troy_dfg::{benchmarks, IpTypeId};

    fn polynom_problem(mode: Mode) -> SynthesisProblem {
        SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(mode)
            .detection_latency(4)
            .recovery_latency(3)
            .build()
            .unwrap()
    }

    #[test]
    fn detection_only_constraint_counts() {
        let p = polynom_problem(Mode::DetectionOnly);
        let cs = diversity_constraints(&p);
        let count = |k: RuleKind| cs.iter().filter(|c| c.rule == k).count();
        // polynom: 5 ops, 4 edges, sibling pairs: (t1,t2) into t4 and
        // (t4,t3) into t5 -> 2 sibling pairs.
        assert_eq!(count(RuleKind::DetectionDuplicate), 5);
        assert_eq!(count(RuleKind::DetectionParentChild), 4 * 2); // NC + RC
        assert_eq!(count(RuleKind::DetectionSiblings), 2 * 2);
        assert_eq!(count(RuleKind::RecoveryRebind), 0);
        assert_eq!(count(RuleKind::RecoveryRelated), 0);
    }

    #[test]
    fn recovery_mode_adds_rebind_and_third_role() {
        let p = polynom_problem(Mode::DetectionRecovery);
        let cs = diversity_constraints(&p);
        let count = |k: RuleKind| cs.iter().filter(|c| c.rule == k).count();
        assert_eq!(count(RuleKind::DetectionDuplicate), 5);
        assert_eq!(count(RuleKind::DetectionParentChild), 4 * 3); // NC, RC, R
        assert_eq!(count(RuleKind::DetectionSiblings), 2 * 3);
        assert_eq!(count(RuleKind::RecoveryRebind), 5 * 2);
    }

    #[test]
    fn related_pairs_expand_symmetrically() {
        let g = benchmarks::polynom();
        let a = troy_dfg::NodeId::new(0);
        let b = troy_dfg::NodeId::new(1);
        let p = SynthesisProblem::builder(g, Catalog::table1())
            .detection_latency(4)
            .recovery_latency(3)
            .related_pair(a, b)
            .build()
            .unwrap();
        let cs = diversity_constraints(&p);
        let related: Vec<_> = cs
            .iter()
            .filter(|c| c.rule == RuleKind::RecoveryRelated)
            .collect();
        // (R_a vs NC_b, RC_b) + (R_b vs NC_a, RC_a) = 4 constraints.
        assert_eq!(related.len(), 4);
        assert!(related
            .iter()
            .all(|c| c.a.role == Role::Recovery && c.b.role != Role::Recovery));
    }

    #[test]
    fn min_vendors_reflects_mode() {
        let det = polynom_problem(Mode::DetectionOnly);
        let rec = polynom_problem(Mode::DetectionRecovery);
        let det_needs = min_vendors_per_type(&det);
        let rec_needs = min_vendors_per_type(&rec);
        assert!(det_needs.iter().all(|&(_, n)| n == 2));
        assert!(rec_needs.iter().all(|&(_, n)| n == 3));
        let types: Vec<IpTypeId> = det_needs.iter().map(|&(t, _)| t).collect();
        assert!(types.contains(&IpTypeId::ADDER));
        assert!(types.contains(&IpTypeId::MULTIPLIER));
        assert_eq!(types.len(), 2);
    }

    #[test]
    fn roles_for_mode() {
        assert_eq!(Role::for_mode(Mode::DetectionOnly).len(), 2);
        assert_eq!(Role::for_mode(Mode::DetectionRecovery).len(), 3);
        assert_eq!(Role::Recovery.index(), 2);
    }

    #[test]
    fn displays() {
        let c = OpCopy::new(troy_dfg::NodeId::new(0), Role::Rc);
        assert_eq!(c.to_string(), "o1[RC]");
        assert!(RuleKind::RecoveryRebind.to_string().contains("recovery"));
    }
}
