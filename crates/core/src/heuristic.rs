//! A constructive heuristic synthesizer.
//!
//! Strategy: start from the license set every rule demands at minimum
//! (cheapest vendors per type), run the exact solver's feasibility checker
//! in *find-only* mode, and grow the license set greedily (cheapest next
//! license first) until a valid design appears. A final shrink pass drops
//! licenses one at a time (most expensive first) and keeps any removal that
//! stays feasible.
//!
//! The result is an upper bound on the optimal cost, produced quickly and
//! deterministically; the ablation benches compare it against
//! [`crate::ExactSolver`].

use std::time::Instant;

use troy_dfg::IpTypeId;

use crate::catalog::License;
use crate::problem::SynthesisProblem;
use crate::rules::min_vendors_per_type;
use crate::solver::{SolveOptions, Synthesis, SynthesisError, Synthesizer};

/// Greedy grow-then-shrink synthesis (see the module docs).
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troyhls::{
///     Catalog, GreedySolver, Mode, SolveOptions, SynthesisProblem, Synthesizer,
/// };
///
/// let problem = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionRecovery)
///     .detection_latency(4)
///     .recovery_latency(3)
///     .area_limit(22_000)
///     .build()?;
/// let result = GreedySolver::new().synthesize(&problem, &SolveOptions::quick())?;
/// // The heuristic never beats the exact optimum ($4160) but finds a
/// // valid design fast.
/// assert!(result.cost >= 4160);
/// assert!(!result.proven_optimal);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GreedySolver {
    _private: (),
}

impl GreedySolver {
    /// Creates the solver.
    #[must_use]
    pub fn new() -> Self {
        GreedySolver::default()
    }
}

impl Synthesizer for GreedySolver {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        options: &SolveOptions,
    ) -> Result<Synthesis, SynthesisError> {
        let start = Instant::now();
        let catalog = problem.catalog();
        let checker = crate::exact::FeasibilityChecker::new(problem);

        // Seed: per needed type, the minimum number of cheapest vendors.
        let mut chosen: Vec<License> = Vec::new();
        for (t, need) in min_vendors_per_type(problem) {
            let mut vendors: Vec<_> = catalog
                .vendors_for(t)
                .map(|v| (catalog.offering(v, t).expect("listed").cost, v))
                .collect();
            vendors.sort_unstable();
            if vendors.len() < need {
                return Err(SynthesisError::Infeasible);
            }
            for &(_, v) in vendors.iter().take(need) {
                chosen.push(License {
                    vendor: v,
                    ip_type: t,
                });
            }
        }

        // Remaining purchasable licenses, cheapest first.
        let mut pool: Vec<(u64, License)> = catalog
            .licenses_by_cost()
            .into_iter()
            .filter(|(l, _)| {
                problem
                    .dfg()
                    .op_histogram()
                    .iter()
                    .any(|(k, _)| k.ip_type() == l.ip_type)
                    && !chosen.contains(l)
            })
            .map(|(l, off)| (off.cost, l))
            .collect();
        pool.sort_unstable_by_key(|&(c, _)| c);

        // Grow until feasible.
        let mut best = loop {
            if options.out_of_time(start) {
                return Err(SynthesisError::BudgetExhausted);
            }
            if let Some(imp) = checker.find(&chosen, options.node_limit, start, options) {
                break imp;
            }
            match pool.first() {
                Some(&(_, next)) => {
                    chosen.push(next);
                    pool.remove(0);
                }
                None => return Err(SynthesisError::Infeasible),
            }
        };

        // Shrink: drop licenses most-expensive-first while staying feasible.
        let mut order: Vec<License> = chosen.clone();
        order.sort_by_key(|l| {
            std::cmp::Reverse(catalog.offering_of(*l).expect("chosen license").cost)
        });
        for cand in order {
            if options.out_of_time(start) {
                break;
            }
            let trial: Vec<License> = chosen.iter().copied().filter(|&l| l != cand).collect();
            // Respect the per-type minimums — dropping below them can never
            // be feasible.
            let still_ok = min_vendors_per_type(problem)
                .into_iter()
                .all(|(t, need)| trial.iter().filter(|l| l.ip_type == t).count() >= need);
            if !still_ok {
                continue;
            }
            if let Some(imp) = checker.find(&trial, options.node_limit / 4, start, options) {
                chosen = trial;
                best = imp;
            }
        }

        let cost = best.license_cost(problem);
        Ok(Synthesis {
            implementation: best,
            cost,
            proven_optimal: false,
        })
    }
}

/// Which IP types a problem's DFG actually uses (helper shared with tests).
#[must_use]
pub fn needed_types(problem: &SynthesisProblem) -> Vec<IpTypeId> {
    let mut types: Vec<IpTypeId> = problem
        .dfg()
        .op_histogram()
        .into_iter()
        .map(|(k, _)| k.ip_type())
        .collect();
    types.sort_unstable();
    types.dedup();
    types
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::exact::ExactSolver;
    use crate::problem::Mode;
    use crate::validate::validate;
    use troy_dfg::benchmarks;

    fn problem(mode: Mode) -> SynthesisProblem {
        SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(mode)
            .detection_latency(4)
            .recovery_latency(3)
            .area_limit(22_000)
            .build()
            .unwrap()
    }

    #[test]
    fn greedy_finds_valid_design() {
        let p = problem(Mode::DetectionRecovery);
        let s = GreedySolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        let vs = validate(&p, &s.implementation);
        assert!(vs.is_empty(), "{vs:?}");
        assert_eq!(s.cost, s.implementation.license_cost(&p));
        assert!(!s.proven_optimal);
    }

    #[test]
    fn greedy_never_beats_exact() {
        for mode in [Mode::DetectionOnly, Mode::DetectionRecovery] {
            let p = problem(mode);
            let opts = SolveOptions::quick();
            let g = GreedySolver::new().synthesize(&p, &opts).unwrap();
            let e = ExactSolver::new().synthesize(&p, &opts).unwrap();
            assert!(
                g.cost >= e.cost,
                "{mode}: greedy {} < exact {}",
                g.cost,
                e.cost
            );
        }
    }

    #[test]
    fn greedy_matches_exact_on_motivational_example() {
        // The shrink pass recovers the Fig. 5 optimum here.
        let p = problem(Mode::DetectionRecovery);
        let s = GreedySolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        assert_eq!(s.cost, 4160);
    }

    #[test]
    fn greedy_detects_infeasible_area() {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .area_limit(5_000)
            .build()
            .unwrap();
        let err = GreedySolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap_err();
        assert!(matches!(
            err,
            SynthesisError::Infeasible | SynthesisError::BudgetExhausted
        ));
    }

    #[test]
    fn greedy_handles_paper8_benchmarks() {
        for g in benchmarks::paper_suite() {
            let cp = g.critical_path_len();
            let p = SynthesisProblem::builder(g, Catalog::paper8())
                .mode(Mode::DetectionRecovery)
                .detection_latency(cp + 1)
                .recovery_latency(cp)
                .build()
                .unwrap();
            let s = GreedySolver::new()
                .synthesize(&p, &SolveOptions::quick())
                .unwrap();
            let vs = validate(&p, &s.implementation);
            assert!(vs.is_empty(), "{}: {vs:?}", p.dfg().name());
        }
    }

    #[test]
    fn needed_types_reports_dfg_types() {
        let p = problem(Mode::DetectionOnly);
        let types = needed_types(&p);
        assert_eq!(types, vec![IpTypeId::ADDER, IpTypeId::MULTIPLIER]);
    }
}
