//! Common solver-facing types: options, outcomes and the `Synthesizer`
//! trait shared by the exact, ILP and heuristic back ends.

use std::fmt;
use std::time::{Duration, Instant};

use troy_ilp::{Cancellation, LpEngine};

use crate::implementation::Implementation;
use crate::problem::SynthesisProblem;

/// Budget knobs shared by every solver back end.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Wall-clock budget for the whole solve. When exceeded the best design
    /// found so far is returned with `proven_optimal = false` — mirroring
    /// the `*` rows in the paper's result tables.
    pub time_limit: Duration,
    /// Backtracking-node budget per candidate license subset (exact solver)
    /// or per improvement round (heuristic).
    pub node_limit: usize,
    /// Cooperative cancellation/deadline token. Solvers poll it in their
    /// inner loops (alongside `time_limit`) and wind down gracefully when
    /// it expires — the hook the portfolio racer and batch deadlines use.
    pub cancel: Cancellation,
    /// Simplex engine for the ILP back end's LP relaxations (ignored by
    /// the non-ILP back ends). The dense baseline exists for cross-checks
    /// and benchmarking; production solves use the sparse engine.
    pub lp_engine: LpEngine,
    /// Whether the ILP back end warm-starts child LPs from the parent
    /// basis (ignored by the non-ILP back ends).
    pub warm_start: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            time_limit: Duration::from_secs(60),
            node_limit: 400_000,
            cancel: Cancellation::new(),
            lp_engine: LpEngine::Sparse,
            warm_start: true,
        }
    }
}

impl SolveOptions {
    /// A small budget suitable for unit tests and doc examples.
    #[must_use]
    pub fn quick() -> Self {
        SolveOptions {
            time_limit: Duration::from_secs(10),
            node_limit: 60_000,
            ..SolveOptions::default()
        }
    }

    /// Same budgets, different cancellation token — how the portfolio
    /// derives per-backend options from one shared configuration.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Cancellation) -> Self {
        self.cancel = cancel;
        self
    }

    /// `true` once the solve that started at `start` is out of budget:
    /// past `time_limit`, cancelled, or past the token's deadline. The
    /// single check every solver inner loop performs.
    #[must_use]
    pub fn out_of_time(&self, start: Instant) -> bool {
        start.elapsed() > self.time_limit || self.cancel.is_expired()
    }
}

/// Result of a synthesis attempt.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The synthesized design.
    pub implementation: Implementation,
    /// Its total license cost (the paper's `mc`).
    pub cost: u64,
    /// `true` when the solver proved no cheaper valid design exists within
    /// the constraints; `false` for best-effort results (paper's `*`).
    pub proven_optimal: bool,
}

/// Why synthesis produced no design.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// No valid design exists under the given constraints (proven).
    Infeasible,
    /// The budget ran out before any valid design was found.
    BudgetExhausted,
    /// The back end panicked and was caught at an isolation boundary
    /// (portfolio race, batch pool or resilience supervisor); the payload
    /// is the panic message. A panicking back end never aborts a run — it
    /// is reported as this typed failure and demoted.
    Panicked(String),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Infeasible => {
                write!(f, "no design satisfies the constraints")
            }
            SynthesisError::BudgetExhausted => {
                write!(f, "solve budget exhausted before a design was found")
            }
            SynthesisError::Panicked(msg) => {
                write!(f, "solver back end panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// A synthesis back end.
///
/// Implementations must only return designs that pass
/// [`crate::validate`] — the integration suite enforces this for every
/// back end on every benchmark.
pub trait Synthesizer {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Runs synthesis on `problem` within `options`' budget.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::Infeasible`] when no design can exist;
    /// [`SynthesisError::BudgetExhausted`] when the budget ran out first.
    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        options: &SolveOptions,
    ) -> Result<Synthesis, SynthesisError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sane() {
        let o = SolveOptions::default();
        assert!(o.time_limit >= Duration::from_secs(1));
        assert!(o.node_limit > 1000);
        let q = SolveOptions::quick();
        assert!(q.time_limit <= o.time_limit);
    }

    #[test]
    fn errors_display() {
        assert!(SynthesisError::Infeasible.to_string().contains("no design"));
        assert!(SynthesisError::BudgetExhausted
            .to_string()
            .contains("budget"));
        assert!(SynthesisError::Panicked("index out of bounds".into())
            .to_string()
            .contains("index out of bounds"));
    }
}
