//! The exact domain solver.
//!
//! The objective (total license cost) depends only on *which* licenses are
//! bought, not on the schedule. The solver therefore searches the space of
//! license subsets in nondecreasing cost order (a best-first enumeration
//! over a canonical subset lattice) and, for each candidate subset, runs a
//! complete backtracking scheduler/binder. The first subset that admits a
//! valid design is cost-optimal, provided no cheaper subset's feasibility
//! check was cut short by the budget — in that case the result is flagged
//! best-effort (`proven_optimal = false`), exactly like the `*` rows in the
//! paper's tables.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;

use troy_dfg::{IpTypeId, NodeId, ScheduleWindows};

use crate::catalog::{License, VendorId};
use crate::implementation::{Assignment, Implementation};
use crate::problem::{Mode, SynthesisProblem};
use crate::rules::{diversity_constraints, min_vendors_per_type, OpCopy, Role};
use crate::solver::{SolveOptions, Synthesis, SynthesisError, Synthesizer};

/// Exact branch-and-bound synthesis (see the module docs).
///
/// # Examples
///
/// Reproduce the paper's Figure 5 optimum ($4160):
///
/// ```
/// use troy_dfg::benchmarks;
/// use troyhls::{Catalog, ExactSolver, Mode, SolveOptions, SynthesisProblem, Synthesizer};
///
/// let problem = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionRecovery)
///     .detection_latency(4)
///     .recovery_latency(3)
///     .area_limit(22_000)
///     .build()?;
/// let result = ExactSolver::new()
///     .synthesize(&problem, &SolveOptions::default())
///     .expect("the motivational example is feasible");
/// assert_eq!(result.cost, 4160);
/// assert!(result.proven_optimal);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExactSolver {
    _private: (),
}

impl ExactSolver {
    /// Creates the solver.
    #[must_use]
    pub fn new() -> Self {
        ExactSolver::default()
    }
}

impl Synthesizer for ExactSolver {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        options: &SolveOptions,
    ) -> Result<Synthesis, SynthesisError> {
        let start = Instant::now();
        let ctx = SearchContext::new(problem);
        let min_vendors: Vec<(IpTypeId, usize)> = min_vendors_per_type(problem);

        // Feasibility depends only on the *per-type vendor sets*, and the
        // objective is additive across types. Enumerate, per needed type,
        // every vendor subset meeting the minimum-diversity bound, sorted by
        // cost; then merge the per-type lists in global cost order with a
        // heap over index tuples.
        let mut lists: Vec<Vec<TypeChoice>> = Vec::new();
        for &(t, need) in &min_vendors {
            let vendors: Vec<(VendorId, u64, u64)> = problem
                .catalog()
                .vendors_for(t)
                .map(|v| {
                    let off = problem.catalog().offering(v, t).expect("listed vendor");
                    (v, off.cost, off.area)
                })
                .collect();
            if vendors.len() < need {
                return Err(SynthesisError::Infeasible);
            }
            let mut choices = Vec::new();
            for mask in 0u32..(1 << vendors.len()) {
                if (mask.count_ones() as usize) < need {
                    continue;
                }
                let mut cost = 0u64;
                let mut min_area = u64::MAX;
                let mut licenses = Vec::new();
                for (i, &(v, c, a)) in vendors.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        cost += c;
                        min_area = min_area.min(a);
                        licenses.push(License {
                            vendor: v,
                            ip_type: t,
                        });
                    }
                }
                choices.push(TypeChoice {
                    cost,
                    min_area,
                    licenses,
                });
            }
            choices.sort_by_key(|a| a.cost);
            lists.push(choices);
        }

        let dims = lists.len();
        let mut heap: BinaryHeap<Reverse<(u64, Vec<u16>)>> = BinaryHeap::new();
        let mut seen: HashSet<Vec<u16>> = HashSet::new();
        let root = vec![0u16; dims];
        let cost_of = |idx: &[u16], lists: &[Vec<TypeChoice>]| -> u64 {
            idx.iter()
                .zip(lists)
                .map(|(&i, l)| l[usize::from(i)].cost)
                .sum()
        };
        heap.push(Reverse((cost_of(&root, &lists), root.clone())));
        seen.insert(root);
        let mut uncertain = false;

        while let Some(Reverse((cost, idx))) = heap.pop() {
            if options.out_of_time(start) {
                return Err(SynthesisError::BudgetExhausted);
            }
            // Expand neighbors (increment one coordinate each).
            for d in 0..dims {
                if usize::from(idx[d]) + 1 < lists[d].len() {
                    let mut child = idx.clone();
                    child[d] += 1;
                    if seen.insert(child.clone()) {
                        heap.push(Reverse((cost_of(&child, &lists), child)));
                    }
                }
            }

            // Area lower bound: any schedule instantiates at least
            // `min_instances[t]` cores of each type, each no smaller than
            // the subset's cheapest-area offering.
            let area_lb: u64 = idx
                .iter()
                .zip(&lists)
                .zip(&min_vendors)
                .map(|((&i, l), &(t, _))| {
                    l[usize::from(i)].min_area * ctx.min_instances[t.index()] as u64
                })
                .sum();
            if area_lb > problem.area_limit() {
                continue;
            }

            let licensed: Vec<License> = idx
                .iter()
                .zip(&lists)
                .flat_map(|(&i, l)| l[usize::from(i)].licenses.iter().copied())
                .collect();
            match ctx.feasible(problem, &licensed, options.node_limit, start, options) {
                Feasibility::Feasible(imp) => {
                    debug_assert_eq!(imp.license_cost(problem), cost);
                    return Ok(Synthesis {
                        implementation: imp,
                        cost,
                        proven_optimal: !uncertain,
                    });
                }
                Feasibility::Infeasible => {}
                Feasibility::Unknown => uncertain = true,
                Feasibility::TimedOut => return Err(SynthesisError::BudgetExhausted),
            }
        }

        if uncertain {
            Err(SynthesisError::BudgetExhausted)
        } else {
            Err(SynthesisError::Infeasible)
        }
    }
}

/// Crate-internal find-only facade over the backtracking checker, reused by
/// the greedy heuristic: "does this license set admit a valid design, and
/// if so, give me one".
pub(crate) struct FeasibilityChecker<'a> {
    problem: &'a SynthesisProblem,
    ctx: SearchContext,
}

impl<'a> FeasibilityChecker<'a> {
    pub(crate) fn new(problem: &'a SynthesisProblem) -> Self {
        FeasibilityChecker {
            problem,
            ctx: SearchContext::new(problem),
        }
    }

    pub(crate) fn find(
        &self,
        licensed: &[License],
        node_limit: usize,
        start: Instant,
        options: &SolveOptions,
    ) -> Option<Implementation> {
        match self
            .ctx
            .feasible(self.problem, licensed, node_limit, start, options)
        {
            Feasibility::Feasible(imp) => Some(imp),
            _ => None,
        }
    }
}

/// One candidate vendor subset for a single IP type.
#[derive(Debug, Clone)]
struct TypeChoice {
    cost: u64,
    min_area: u64,
    licenses: Vec<License>,
}

enum Feasibility {
    Feasible(Implementation),
    Infeasible,
    /// Node budget exhausted — completeness lost for this subset.
    Unknown,
    /// Global wall-clock expired.
    TimedOut,
}

/// Copy index: `role.index() * n + op.index()`.
fn cidx(n: usize, c: OpCopy) -> usize {
    c.role.index() * n + c.op.index()
}

/// Static, problem-level search data shared across all subsets.
struct SearchContext {
    n: usize,
    /// Copies in assignment order: detection copies in topo order
    /// (NC and RC interleaved per op), then recovery copies in topo order.
    order: Vec<OpCopy>,
    /// Diversity adjacency: for each copy, the copies it must differ from.
    diff: Vec<Vec<usize>>,
    /// Schedule window per copy (global 1-based cycles).
    window: Vec<(usize, usize)>,
    /// Same-role parents per copy.
    parents: Vec<Vec<usize>>,
    /// IP type per op.
    op_type: Vec<IpTypeId>,
    /// IP types present in the DFG.
    needed_types: Vec<IpTypeId>,
    /// Minimum total instances per type over the whole design (area prune).
    min_instances: [usize; IpTypeId::COUNT],
}

impl SearchContext {
    fn new(problem: &SynthesisProblem) -> Self {
        let dfg = problem.dfg();
        let n = dfg.len();
        let det = problem.detection_latency();
        let rec = problem.recovery_latency();
        let roles = Role::for_mode(problem.mode());

        let det_windows = ScheduleWindows::compute(dfg, det).expect("problem validated latency");
        let rec_windows = (problem.mode() == Mode::DetectionRecovery)
            .then(|| ScheduleWindows::compute(dfg, rec).expect("validated latency"));

        // All copies of one op are assigned back-to-back: the recovery
        // rebind rule (R must avoid both detection vendors of its op) then
        // fails immediately next to the detection choices that caused it,
        // instead of deep below them in the chronological stack.
        let mut order = Vec::with_capacity(n * roles.len());
        let topo = dfg.topo_order();
        for &op in &topo {
            order.push(OpCopy::new(op, Role::Nc));
            order.push(OpCopy::new(op, Role::Rc));
            if rec_windows.is_some() {
                order.push(OpCopy::new(op, Role::Recovery));
            }
        }

        let total_copies = 3 * n;
        let mut diff = vec![Vec::new(); total_copies];
        for dc in diversity_constraints(problem) {
            let (a, b) = (cidx(n, dc.a), cidx(n, dc.b));
            diff[a].push(b);
            diff[b].push(a);
        }
        for d in &mut diff {
            d.sort_unstable();
            d.dedup();
        }

        let mut window = vec![(0, 0); total_copies];
        let mut parents = vec![Vec::new(); total_copies];
        for op in dfg.node_ids() {
            for &role in roles {
                let c = OpCopy::new(op, role);
                window[cidx(n, c)] = match role {
                    Role::Nc | Role::Rc => (det_windows.asap(op), det_windows.alap(op)),
                    Role::Recovery => {
                        let w = rec_windows.as_ref().expect("recovery windows exist");
                        (det + w.asap(op), det + w.alap(op))
                    }
                };
                parents[cidx(n, c)] = dfg
                    .preds(op)
                    .iter()
                    .map(|&p| cidx(n, OpCopy::new(p, role)))
                    .collect();
            }
        }

        let op_type: Vec<IpTypeId> = dfg.node_ids().map(|o| dfg.kind(o).ip_type()).collect();
        let mut needed_types: Vec<IpTypeId> = op_type.clone();
        needed_types.sort_unstable();
        needed_types.dedup();

        // Minimum physical instances per type: the detection phase schedules
        // every op twice inside λ_det, the recovery phase once in λ_rec.
        let mut min_instances = [0usize; IpTypeId::COUNT];
        for &t in &needed_types {
            let det_need = doubled_min_concurrency(problem, t, &det_windows);
            let rec_need = match problem.mode() {
                Mode::DetectionOnly => 0,
                Mode::DetectionRecovery => troy_dfg::min_concurrency(dfg, rec, t),
            };
            min_instances[t.index()] = det_need.max(rec_need);
        }

        SearchContext {
            n,
            order,
            diff,
            window,
            parents,
            op_type,
            needed_types,
            min_instances,
        }
    }

    /// Feasibility check for one license subset: a deterministic greedy
    /// descent, a burst of randomized-restart descents, then an exhaustive
    /// backtracking pass with the remaining node budget.
    fn feasible(
        &self,
        problem: &SynthesisProblem,
        licensed: &[License],
        node_limit: usize,
        start: Instant,
        options: &SolveOptions,
    ) -> Feasibility {
        let num_vendors = problem.catalog().num_vendors();
        let mut vendors_of_type: Vec<Vec<VendorId>> = vec![Vec::new(); IpTypeId::COUNT];
        for l in licensed {
            vendors_of_type[l.ip_type.index()].push(l.vendor);
        }
        for &t in &self.needed_types {
            if vendors_of_type[t.index()].is_empty() {
                return Feasibility::Infeasible;
            }
        }
        // Cheapest instantiable area per type (for the in-search bound).
        let mut min_area = [u64::MAX; IpTypeId::COUNT];
        for &t in &self.needed_types {
            for &v in &vendors_of_type[t.index()] {
                let a = problem
                    .catalog()
                    .offering(v, t)
                    .map_or(u64::MAX, |o| o.area);
                min_area[t.index()] = min_area[t.index()].min(a);
            }
        }

        // Vendor-colorability pre-check: the diversity rules are
        // cycle-independent, so an uncolorable subset is infeasible no
        // matter the schedule — and refuting the coloring alone avoids
        // multiplying the conflict by every cycle permutation.
        if let Some(false) = self.vendor_colorable(&vendors_of_type, node_limit) {
            return Feasibility::Infeasible;
        }

        // Restart schedule: quick greedy probes find feasible schedules on
        // easy subsets; the final exhaustive pass proves infeasibility (or
        // runs out of budget -> Unknown).
        let probe_budget = (node_limit / 20).clamp(500, 20_000);
        let probes = 6usize;
        let exhaustive_budget = node_limit.saturating_sub(probe_budget * probes);
        let mut schedule: Vec<(usize, u64)> = Vec::new(); // (budget, rng seed)
        for (i, _) in (0..probes).enumerate() {
            schedule.push((probe_budget, i as u64));
        }
        schedule.push((exhaustive_budget.max(probe_budget), u64::MAX));

        for (attempt, &(budget, seed)) in schedule.iter().enumerate() {
            let exhaustive = attempt + 1 == schedule.len();
            let mut state = SearchState::new(
                self,
                num_vendors,
                problem.total_latency(),
                &vendors_of_type,
                seed,
            );
            let r = self.search(
                problem,
                &vendors_of_type,
                &mut state,
                0,
                budget,
                num_vendors,
                problem.total_latency(),
                &min_area,
                start,
                options,
            );
            match r {
                SearchResult::Found => {
                    let mut imp = Implementation::new(self.n);
                    for (i, slot) in state.assignment.iter().enumerate() {
                        if let Some((cycle, vendor)) = slot {
                            let role = match i / self.n {
                                0 => Role::Nc,
                                1 => Role::Rc,
                                _ => Role::Recovery,
                            };
                            imp.assign(
                                NodeId::new(i % self.n),
                                role,
                                Assignment {
                                    cycle: *cycle,
                                    vendor: *vendor,
                                },
                            );
                        }
                    }
                    return Feasibility::Feasible(imp);
                }
                SearchResult::Exhausted => return Feasibility::Infeasible,
                SearchResult::NodeBudget => {
                    if exhaustive {
                        return Feasibility::Unknown;
                    }
                }
                SearchResult::TimedOut => return Feasibility::TimedOut,
            }
        }
        Feasibility::Unknown
    }

    /// Cycle-free backtracking over vendor assignments only.
    ///
    /// Returns `Some(true)` if a coloring exists, `Some(false)` if provably
    /// none does, `None` if the node budget ran out.
    fn vendor_colorable(
        &self,
        vendors_of_type: &[Vec<VendorId>],
        node_limit: usize,
    ) -> Option<bool> {
        let copies = self.order.len();
        let mut color: Vec<Option<VendorId>> = vec![None; 3 * self.n];
        let mut nodes = 0usize;

        fn go(
            ctx: &SearchContext,
            vendors_of_type: &[Vec<VendorId>],
            color: &mut Vec<Option<VendorId>>,
            depth: usize,
            copies: usize,
            nodes: &mut usize,
            node_limit: usize,
        ) -> Option<bool> {
            if depth == copies {
                return Some(true);
            }
            *nodes += 1;
            if *nodes > node_limit {
                return None;
            }
            let ci = cidx(ctx.n, ctx.order[depth]);
            let t = ctx.op_type[ctx.order[depth].op.index()];
            let mut forbidden = 0u64;
            for &nb in &ctx.diff[ci] {
                if let Some(v) = color[nb] {
                    forbidden |= 1 << v.index();
                }
            }
            for &v in &vendors_of_type[t.index()] {
                if forbidden & (1 << v.index()) != 0 {
                    continue;
                }
                color[ci] = Some(v);
                match go(
                    ctx,
                    vendors_of_type,
                    color,
                    depth + 1,
                    copies,
                    nodes,
                    node_limit,
                ) {
                    Some(false) => {}
                    other => {
                        if other == Some(true) {
                            color[ci] = None;
                        }
                        return other;
                    }
                }
                color[ci] = None;
            }
            Some(false)
        }

        go(
            self,
            vendors_of_type,
            &mut color,
            0,
            copies,
            &mut nodes,
            node_limit,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        problem: &SynthesisProblem,
        vendors_of_type: &[Vec<VendorId>],
        state: &mut SearchState,
        depth: usize,
        node_limit: usize,
        num_vendors: usize,
        total_cycles: usize,
        min_area: &[u64; IpTypeId::COUNT],
        start: Instant,
        options: &SolveOptions,
    ) -> SearchResult {
        if depth == self.order.len() {
            return SearchResult::Found;
        }
        state.nodes += 1;
        if state.nodes > node_limit {
            return SearchResult::NodeBudget;
        }
        if state.nodes % 4096 == 0 && options.out_of_time(start) {
            return SearchResult::TimedOut;
        }

        let copy = self.order[depth];
        let ci = cidx(self.n, copy);
        let t = self.op_type[copy.op.index()];

        // Cycle window tightened by already-assigned same-role parents.
        let (mut lo, hi) = self.window[ci];
        for &p in &self.parents[ci] {
            if let Some((pc, _)) = state.assignment[p] {
                lo = lo.max(pc + 1);
            }
        }
        if lo > hi {
            return SearchResult::Exhausted;
        }

        let area_of = |v: VendorId, t: IpTypeId| -> u64 {
            problem
                .catalog()
                .offering(v, t)
                .map_or(u64::MAX, |o| o.area)
        };

        // Candidate (cycle, vendor) pairs, cheapest-impact first: prefer
        // slots that reuse an existing instance (zero area growth), then
        // lightly-loaded cycles. A small random tiebreak diversifies the
        // restart probes.
        let mut candidates: Vec<(u64, usize, VendorId)> = Vec::new();
        for &v in &vendors_of_type[t.index()] {
            if state.forbid[ci * 64 + v.index()] > 0 {
                continue;
            }
            for cycle in lo..=hi {
                let u = state.usage_at(num_vendors, total_cycles, v, t, cycle);
                let inst = state.instance_count(num_vendors, v, t);
                let grows = u >= inst;
                let area_penalty = if grows { area_of(v, t) } else { 0 };
                if state.area
                    + area_penalty
                    + state.remaining_area_bound(self, num_vendors, t, grows, min_area)
                    > problem.area_limit()
                {
                    continue;
                }
                let jitter = state.rng_below(16);
                let key = area_penalty * 1_000 + u as u64 * 64 + cycle as u64 * 4 + jitter;
                candidates.push((key, cycle, v));
            }
        }
        candidates.sort_unstable_by_key(|&(k, _, _)| k);

        for (_, cycle, v) in candidates {
            let grew = state.apply(num_vendors, total_cycles, v, t, cycle, area_of);
            state.assignment[ci] = Some((cycle, v));
            // Forward checking: shrink neighbours' vendor domains; a
            // wiped-out domain makes this value a dead end immediately.
            let wiped = state.forbid_neighbors(self, ci, v);
            let r = if wiped {
                SearchResult::Exhausted
            } else {
                self.search(
                    problem,
                    vendors_of_type,
                    state,
                    depth + 1,
                    node_limit,
                    num_vendors,
                    total_cycles,
                    min_area,
                    start,
                    options,
                )
            };
            match r {
                SearchResult::Exhausted => {
                    state.unforbid_neighbors(self, ci, v);
                    state.assignment[ci] = None;
                    state.undo(num_vendors, total_cycles, v, t, cycle, grew, area_of);
                }
                // Keep the assignment intact on success so the caller can
                // read the full solution out of `state`.
                other => return other,
            }
        }
        SearchResult::Exhausted
    }
}

enum SearchResult {
    Found,
    Exhausted,
    NodeBudget,
    TimedOut,
}

struct SearchState {
    /// Per copy: `(cycle, vendor)`.
    assignment: Vec<Option<(usize, VendorId)>>,
    /// usage[(v * TYPES + t) * (total+1) + cycle]
    usage: Vec<u16>,
    /// instances[v * TYPES + t]
    instances: Vec<u16>,
    /// forbid[copy * 64 + vendor]: how many assigned diversity neighbours
    /// pin this vendor.
    forbid: Vec<u8>,
    /// Per copy: licensed vendors still available (forward checking).
    avail: Vec<u16>,
    /// Remaining unassigned copies per type (for the area bound).
    remaining: [usize; IpTypeId::COUNT],
    /// Bitmask of licensed vendors per type.
    licensed: [u64; IpTypeId::COUNT],
    /// Current instances per type (across vendors).
    type_instances: [usize; IpTypeId::COUNT],
    area: u64,
    nodes: usize,
    rng: u64,
}

impl SearchState {
    fn new(
        ctx: &SearchContext,
        num_vendors: usize,
        total: usize,
        vendors_of_type: &[Vec<VendorId>],
        seed: u64,
    ) -> Self {
        let copies = 3 * ctx.n;
        let mut avail = vec![0u16; copies];
        let mut remaining = [0usize; IpTypeId::COUNT];
        let mut licensed = [0u64; IpTypeId::COUNT];
        for (t, vendors) in vendors_of_type.iter().enumerate() {
            for v in vendors {
                licensed[t] |= 1 << v.index();
            }
        }
        for &c in &ctx.order {
            let i = cidx(ctx.n, c);
            let t = ctx.op_type[c.op.index()];
            avail[i] = vendors_of_type[t.index()].len() as u16;
            remaining[t.index()] += 1;
        }
        SearchState {
            assignment: vec![None; copies],
            usage: vec![0u16; num_vendors * IpTypeId::COUNT * (total + 1)],
            instances: vec![0u16; num_vendors * IpTypeId::COUNT],
            forbid: vec![0u8; copies * 64],
            avail,
            remaining,
            licensed,
            type_instances: [0; IpTypeId::COUNT],
            area: 0,
            nodes: 0,
            rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF,
        }
    }

    fn rng_below(&mut self, bound: u64) -> u64 {
        if self.rng == u64::MAX {
            return 0; // deterministic exhaustive pass
        }
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % bound
    }

    /// Marks `v` forbidden for every unassigned diversity neighbour of `ci`;
    /// returns `true` if some neighbour lost its last licensed vendor.
    fn forbid_neighbors(&mut self, ctx: &SearchContext, ci: usize, v: VendorId) -> bool {
        let mut wiped = false;
        for &nb in &ctx.diff[ci] {
            if self.assignment[nb].is_some() {
                continue;
            }
            let slot = nb * 64 + v.index();
            if self.forbid[slot] == 0 {
                // Only vendors licensed for the neighbour's type were
                // counted into `avail`.
                let t = ctx.op_type[nb % ctx.n];
                if self.licensed[t.index()] & (1 << v.index()) != 0 {
                    self.avail[nb] -= 1;
                    if self.avail[nb] == 0 {
                        wiped = true;
                    }
                }
            }
            self.forbid[slot] += 1;
        }
        wiped
    }

    fn unforbid_neighbors(&mut self, ctx: &SearchContext, ci: usize, v: VendorId) {
        for &nb in &ctx.diff[ci] {
            if self.assignment[nb].is_some() {
                continue;
            }
            let slot = nb * 64 + v.index();
            self.forbid[slot] -= 1;
            if self.forbid[slot] == 0 {
                let t = ctx.op_type[nb % ctx.n];
                if self.licensed[t.index()] & (1 << v.index()) != 0 {
                    self.avail[nb] += 1;
                }
            }
        }
    }

    /// Lower bound on further area forced by the copies not yet assigned:
    /// each type still needing more instances than currently exist must
    /// grow by at least the cheapest offering.
    fn remaining_area_bound(
        &self,
        ctx: &SearchContext,
        _num_vendors: usize,
        assigning_type: IpTypeId,
        grows: bool,
        min_area: &[u64; IpTypeId::COUNT],
    ) -> u64 {
        let mut bound = 0u64;
        #[allow(clippy::needless_range_loop)] // parallel fixed-size arrays
        for t in 0..IpTypeId::COUNT {
            let need = ctx.min_instances[t];
            let mut have = self.type_instances[t];
            if t == assigning_type.index() && grows {
                have += 1;
            }
            if need > have && min_area[t] != u64::MAX {
                bound += (need - have) as u64 * min_area[t];
            }
        }
        bound
    }

    fn usage_at(&self, _nv: usize, total: usize, v: VendorId, t: IpTypeId, cycle: usize) -> u16 {
        self.usage[(v.index() * IpTypeId::COUNT + t.index()) * (total + 1) + cycle]
    }

    fn instance_count(&self, _nv: usize, v: VendorId, t: IpTypeId) -> u16 {
        self.instances[v.index() * IpTypeId::COUNT + t.index()]
    }

    /// Books one op on `(v, t)` at `cycle`; returns whether a new physical
    /// instance had to be added (area grew).
    fn apply(
        &mut self,
        _nv: usize,
        total: usize,
        v: VendorId,
        t: IpTypeId,
        cycle: usize,
        area_of: impl Fn(VendorId, IpTypeId) -> u64,
    ) -> bool {
        let ui = (v.index() * IpTypeId::COUNT + t.index()) * (total + 1) + cycle;
        self.usage[ui] += 1;
        self.remaining[t.index()] -= 1;
        let ii = v.index() * IpTypeId::COUNT + t.index();
        if self.usage[ui] > self.instances[ii] {
            self.instances[ii] += 1;
            self.type_instances[t.index()] += 1;
            self.area += area_of(v, t);
            true
        } else {
            false
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn undo(
        &mut self,
        _nv: usize,
        total: usize,
        v: VendorId,
        t: IpTypeId,
        cycle: usize,
        grew: bool,
        area_of: impl Fn(VendorId, IpTypeId) -> u64,
    ) {
        let ui = (v.index() * IpTypeId::COUNT + t.index()) * (total + 1) + cycle;
        self.usage[ui] -= 1;
        self.remaining[t.index()] += 1;
        if grew {
            let ii = v.index() * IpTypeId::COUNT + t.index();
            self.instances[ii] -= 1;
            self.type_instances[t.index()] -= 1;
            self.area -= area_of(v, t);
        }
    }
}

/// Minimum concurrent cores of type `t` in the detection phase, where every
/// op runs twice (NC + RC) within the same windows.
fn doubled_min_concurrency(problem: &SynthesisProblem, t: IpTypeId, w: &ScheduleWindows) -> usize {
    let dfg = problem.dfg();
    let latency = problem.detection_latency();
    let mut best = 0usize;
    for lo in 1..=latency {
        for hi in lo..=latency {
            let width = hi - lo + 1;
            let confined = dfg
                .node_ids()
                .filter(|&n| dfg.kind(n).ip_type() == t && w.asap(n) >= lo && w.alap(n) <= hi)
                .count();
            best = best.max((2 * confined).div_ceil(width));
        }
    }
    best
}

/// Memoized convenience wrapper used by reporting code: solve and cache by
/// problem identity is intentionally *not* provided — solves are explicit.
#[doc(hidden)]
pub fn _internal_cidx_for_tests(n: usize, c: OpCopy) -> usize {
    cidx(n, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::validate::validate;
    use troy_dfg::benchmarks;

    fn solve(problem: &SynthesisProblem) -> Result<Synthesis, SynthesisError> {
        ExactSolver::new().synthesize(problem, &SolveOptions::default())
    }

    #[test]
    fn motivational_example_costs_4160() {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionRecovery)
            .detection_latency(4)
            .recovery_latency(3)
            .area_limit(22_000)
            .build()
            .unwrap();
        let s = solve(&p).expect("feasible");
        assert_eq!(s.cost, 4160, "paper's Figure 5 optimum");
        assert!(s.proven_optimal);
        let vs = validate(&p, &s.implementation);
        assert!(vs.is_empty(), "{vs:?}");
        assert!(s.implementation.area(&p) <= 22_000);
    }

    #[test]
    fn detection_only_is_cheaper_than_recovery() {
        let det = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .area_limit(22_000)
            .build()
            .unwrap();
        let rec = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionRecovery)
            .detection_latency(4)
            .recovery_latency(3)
            .area_limit(22_000)
            .build()
            .unwrap();
        let sd = solve(&det).unwrap();
        let sr = solve(&rec).unwrap();
        assert!(
            sd.cost < sr.cost,
            "detection {} vs recovery {}",
            sd.cost,
            sr.cost
        );
        assert!(validate(&det, &sd.implementation).is_empty());
    }

    #[test]
    fn infeasible_area_detected() {
        // polynom needs >= 2 multiplier vendors; even one multiplier
        // instance needs ~5700 area.
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .area_limit(5_000)
            .build()
            .unwrap();
        assert_eq!(solve(&p).unwrap_err(), SynthesisError::Infeasible);
    }

    #[test]
    fn tight_latency_forces_more_instances() {
        // At λ_det = 3 polynom's NC+RC (6 muls, 4 adds) pack tighter than
        // at λ_det = 6; the loose schedule should never cost more.
        let tight = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(3)
            .build()
            .unwrap();
        let loose = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(6)
            .build()
            .unwrap();
        let st = solve(&tight).unwrap();
        let sl = solve(&loose).unwrap();
        assert!(sl.cost <= st.cost);
        assert!(validate(&tight, &st.implementation).is_empty());
        assert!(validate(&loose, &sl.implementation).is_empty());
    }

    #[test]
    fn diff2_with_paper8_catalog_solves() {
        let p = SynthesisProblem::builder(benchmarks::diff2(), Catalog::paper8())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .area_limit(50_000)
            .build()
            .unwrap();
        let s = solve(&p).expect("diff2 detection-only is feasible");
        assert!(validate(&p, &s.implementation).is_empty());
        let stats = s.implementation.stats(&p);
        assert!(stats.vendors_used >= 2);
        assert_eq!(stats.license_cost, s.cost);
    }

    #[test]
    fn recovery_uses_at_least_three_vendors_per_type() {
        let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionRecovery)
            .detection_latency(4)
            .recovery_latency(3)
            .build()
            .unwrap();
        let s = solve(&p).unwrap();
        let imp = &s.implementation;
        for t in [IpTypeId::ADDER, IpTypeId::MULTIPLIER] {
            let vendors: std::collections::BTreeSet<_> = imp
                .licenses_used(&p)
                .into_iter()
                .filter(|l| l.ip_type == t)
                .map(|l| l.vendor)
                .collect();
            assert!(vendors.len() >= 3, "{t}: {vendors:?}");
        }
    }

    #[test]
    fn related_pairs_can_force_extra_vendors() {
        // Make all three muls of polynom closely related: their recovery
        // copies must avoid the union of their detection vendors.
        let g = benchmarks::polynom();
        let base = SynthesisProblem::builder(g.clone(), Catalog::table1())
            .detection_latency(4)
            .recovery_latency(3)
            .build()
            .unwrap();
        let related = SynthesisProblem::builder(g, Catalog::table1())
            .detection_latency(4)
            .recovery_latency(3)
            .related_pair(NodeId::new(0), NodeId::new(1))
            .related_pair(NodeId::new(0), NodeId::new(2))
            .related_pair(NodeId::new(1), NodeId::new(2))
            .build()
            .unwrap();
        let sb = solve(&base).unwrap();
        let sr = solve(&related).unwrap();
        assert!(sr.cost >= sb.cost);
        assert!(validate(&related, &sr.implementation).is_empty());
    }
}
