//! The paper's ILP formulation (Section 4.1, equations (3)–(17)) built on
//! [`troy_ilp`].
//!
//! Decision variables follow the paper: `D`/`D'`/`R` schedule binaries
//! (here one family `H[i, role, l, k, m]`), instance-usage binaries
//! `ε(k, t, m)` and license binaries `δ(k, t)`; the objective (17)
//! minimizes `Σ c(k,t)·δ(k,t)`.
//!
//! Two deliberate deviations, both documented in `DESIGN.md`:
//!
//! - phase ordering (eqs. (14)–(15)) is encoded by *time windows* — `D`/`D'`
//!   variables exist only for cycles `1..=λ_det` and `R` variables only for
//!   `λ_det+1..=λ_det+λ_rec` — which is equivalent and dominates the
//!   big-constant form;
//! - the `ε`/`δ` linking (eqs. (11)–(12)) defaults to the *tight* per-cycle
//!   form `Σ_i H[i,·,l,k,m] ≤ ε(k,t,m)` (which subsumes eq. (16)) because
//!   it yields a far stronger LP relaxation; set
//!   [`FormulationOptions::faithful_big_z`] to reproduce the paper's
//!   literal big-`Z` constraints instead.
//!
//! The paper's `|τ(t)|` (instances available per type) is an explicit
//! input; here it defaults to a derived bound but can be overridden via
//! [`FormulationOptions::instances_per_vendor_type`].

use std::time::Instant;

use troy_dfg::{IpTypeId, NodeId, ScheduleWindows};
use troy_ilp::{LinExpr, Model, SolveParams, SolveStatus, VarId};

use crate::catalog::VendorId;
use crate::implementation::{Assignment, Implementation};
use crate::problem::{Mode, SynthesisProblem};
use crate::rules::{diversity_constraints, OpCopy, Role};
use crate::solver::{SolveOptions, Synthesis, SynthesisError, Synthesizer};

/// Knobs for [`formulate`].
#[derive(Debug, Clone, Default)]
pub struct FormulationOptions {
    /// Cap on instances per `(vendor, type)` (the paper's `|τ(t)|`).
    /// `None` derives `max(2, minimum-concurrency bound)` per type.
    pub instances_per_vendor_type: Option<usize>,
    /// Use the paper's literal big-`Z` linking (eqs. (11), (12), (16))
    /// instead of the tight per-cycle linking. Slower to solve; exists for
    /// fidelity comparisons.
    pub faithful_big_z: bool,
}

/// A formulated instance: the ILP model plus the decoding table.
#[derive(Debug)]
pub struct FormulatedIlp {
    /// The 0-1 program.
    pub model: Model,
    /// For each schedule binary: copy/cycle/vendor/instance it encodes.
    decode: Vec<(VarId, OpCopy, usize, VendorId, usize)>,
    /// ε(k, t, m) variables.
    eps: Vec<(VarId, VendorId, IpTypeId, usize)>,
    /// δ(k, t) variables.
    delta: Vec<(VarId, VendorId, IpTypeId)>,
    /// IP type per op (for ε reconstruction in [`FormulatedIlp::encode`]).
    type_of: Vec<IpTypeId>,
    num_ops: usize,
}

impl FormulatedIlp {
    /// Decodes an ILP assignment back into an [`Implementation`].
    ///
    /// # Panics
    ///
    /// Panics if `values` does not cover the model's variables.
    #[must_use]
    pub fn decode(&self, values: &[f64]) -> Implementation {
        let mut imp = Implementation::new(self.num_ops);
        for &(var, copy, cycle, vendor, _) in &self.decode {
            if values[var.index()] > 0.5 {
                imp.assign(copy.op, copy.role, Assignment { cycle, vendor });
            }
        }
        imp
    }

    /// Encodes an implementation as a complete MIP start for this model,
    /// including consistent `ε`/`δ` values.
    ///
    /// Instance indices are assigned first-free per `(vendor, type, cycle)`
    /// so the symmetry-breaking order `ε_m ≥ ε_{m+1}` holds. Returns `None`
    /// if the implementation does not fit this formulation (e.g. more
    /// concurrent ops on one core than `|τ(t)|`).
    #[must_use]
    pub fn encode(&self, imp: &Implementation) -> Option<Vec<f64>> {
        use std::collections::HashMap;

        let mut values = vec![0.0; self.model.num_vars()];
        // First-free instance index per (vendor, type, cycle), so that
        // slot 0 fills before slot 1 and the symmetry order holds.
        let mut next_m: HashMap<(usize, usize, usize), usize> = HashMap::new();
        // Peak instance count per (vendor, type) drives ε and δ.
        let mut peak_inst: HashMap<(usize, usize), usize> = HashMap::new();

        for (copy, a) in imp.iter() {
            let t = self.type_of[copy.op.index()];
            let key = (a.vendor.index(), t.index(), a.cycle);
            let m = {
                let e = next_m.entry(key).or_insert(0);
                let m = *e;
                *e += 1;
                m
            };
            let var = self
                .decode
                .iter()
                .find(|&&(_, c, l, k, vm)| c == copy && l == a.cycle && k == a.vendor && vm == m)
                .map(|&(v, ..)| v)?;
            values[var.index()] = 1.0;
            let e = peak_inst.entry((a.vendor.index(), t.index())).or_insert(0);
            *e = (*e).max(m + 1);
        }

        for &(e, k, t, m) in &self.eps {
            if m < peak_inst.get(&(k.index(), t.index())).copied().unwrap_or(0) {
                values[e.index()] = 1.0;
            }
        }
        for &(d, k, t) in &self.delta {
            if peak_inst.get(&(k.index(), t.index())).copied().unwrap_or(0) > 0 {
                values[d.index()] = 1.0;
            }
        }
        Some(values)
    }

    /// Branching priorities for [`troy_ilp::SolveParams::branch_priority`]:
    /// license variables (δ) first — they carry the objective — then
    /// instance variables (ε), then the schedule binaries.
    #[must_use]
    pub fn branch_priorities(&self) -> Vec<i32> {
        let mut priority = vec![0i32; self.model.num_vars()];
        for &(e, ..) in &self.eps {
            priority[e.index()] = 1;
        }
        for &(d, ..) in &self.delta {
            priority[d.index()] = 2;
        }
        priority
    }
}

/// Builds the paper's ILP for a problem.
///
/// # Examples
///
/// ```
/// use troy_dfg::benchmarks;
/// use troyhls::{formulate, Catalog, FormulationOptions, Mode, SynthesisProblem};
///
/// let p = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
///     .mode(Mode::DetectionOnly)
///     .detection_latency(4)
///     .build()?;
/// let ilp = formulate(&p, &FormulationOptions::default());
/// assert!(ilp.model.num_vars() > 0);
/// assert!(ilp.model.num_constraints() > 0);
/// # Ok::<(), troyhls::ProblemError>(())
/// ```
#[must_use]
pub fn formulate(problem: &SynthesisProblem, options: &FormulationOptions) -> FormulatedIlp {
    let dfg = problem.dfg();
    let catalog = problem.catalog();
    let det = problem.detection_latency();
    let total = problem.total_latency();
    let roles = Role::for_mode(problem.mode());

    let det_w = ScheduleWindows::compute(dfg, det).expect("validated");
    let rec_w = (problem.mode() == Mode::DetectionRecovery)
        .then(|| ScheduleWindows::compute(dfg, problem.recovery_latency()).expect("validated"));

    // Instance cap per type (the paper's |τ(t)|).
    let cap_for = |t: IpTypeId| -> usize {
        options.instances_per_vendor_type.unwrap_or_else(|| {
            let single = troy_dfg::min_concurrency(dfg, det, t);
            // Detection runs two copies of everything.
            (2 * single).max(2)
        })
    };

    let mut model = Model::minimize();

    // H variables, windowed per role.
    let mut h: Vec<(VarId, OpCopy, usize, VendorId, usize)> = Vec::new();
    // Index: (copy, vendor) -> list of vars; (copy) -> list; used to build
    // constraints without rescanning.
    let window_of = |op: NodeId, role: Role| -> (usize, usize) {
        match role {
            Role::Nc | Role::Rc => (det_w.asap(op), det_w.alap(op)),
            Role::Recovery => {
                let w = rec_w.as_ref().expect("recovery mode");
                (det + w.asap(op), det + w.alap(op))
            }
        }
    };

    for op in dfg.node_ids() {
        let t = dfg.kind(op).ip_type();
        for &role in roles {
            let (lo, hi) = window_of(op, role);
            for l in lo..=hi {
                for k in catalog.vendors_for(t) {
                    for m in 0..cap_for(t) {
                        let var = model.binary(format!("H_{op}_{role}_{l}_{k}_{m}"));
                        h.push((var, OpCopy::new(op, role), l, k, m));
                    }
                }
            }
        }
    }

    // ε and δ variables.
    let mut eps: Vec<(VarId, VendorId, IpTypeId, usize)> = Vec::new();
    let mut delta: Vec<(VarId, VendorId, IpTypeId)> = Vec::new();
    for t in IpTypeId::all() {
        for k in catalog.vendors_for(t) {
            if dfg.node_ids().all(|o| dfg.kind(o).ip_type() != t) {
                continue;
            }
            let d = model.binary(format!("delta_{k}_{t}"));
            delta.push((d, k, t));
            for m in 0..cap_for(t) {
                let e = model.binary(format!("eps_{k}_{t}_{m}"));
                eps.push((e, k, t, m));
            }
        }
    }

    let vars_of_copy = |copy: OpCopy| -> Vec<(VarId, usize, VendorId)> {
        h.iter()
            .filter(|&&(_, c, ..)| c == copy)
            .map(|&(v, _, l, k, _)| (v, l, k))
            .collect()
    };

    // (3): each copy scheduled exactly once.
    for op in dfg.node_ids() {
        for &role in roles {
            let copy = OpCopy::new(op, role);
            let expr = LinExpr::sum(vars_of_copy(copy).into_iter().map(|(v, ..)| v));
            model.add_eq(format!("assign_{copy}"), expr, 1.0);
        }
    }

    // (4): dependencies, per role: Σ l·H_child − Σ l·H_parent ≥ 1.
    for (p, c) in dfg.edges() {
        for &role in roles {
            let mut expr = LinExpr::new();
            for (v, l, _) in vars_of_copy(OpCopy::new(c, role)) {
                expr.add_term(l as f64, v);
            }
            for (v, l, _) in vars_of_copy(OpCopy::new(p, role)) {
                expr.add_term(-(l as f64), v);
            }
            model.add_ge(format!("dep_{p}_{c}_{role}"), expr, 1.0);
        }
    }

    // (5)-(10): all diversity rules — for each constrained pair and vendor:
    // Σ H_a on k + Σ H_b on k ≤ 1.
    for dc in diversity_constraints(problem) {
        for k in catalog.vendors() {
            let mut expr = LinExpr::new();
            let mut any = false;
            for (v, _, vk) in vars_of_copy(dc.a) {
                if vk == k {
                    expr.add_term(1.0, v);
                    any = true;
                }
            }
            for (v, _, vk) in vars_of_copy(dc.b) {
                if vk == k {
                    expr.add_term(1.0, v);
                    any = true;
                }
            }
            if any {
                model.add_le(format!("div_{}_{}_{k}", dc.a, dc.b), expr, 1.0);
            }
        }
    }

    // Instance-usage linking. `h` rows carry (copy, l, k); m is implicit in
    // creation order — reconstruct it by counting.
    // Build per (k, t, m, l) sums.
    let mut per_slot: std::collections::BTreeMap<(usize, usize, usize, usize), Vec<VarId>> =
        std::collections::BTreeMap::new();
    {
        // Recreate m by iterating in the same creation order.
        let mut iter = h.iter();
        for op in dfg.node_ids() {
            let t = dfg.kind(op).ip_type();
            for &role in roles {
                let (lo, hi) = window_of(op, role);
                for l in lo..=hi {
                    for k in catalog.vendors_for(t) {
                        for m in 0..cap_for(t) {
                            let &(v, ..) = iter.next().expect("same iteration order");
                            per_slot
                                .entry((k.index(), t.index(), m, l))
                                .or_default()
                                .push(v);
                        }
                    }
                }
            }
        }
    }

    let z_big = (3 * dfg.len() * total) as f64 + 1.0;
    for &(e, k, t, m) in &eps {
        if options.faithful_big_z {
            // (11): Σ H / Z ≤ ε ≤ Σ H, plus (16) per cycle.
            let mut all = LinExpr::new();
            for l in 1..=total {
                if let Some(vs) = per_slot.get(&(k.index(), t.index(), m, l)) {
                    for &v in vs {
                        all.add_term(1.0, v);
                    }
                    let per_cycle = LinExpr::sum(vs.iter().copied());
                    model.add_le(format!("excl_{k}_{t}_{m}_{l}"), per_cycle, 1.0);
                }
            }
            let mut lhs = all.clone() * (1.0 / z_big);
            lhs.add_term(-1.0, e);
            model.add_le(format!("eps_lo_{k}_{t}_{m}"), lhs, 0.0);
            let mut rhs = LinExpr::term(1.0, e);
            rhs += all * -1.0;
            model.add_le(format!("eps_hi_{k}_{t}_{m}"), rhs, 0.0);
        } else {
            // Tight: per cycle, Σ H ≤ ε — subsumes (16) and (11)'s lower
            // half; add ε ≤ Σ_l Σ H for the upper half.
            let mut all = LinExpr::new();
            for l in 1..=total {
                if let Some(vs) = per_slot.get(&(k.index(), t.index(), m, l)) {
                    let mut per_cycle = LinExpr::sum(vs.iter().copied());
                    for &v in vs {
                        all.add_term(1.0, v);
                    }
                    per_cycle.add_term(-1.0, e);
                    model.add_le(format!("use_{k}_{t}_{m}_{l}"), per_cycle, 0.0);
                }
            }
            let mut upper = LinExpr::term(1.0, e);
            upper += all * -1.0;
            model.add_le(format!("eps_hi_{k}_{t}_{m}"), upper, 0.0);
        }
    }

    // Symmetry breaking between interchangeable instances: ε_m ≥ ε_{m+1}.
    for pair in eps.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a.1 == b.1 && a.2 == b.2 && a.3 + 1 == b.3 {
            let mut expr = LinExpr::term(1.0, b.0);
            expr.add_term(-1.0, a.0);
            model.add_le(format!("sym_{}_{}_{}", a.1, a.2, b.3), expr, 0.0);
        }
    }

    // (12): δ links — tight (ε ≤ δ) plus δ ≤ Σ ε.
    for &(d, k, t) in &delta {
        let mut sum = LinExpr::new();
        for &(e, ek, et, _) in &eps {
            if ek == k && et == t {
                if options.faithful_big_z {
                    sum.add_term(1.0, e);
                } else {
                    let mut expr = LinExpr::term(1.0, e);
                    expr.add_term(-1.0, d);
                    model.add_le(format!("lic_{k}_{t}"), expr, 0.0);
                    sum.add_term(1.0, e);
                }
            }
        }
        if options.faithful_big_z {
            let mut lhs = sum.clone() * (1.0 / z_big);
            lhs.add_term(-1.0, d);
            model.add_le(format!("delta_lo_{k}_{t}"), lhs, 0.0);
        }
        let mut upper = LinExpr::term(1.0, d);
        upper += sum * -1.0;
        model.add_le(format!("delta_hi_{k}_{t}"), upper, 0.0);
    }

    // (13): area.
    let mut area = LinExpr::new();
    for &(e, k, t, _) in &eps {
        let off = catalog.offering(k, t).expect("eps only for offerings");
        area.add_term(off.area as f64, e);
    }
    if problem.area_limit() < u64::MAX {
        model.add_le("area", area, problem.area_limit() as f64);
    }

    // (17): objective.
    let mut obj = LinExpr::new();
    for &(d, k, t) in &delta {
        let off = catalog.offering(k, t).expect("delta only for offerings");
        obj.add_term(off.cost as f64, d);
    }
    model.set_objective(obj);

    let type_of: Vec<IpTypeId> = dfg.node_ids().map(|o| dfg.kind(o).ip_type()).collect();
    FormulatedIlp {
        model,
        decode: h,
        eps,
        delta,
        type_of,
        num_ops: dfg.len(),
    }
}

/// Synthesizer backed by the paper's ILP formulation and the `troy-ilp`
/// branch & bound.
///
/// Practical on the small benchmarks; larger instances exceed the LP sizes
/// this pure-Rust simplex handles comfortably — exactly mirroring the
/// paper, where Lingo also ran out of its hour on the big rows. Use
/// [`crate::ExactSolver`] for production runs.
#[derive(Debug, Clone, Default)]
pub struct IlpSolver {
    options: FormulationOptions,
}

impl IlpSolver {
    /// Creates the solver with default formulation options.
    #[must_use]
    pub fn new() -> Self {
        IlpSolver::default()
    }

    /// Creates the solver with explicit formulation options.
    #[must_use]
    pub fn with_options(options: FormulationOptions) -> Self {
        IlpSolver { options }
    }
}

impl Synthesizer for IlpSolver {
    fn name(&self) -> &'static str {
        "ilp"
    }

    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        options: &SolveOptions,
    ) -> Result<Synthesis, SynthesisError> {
        let start = Instant::now();
        let ilp = formulate(problem, &self.options);
        // A greedy warm start lets the branch & bound prune against a
        // near-optimal incumbent from node one.
        let mip_start = crate::heuristic::GreedySolver::new()
            .synthesize(problem, &SolveOptions::quick())
            .ok()
            .and_then(|s| ilp.encode(&s.implementation));
        let params = SolveParams {
            time_limit: Some(options.time_limit.saturating_sub(start.elapsed())),
            integral_objective: true,
            mip_start,
            branch_priority: ilp.branch_priorities(),
            cancel: options.cancel.clone(),
            lp_engine: options.lp_engine,
            warm_start: options.warm_start,
            ..SolveParams::default()
        };
        let result = ilp.model.solve(&params);
        match result.status() {
            SolveStatus::Infeasible => Err(SynthesisError::Infeasible),
            SolveStatus::Unknown => Err(SynthesisError::BudgetExhausted),
            status @ (SolveStatus::Optimal | SolveStatus::Feasible) => {
                let values = result.values().expect("feasible has values");
                let imp = ilp.decode(values);
                let cost = imp.license_cost(problem);
                Ok(Synthesis {
                    implementation: imp,
                    cost,
                    proven_optimal: status == SolveStatus::Optimal,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::exact::ExactSolver;
    use crate::validate::validate;
    use std::time::Duration;
    use troy_dfg::benchmarks;

    fn polynom_detection() -> SynthesisProblem {
        SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
            .mode(Mode::DetectionOnly)
            .detection_latency(4)
            .area_limit(40_000)
            .build()
            .unwrap()
    }

    #[test]
    fn formulation_size_is_sane() {
        let p = polynom_detection();
        let ilp = formulate(&p, &FormulationOptions::default());
        // 5 ops x 2 roles, windows, 4 vendors: a few hundred binaries.
        assert!(ilp.model.num_vars() > 100);
        assert!(ilp.model.num_vars() < 2_000);
        assert!(ilp.model.num_constraints() > 50);
    }

    #[test]
    fn ilp_matches_exact_on_polynom_detection() {
        let p = polynom_detection();
        let opts = SolveOptions {
            time_limit: Duration::from_secs(60),
            ..SolveOptions::default()
        };
        let e = ExactSolver::new().synthesize(&p, &opts).unwrap();
        let i = IlpSolver::new().synthesize(&p, &opts).unwrap();
        let vs = validate(&p, &i.implementation);
        assert!(vs.is_empty(), "{vs:?}");
        assert_eq!(i.cost, e.cost, "ILP {} vs exact {}", i.cost, e.cost);
    }

    #[test]
    fn decoded_solution_validates() {
        let p = polynom_detection();
        let opts = SolveOptions {
            time_limit: Duration::from_secs(60),
            ..SolveOptions::default()
        };
        let s = IlpSolver::new().synthesize(&p, &opts).unwrap();
        assert!(validate(&p, &s.implementation).is_empty());
        assert!(s.implementation.area(&p) <= 40_000);
    }

    #[test]
    fn faithful_big_z_variant_builds_and_solves() {
        let p = polynom_detection();
        let solver = IlpSolver::with_options(FormulationOptions {
            faithful_big_z: true,
            ..FormulationOptions::default()
        });
        let opts = SolveOptions {
            time_limit: Duration::from_secs(45),
            ..SolveOptions::default()
        };
        match solver.synthesize(&p, &opts) {
            Ok(s) => {
                assert!(validate(&p, &s.implementation).is_empty());
            }
            Err(SynthesisError::BudgetExhausted) => {
                // The weak relaxation may legitimately time out; the tight
                // default must not (covered above).
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }

    #[test]
    fn instance_cap_is_respected() {
        let p = polynom_detection();
        let opts = FormulationOptions {
            instances_per_vendor_type: Some(1),
            ..FormulationOptions::default()
        };
        let ilp_small = formulate(&p, &opts);
        let ilp_default = formulate(&p, &FormulationOptions::default());
        assert!(ilp_small.model.num_vars() < ilp_default.model.num_vars());
    }

    #[test]
    fn encode_round_trips_an_exact_solution() {
        let p = polynom_detection();
        let e = ExactSolver::new()
            .synthesize(&p, &SolveOptions::quick())
            .unwrap();
        let ilp = formulate(&p, &FormulationOptions::default());
        let values = ilp.encode(&e.implementation).expect("fits");
        let decoded = ilp.decode(&values);
        assert_eq!(decoded, e.implementation);
    }
}
