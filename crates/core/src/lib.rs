//! Diversity-based high-level synthesis for run-time hardware Trojan
//! detection and recovery — a reproduction of the DAC 2014 paper by Cui,
//! Ma, Shi and Wu.
//!
//! The flow in one pass:
//!
//! 1. describe the instance — [`Catalog`] (vendor/IP libraries: the
//!    paper's Table 1 verbatim, plus the 8-vendor experiment suite) and
//!    [`SynthesisProblem`] (DFG + catalog + latency/area constraints +
//!    closely-related pairs);
//! 2. synthesize — any [`Synthesizer`]: [`ExactSolver`] (license-lattice
//!    search, optimal), [`IlpSolver`] (the paper's equations (3)–(17) on
//!    `troy-ilp`), [`GreedySolver`] or [`AnnealingSolver`];
//! 3. check and inspect — [`validate`] (all four design rules, windows,
//!    area), [`schedule_chart`], [`implementation_dot`],
//!    [`collusion_exposure`], [`markdown_summary`];
//! 4. lower to hardware — [`allocate_registers`] (left-edge) and
//!    [`emit_verilog`] (datapath + comparator + recovery mux);
//! 5. explore — [`sweep_latency`] / [`sweep_area`] /
//!    [`min_feasible_area`] / [`unprotected_cost`].
//!
//! The single source of truth for the paper's rules is
//! [`diversity_constraints`]; every solver and the validator expand it,
//! so they cannot drift apart. Run-time behavior (trigger/payload models,
//! mission simulation, campaigns) lives in the sibling `troy-sim` crate.
//!
//! # Example: reproduce the paper's Figure 5 optimum
//!
//! ```
//! use troy_dfg::benchmarks;
//! use troyhls::{Catalog, ExactSolver, Mode, SolveOptions, SynthesisProblem, Synthesizer};
//!
//! let problem = SynthesisProblem::builder(benchmarks::polynom(), Catalog::table1())
//!     .mode(Mode::DetectionRecovery)
//!     .detection_latency(4)
//!     .recovery_latency(3)
//!     .area_limit(22_000)
//!     .build()?;
//! let design = ExactSolver::new().synthesize(&problem, &SolveOptions::default())?;
//! assert_eq!(design.cost, 4160);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annealing;
mod catalog;
mod cones;
mod exact;
mod explore;
mod formulation;
mod heuristic;
mod implementation;
mod netlist;
mod problem;
mod registers;
mod report;
mod rules;
mod solver;
mod validate;

pub use annealing::{AnnealingConfig, AnnealingSolver};
pub use catalog::{Catalog, IpOffering, License, VendorId};
pub use cones::{cone_vendors, output_cones, OutputCone};
pub use exact::ExactSolver;
pub use explore::{min_feasible_area, sweep_area, sweep_latency, unprotected_cost, SweepPoint};
pub use formulation::{formulate, FormulatedIlp, FormulationOptions, IlpSolver};
pub use heuristic::{needed_types, GreedySolver};
pub use implementation::{Assignment, DesignStats, Implementation};
pub use netlist::{emit_verilog, netlist_stats, NetlistStats};
pub use problem::{Mode, ProblemBuilder, ProblemError, SynthesisProblem};
pub use registers::{allocate_registers, Lifetime, RegisterAllocation, RegisterId};
pub use report::{
    collusion_exposure, implementation_dot, interactions, markdown_summary, schedule_chart,
    Interaction,
};
pub use rules::{
    diversity_constraints, min_vendors_per_type, DiversityConstraint, OpCopy, Role, RuleKind,
};
pub use solver::{SolveOptions, Synthesis, SynthesisError, Synthesizer};
pub use troy_ilp::{Cancellation, LpEngine};
pub use validate::{is_valid, validate, Violation};
