//! Mutation testing of the validator: start from a known-valid design and
//! apply adversarial mutations; the validator must flag exactly the
//! mutations that break a rule.

use proptest::prelude::*;
use troy_dfg::{benchmarks, NodeId};
use troyhls::{
    diversity_constraints, validate, Assignment, Catalog, ExactSolver, Implementation, Mode, Role,
    SolveOptions, SynthesisProblem, Synthesizer, VendorId, Violation,
};

fn solved() -> (SynthesisProblem, Implementation) {
    let p = SynthesisProblem::builder(benchmarks::diff2(), Catalog::paper8())
        .mode(Mode::DetectionRecovery)
        .detection_latency(5)
        .recovery_latency(5)
        .build()
        .expect("valid");
    let s = ExactSolver::new()
        .synthesize(&p, &SolveOptions::quick())
        .expect("feasible");
    (p, s.implementation)
}

#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Move one copy to a different cycle.
    ShiftCycle {
        op: usize,
        role_idx: usize,
        cycle: usize,
    },
    /// Re-bind one copy to a different vendor.
    SwapVendor {
        op: usize,
        role_idx: usize,
        vendor: usize,
    },
    /// Remove one copy entirely.
    Drop { op: usize, role_idx: usize },
}

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0usize..11, 0usize..3, 1usize..=10).prop_map(|(op, role_idx, cycle)| {
            Mutation::ShiftCycle {
                op,
                role_idx,
                cycle,
            }
        }),
        (0usize..11, 0usize..3, 0usize..8).prop_map(|(op, role_idx, vendor)| {
            Mutation::SwapVendor {
                op,
                role_idx,
                vendor,
            }
        }),
        (0usize..11, 0usize..3).prop_map(|(op, role_idx)| Mutation::Drop { op, role_idx }),
    ]
}

fn role(idx: usize) -> Role {
    [Role::Nc, Role::Rc, Role::Recovery][idx]
}

/// Ground truth: does the mutated implementation actually break a rule?
/// Re-derives legality from first principles, independently of `validate`.
fn legal(problem: &SynthesisProblem, imp: &Implementation) -> bool {
    let dfg = problem.dfg();
    let det = problem.detection_latency();
    let total = problem.total_latency();
    // Completeness + windows.
    for op in dfg.node_ids() {
        for r in [Role::Nc, Role::Rc, Role::Recovery] {
            let Some(a) = imp.assignment(op, r) else {
                return false;
            };
            let ok = match r {
                Role::Nc | Role::Rc => (1..=det).contains(&a.cycle),
                Role::Recovery => (det + 1..=total).contains(&a.cycle),
            };
            if !ok
                || problem
                    .catalog()
                    .offering(a.vendor, dfg.kind(op).ip_type())
                    .is_none()
            {
                return false;
            }
        }
    }
    // Dependencies.
    for (p, c) in dfg.edges() {
        for r in [Role::Nc, Role::Rc, Role::Recovery] {
            if imp.assignment(c, r).unwrap().cycle <= imp.assignment(p, r).unwrap().cycle {
                return false;
            }
        }
    }
    // Diversity.
    for dc in diversity_constraints(problem) {
        if imp.assignment_of(dc.a).unwrap().vendor == imp.assignment_of(dc.b).unwrap().vendor {
            return false;
        }
    }
    imp.area(problem) <= problem.area_limit()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn validator_agrees_with_first_principles(m in mutation()) {
        let (p, base) = solved();
        let mut imp = base.clone();
        match m {
            Mutation::ShiftCycle { op, role_idx, cycle } => {
                let r = role(role_idx);
                let a = imp.assignment(NodeId::new(op), r).unwrap();
                imp.assign(NodeId::new(op), r, Assignment { cycle, vendor: a.vendor });
            }
            Mutation::SwapVendor { op, role_idx, vendor } => {
                let r = role(role_idx);
                let a = imp.assignment(NodeId::new(op), r).unwrap();
                imp.assign(
                    NodeId::new(op),
                    r,
                    Assignment { cycle: a.cycle, vendor: VendorId::new(vendor) },
                );
            }
            Mutation::Drop { op, role_idx } => {
                imp.unassign(NodeId::new(op), role(role_idx));
            }
        }
        let violations = validate(&p, &imp);
        prop_assert_eq!(
            violations.is_empty(),
            legal(&p, &imp),
            "validator {:?} vs ground truth; mutation {:?}",
            violations,
            m
        );
    }

    #[test]
    fn dropping_any_copy_is_always_flagged(op in 0usize..11, role_idx in 0usize..3) {
        let (p, base) = solved();
        let mut imp = base.clone();
        imp.unassign(NodeId::new(op), role(role_idx));
        let violations = validate(&p, &imp);
        prop_assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::Unassigned(c)
                if c.op == NodeId::new(op) && c.role == role(role_idx))));
    }
}
