//! Serde round-trips for the data-structure types (C-SERDE), enabled with
//! `--features serde`.
//!
//! Uses a minimal hand-rolled token check via `serde_test`-style asserts is
//! overkill here; instead the types round-trip through the self-describing
//! `serde_json`-free path: we implement a tiny in-crate format using
//! `serde::Serialize` into a canonical debug string via `serde::ser` is
//! also overkill — the pragmatic check below round-trips through
//! `bincode`-like manual field access by serializing to `serde_json::Value`
//! when available. Since no JSON crate is in the dependency set, we simply
//! assert the derives exist and are wired by serializing into a counting
//! serializer.

#![cfg(feature = "serde")]

use serde::Serialize;
use troy_dfg::benchmarks;
use troyhls::Catalog;

/// A serializer that counts emitted primitive values — enough to prove the
/// derives traverse the whole structure without pulling in a data format.
#[derive(Default)]
struct Counter {
    values: usize,
}

mod count_ser {
    use super::Counter;
    use serde::ser::{self, Serialize};
    use std::fmt;

    #[derive(Debug)]
    pub struct Never;

    impl fmt::Display for Never {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("never")
        }
    }

    impl std::error::Error for Never {}

    impl ser::Error for Never {
        fn custom<T: fmt::Display>(_msg: T) -> Self {
            Never
        }
    }

    macro_rules! count_prim {
        ($($f:ident: $t:ty),* $(,)?) => {
            $(fn $f(self, _v: $t) -> Result<(), Never> {
                self.values += 1;
                Ok(())
            })*
        };
    }

    impl<'a> ser::Serializer for &'a mut Counter {
        type Ok = ();
        type Error = Never;
        type SerializeSeq = Self;
        type SerializeTuple = Self;
        type SerializeTupleStruct = Self;
        type SerializeTupleVariant = Self;
        type SerializeMap = Self;
        type SerializeStruct = Self;
        type SerializeStructVariant = Self;

        count_prim! {
            serialize_bool: bool,
            serialize_i8: i8, serialize_i16: i16, serialize_i32: i32, serialize_i64: i64,
            serialize_u8: u8, serialize_u16: u16, serialize_u32: u32, serialize_u64: u64,
            serialize_f32: f32, serialize_f64: f64,
            serialize_char: char,
        }

        fn serialize_str(self, _v: &str) -> Result<(), Never> {
            self.values += 1;
            Ok(())
        }
        fn serialize_bytes(self, _v: &[u8]) -> Result<(), Never> {
            self.values += 1;
            Ok(())
        }
        fn serialize_none(self) -> Result<(), Never> {
            Ok(())
        }
        fn serialize_some<T: ?Sized + Serialize>(self, v: &T) -> Result<(), Never> {
            v.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Never> {
            Ok(())
        }
        fn serialize_unit_struct(self, _n: &'static str) -> Result<(), Never> {
            Ok(())
        }
        fn serialize_unit_variant(
            self,
            _n: &'static str,
            _i: u32,
            _v: &'static str,
        ) -> Result<(), Never> {
            self.values += 1;
            Ok(())
        }
        fn serialize_newtype_struct<T: ?Sized + Serialize>(
            self,
            _n: &'static str,
            v: &T,
        ) -> Result<(), Never> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: ?Sized + Serialize>(
            self,
            _n: &'static str,
            _i: u32,
            _vn: &'static str,
            v: &T,
        ) -> Result<(), Never> {
            v.serialize(self)
        }
        fn serialize_seq(self, _len: Option<usize>) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple(self, _len: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple_struct(self, _n: &'static str, _l: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_tuple_variant(
            self,
            _n: &'static str,
            _i: u32,
            _v: &'static str,
            _l: usize,
        ) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_map(self, _len: Option<usize>) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_struct(self, _n: &'static str, _l: usize) -> Result<Self, Never> {
            Ok(self)
        }
        fn serialize_struct_variant(
            self,
            _n: &'static str,
            _i: u32,
            _v: &'static str,
            _l: usize,
        ) -> Result<Self, Never> {
            Ok(self)
        }
    }

    macro_rules! forward_compound {
        ($($tr:ident :: $m:ident),* $(,)?) => {
            $(impl<'a> ser::$tr for &'a mut Counter {
                type Ok = ();
                type Error = Never;
                fn $m<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), Never> {
                    v.serialize(&mut **self)
                }
                fn end(self) -> Result<(), Never> { Ok(()) }
            })*
        };
    }

    forward_compound!(
        SerializeSeq::serialize_element,
        SerializeTuple::serialize_element
    );

    impl<'a> ser::SerializeTupleStruct for &'a mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl<'a> ser::SerializeTupleVariant for &'a mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl<'a> ser::SerializeMap for &'a mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_key<T: ?Sized + Serialize>(&mut self, k: &T) -> Result<(), Never> {
            k.serialize(&mut **self)
        }
        fn serialize_value<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl<'a> ser::SerializeStruct for &'a mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            _k: &'static str,
            v: &T,
        ) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
    impl<'a> ser::SerializeStructVariant for &'a mut Counter {
        type Ok = ();
        type Error = Never;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            _k: &'static str,
            v: &T,
        ) -> Result<(), Never> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Never> {
            Ok(())
        }
    }
}

fn count_values<T: Serialize>(value: &T) -> usize {
    let mut c = Counter::default();
    value.serialize(&mut c).expect("counting cannot fail");
    c.values
}

#[test]
fn catalog_serializes_every_offering() {
    let cat = Catalog::table1();
    // 8 offerings x (area + cost) + 8 keys x 2 + num_vendors >= 24 values.
    assert!(count_values(&cat) >= 24);
}

#[test]
fn dfg_serializes_all_nodes_and_edges() {
    let g = benchmarks::diff2();
    let n = count_values(&g);
    // name + 11 nodes (kind/label/primaries) + adjacency lists.
    assert!(n > 30, "{n}");
}

#[test]
fn vendor_and_license_serialize() {
    use troy_dfg::IpTypeId;
    use troyhls::{License, VendorId};
    let l = License {
        vendor: VendorId::new(3),
        ip_type: IpTypeId::MULTIPLIER,
    };
    assert_eq!(count_values(&l), 2);
}
