//! Property tests: the solvers on randomly generated problems.
//!
//! The central invariant: every design a solver emits passes the
//! independent validator, and the heuristic never undercuts the exact
//! optimum.

use proptest::prelude::*;
use std::time::Duration;
use troy_dfg::{random_dfg, RandomDfgConfig};
use troyhls::{
    validate, Catalog, ExactSolver, GreedySolver, Mode, SolveOptions, SynthesisError,
    SynthesisProblem, Synthesizer,
};

fn small_problem() -> impl Strategy<Value = (SynthesisProblem, u64)> {
    (
        2usize..=10,  // ops
        1usize..=4,   // depth
        0u8..=100,    // mul ratio
        any::<u64>(), // seed
        0usize..=2,   // latency slack
        prop_oneof![Just(Mode::DetectionOnly), Just(Mode::DetectionRecovery)],
        prop_oneof![Just(u64::MAX), Just(120_000u64), Just(60_000u64)],
    )
        .prop_map(|(ops, depth, mul, seed, slack, mode, area)| {
            let cfg = RandomDfgConfig {
                ops,
                max_depth: depth,
                mul_ratio_percent: mul,
                edge_bias_percent: 80,
            };
            let dfg = random_dfg(&cfg, seed);
            let cp = dfg.critical_path_len();
            let p = SynthesisProblem::builder(dfg, Catalog::paper8())
                .mode(mode)
                .detection_latency(cp + slack)
                .recovery_latency(cp + slack)
                .area_limit(area)
                .build()
                .expect("constraints are feasible by construction");
            (p, seed)
        })
}

fn opts() -> SolveOptions {
    SolveOptions {
        time_limit: Duration::from_secs(15),
        node_limit: 120_000,
        ..SolveOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_designs_always_validate((p, _) in small_problem()) {
        if let Ok(s) = ExactSolver::new().synthesize(&p, &opts()) {
            let vs = validate(&p, &s.implementation);
            prop_assert!(vs.is_empty(), "{:?}", vs);
            prop_assert_eq!(s.cost, s.implementation.license_cost(&p));
            prop_assert!(s.implementation.area(&p) <= p.area_limit());
        } else {
            // Tight areas can make instances genuinely infeasible, and
            // hard ones can exhaust the test budget.
        }
    }

    #[test]
    fn greedy_designs_always_validate_and_upper_bound((p, _) in small_problem()) {
        let g = GreedySolver::new().synthesize(&p, &opts());
        let e = ExactSolver::new().synthesize(&p, &opts());
        if let Ok(g) = &g {
            let vs = validate(&p, &g.implementation);
            prop_assert!(vs.is_empty(), "{:?}", vs);
        }
        if let (Ok(g), Ok(e)) = (&g, &e) {
            prop_assert!(g.cost >= e.cost, "greedy {} < exact {}", g.cost, e.cost);
        }
        // If the exact solver *proves* feasibility, greedy must not claim
        // infeasibility (it may time out, which is a different error).
        if let (Ok(_), Err(SynthesisError::Infeasible)) = (&e, &g) {
            prop_assert!(false, "greedy claimed infeasible on a feasible instance");
        }
    }

    #[test]
    fn proven_infeasible_is_consistent((p, _) in small_problem()) {
        // If exact proves infeasibility, greedy must never find a design.
        if let Err(SynthesisError::Infeasible) = ExactSolver::new().synthesize(&p, &opts()) {
            prop_assert!(GreedySolver::new().synthesize(&p, &opts()).is_err());
        }
    }
}
