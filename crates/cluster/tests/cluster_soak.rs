//! End-to-end cluster tests: oracle equivalence with a single daemon,
//! the shared cache tier, failover re-dispatch, typed sheds, and the
//! 100+-seed chaos soak pinning the cluster-level contract.
//!
//! The contract under seeded worker-kill / stall / partition /
//! torn-frame faults: every accepted request terminates with a valid
//! certified result, a typed error, or an explicit shed carrying
//! `retry_after_ms` — no request is silently lost — and every `ok`
//! answer is identical (cost and certificate) to what a single
//! chaos-free daemon computes for the same key.
//!
//! `TROY_CLUSTER_SOAK_SEED` pins the soak to one seed (the CI matrix
//! uses this); unset, the full 104-seed sweep runs.

use std::fmt::Write as _;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use troy_cluster::{Cluster, ClusterConfig, WorkerState};
use troy_resilience::Chaos;
use troy_service::{parse_request, BreakerConfig, Json, Service, ServiceConfig};

// ---------------------------------------------------------------- clients

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

fn send(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).expect("write frame");
    stream.write_all(b"\n").expect("write newline");
}

/// Reads one response line within `budget`; `None` on EOF or timeout.
fn read_line(stream: &mut TcpStream, budget: Duration) -> Option<String> {
    let deadline = Instant::now() + budget;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    while Instant::now() < deadline {
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            return Some(String::from_utf8_lossy(&buf[..nl]).into_owned());
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    buf.iter()
        .position(|&b| b == b'\n')
        .map(|nl| String::from_utf8_lossy(&buf[..nl]).into_owned())
}

/// One request on a fresh connection; returns the raw response line.
fn roundtrip_raw(addr: SocketAddr, line: &str, budget: Duration) -> Option<String> {
    let mut stream = connect(addr);
    send(&mut stream, line);
    read_line(&mut stream, budget)
}

/// One request on a fresh connection; returns the parsed response.
fn roundtrip(addr: SocketAddr, line: &str, budget: Duration) -> Option<Json> {
    let line = roundtrip_raw(addr, line, budget)?;
    Some(Json::parse(&line).unwrap_or_else(|| panic!("response must parse: {line}")))
}

fn status(resp: &Json) -> &str {
    resp.get("status")
        .and_then(Json::as_str)
        .expect("every response carries `status`")
}

fn codes(resp: &Json) -> Vec<String> {
    match resp.get("codes") {
        Some(Json::Arr(items)) => items
            .iter()
            .filter_map(|c| c.as_str().map(str::to_owned))
            .collect(),
        _ => Vec::new(),
    }
}

fn stat(resp: &Json, key: &str) -> u64 {
    resp.get("stats")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats trailer carries `{key}`"))
}

/// `ok` responses carry a certificate the prover actually issued; no
/// other outcome may look certified.
fn assert_certificate_discipline(resp: &Json) {
    match resp.get("certificate") {
        Some(cert) => {
            assert_eq!(status(resp), "ok", "only `ok` may be certified: {resp:?}");
            assert_eq!(
                cert.get("single_vendor_safe"),
                Some(&Json::Bool(true)),
                "{resp:?}"
            );
            assert!(cert.get("checksum").and_then(Json::as_u64).is_some());
        }
        None => assert_ne!(status(resp), "ok", "`ok` must be certified: {resp:?}"),
    }
}

/// Strips the volatile fields — `elapsed_ms` and everything from the
/// `stats` trailer on — so a routed response can be byte-compared with
/// a single daemon's answer for the same key.
fn canonical(line: &str) -> String {
    let line = line.find(",\"stats\":").map_or(line, |cut| &line[..cut]);
    let mut out = String::new();
    let mut rest = line;
    while let Some(i) = rest.find(",\"elapsed_ms\":") {
        out.push_str(&rest[..i]);
        let after = &rest[i + ",\"elapsed_ms\":".len()..];
        let digits = after
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(after.len());
        rest = &after[digits..];
    }
    out.push_str(rest);
    out
}

// ----------------------------------------------------------- problem zoo

/// A linear chain of `n` adds — the 60-op variant's first LP relaxation
/// outlasts any sub-second deadline, making it a deterministic slow
/// request for mid-flight failover.
fn chain_dfg(name: &str, n: usize) -> String {
    let mut text = format!("dfg {name}\n");
    for i in 0..n {
        let _ = writeln!(text, "op n{i} add");
    }
    for i in 1..n {
        let _ = writeln!(text, "edge n{} n{i}", i - 1);
    }
    text
}

/// JSON-escapes DFG text for the `dfg` request field.
fn inline(dfg: &str) -> String {
    dfg.replace('\n', "\\n")
}

/// A family of tiny 3-op problems, one distinct cache key per latency
/// variant — the soak's workload.
fn tiny_variant(id: &str, variant: usize, deadline_ms: u64) -> String {
    let dfg = inline("dfg tiny\nop a add\nop b add\nop c mul\nedge a b\nedge b c\n");
    let (det, rec) = [(6, 5), (7, 5), (8, 5), (6, 4), (7, 4), (8, 4)][variant % 6];
    format!(
        "{{\"id\":\"{id}\",\"cmd\":\"synth\",\"dfg\":\"{dfg}\",\"catalog\":\"table1\",\
         \"lambda_det\":{det},\"lambda_rec\":{rec},\"deadline_ms\":{deadline_ms}}}"
    )
}

const FIG5: &str = "{\"id\":\"fig5\",\"cmd\":\"synth\",\"benchmark\":\"polynom\",\
    \"mode\":\"recovery\",\"catalog\":\"table1\",\"lambda_det\":4,\"lambda_rec\":3,\
    \"area\":22000,\"deadline_ms\":2500}";

fn owner_of(cluster: &Cluster, line: &str) -> usize {
    let request = parse_request(line).expect("placement needs a well-formed request");
    cluster.handle().placement(&request).expect("placement")[0]
}

// ------------------------------------------------------------------ tests

/// Chaos off: the Fig. 5 oracle through a two-worker router is byte
/// identical (modulo `elapsed_ms` and the `stats` trailer) to the
/// single-daemon answer — fresh solve and cache hit both — and the
/// router's whole lifecycle (ping, stats, shutdown, drain) works.
#[test]
fn fig5_through_the_router_is_byte_identical_to_a_single_daemon() {
    let single = Service::start(ServiceConfig::default()).expect("single daemon");
    let cluster = Cluster::start(ClusterConfig::default()).expect("cluster");
    let single_addr = single.local_addr();
    let router = cluster.local_addr();

    for id in ["fig5", "fig5-again"] {
        let line = FIG5.replace("fig5", id);
        let s = roundtrip_raw(single_addr, &line, Duration::from_secs(15)).expect("single");
        let c = roundtrip_raw(router, &line, Duration::from_secs(15)).expect("routed");
        assert_eq!(
            canonical(&c),
            canonical(&s),
            "routed answers must be byte-identical to the daemon's"
        );
        let parsed = Json::parse(&c).expect("routed response parses");
        assert_eq!(status(&parsed), "ok");
        assert_eq!(parsed.get("cost").and_then(Json::as_u64), Some(4160));
        assert_certificate_discipline(&parsed);
        if id == "fig5-again" {
            assert_eq!(parsed.get("cached"), Some(&Json::Bool(true)));
        }
    }

    let pong = roundtrip(
        router,
        "{\"id\":\"p\",\"cmd\":\"ping\"}",
        Duration::from_secs(2),
    )
    .expect("pong");
    assert_eq!(status(&pong), "pong");

    let stats = roundtrip(
        router,
        "{\"id\":\"s\",\"cmd\":\"stats\"}",
        Duration::from_secs(2),
    )
    .expect("stats");
    assert_eq!(stat(&stats, "requests"), 2);
    assert_eq!(stat(&stats, "routed_ok"), 2);
    assert_eq!(stat(&stats, "sheds"), 0);

    let bye = roundtrip(
        router,
        "{\"id\":\"bye\",\"cmd\":\"shutdown\"}",
        Duration::from_secs(2),
    )
    .expect("shutdown ack");
    assert_eq!(status(&bye), "ok");
    let t0 = Instant::now();
    let snap = cluster.join();
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "drain must finish promptly"
    );
    assert_eq!(snap.routed_ok, 2);
    assert_eq!(snap.malformed, 0);
    single.handle().shutdown();
    let _ = single.join();
}

/// The shared cache tier: cordon the shard owner after it has solved a
/// key, and the next request for that key — now dispatched elsewhere —
/// is answered from the demoted owner's cache over the wire.
#[test]
fn peer_probe_serves_from_a_demoted_owners_cache() {
    let cluster = Cluster::start(ClusterConfig::default()).expect("cluster");
    let router = cluster.local_addr();
    let handle = cluster.handle();

    let first = tiny_variant("warm", 0, 5000);
    let owner = owner_of(&cluster, &first);
    let resp = roundtrip(router, &first, Duration::from_secs(10)).expect("fresh solve");
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert!(resp.get("cached").is_none(), "first solve is fresh");
    let fresh_cost = resp.get("cost").and_then(Json::as_u64).expect("cost");

    assert!(handle.drain_worker(owner), "cordon the owner");
    assert_eq!(handle.worker_state(owner), Some(WorkerState::Draining));

    let again = tiny_variant("warm-again", 0, 5000);
    let resp = roundtrip(router, &again, Duration::from_secs(10)).expect("peer cache hit");
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert_eq!(
        resp.get("cached"),
        Some(&Json::Bool(true)),
        "the answer must come from the demoted owner's cache: {resp:?}"
    );
    assert_eq!(resp.get("cost").and_then(Json::as_u64), Some(fresh_cost));
    assert_certificate_discipline(&resp);
    assert!(stat(&resp, "probe_hits") >= 1, "{resp:?}");
    let worker_snap = handle.worker_stats(owner).expect("owner stats");
    assert!(
        worker_snap.probe_hits >= 1,
        "the owner answered the probe: {worker_snap:?}"
    );

    handle.shutdown();
    let _ = cluster.join();
}

/// Graceful rebalance: after a worker joins, keys it claims are served
/// with the previous owner's warm cache via a peer probe — solved work
/// is never re-spent on a join.
#[test]
fn join_rebalance_reuses_the_previous_owners_cache() {
    let config = ClusterConfig {
        workers: 1,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("cluster");
    let router = cluster.local_addr();
    let handle = cluster.handle();

    // Warm w0's cache with every variant, remembering costs.
    let mut costs = Vec::new();
    for v in 0..6 {
        let resp = roundtrip(
            router,
            &tiny_variant(&format!("pre{v}"), v, 5000),
            Duration::from_secs(10),
        )
        .expect("warmup");
        assert_eq!(status(&resp), "ok", "{resp:?}");
        costs.push(resp.get("cost").and_then(Json::as_u64).expect("cost"));
    }

    let joiner = handle.add_worker().expect("join");
    assert_eq!(handle.worker_count(), 2);

    // Some variant's ownership moved to the joiner (the ring seed and
    // problems are fixed, so this is deterministic).
    let mut moved = None;
    for v in 0..6 {
        let line = tiny_variant(&format!("post{v}"), v, 5000);
        if owner_of(&cluster, &line) == joiner {
            moved = Some((v, line));
            break;
        }
    }
    let (v, line) = moved.expect("the joiner must claim a share of six keys");
    let resp = roundtrip(router, &line, Duration::from_secs(10)).expect("rebalanced request");
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert_eq!(
        resp.get("cached"),
        Some(&Json::Bool(true)),
        "the previous owner's cache must serve the moved key: {resp:?}"
    );
    assert_eq!(resp.get("cost").and_then(Json::as_u64), Some(costs[v]));
    assert!(stat(&resp, "probe_hits") >= 1);

    handle.shutdown();
    let _ = cluster.join();
}

/// Failover re-dispatch, deterministic variant: with the shard owner
/// crash-stopped before dispatch, the request is served by the backup
/// worker, tagged `TS005`, with the identical certified result.
#[test]
fn killed_owner_fails_over_with_ts005_and_an_identical_certificate() {
    let single = Service::start(ServiceConfig::default()).expect("single daemon");
    let cluster = Cluster::start(ClusterConfig::default()).expect("cluster");
    let router = cluster.local_addr();
    let handle = cluster.handle();

    let reference =
        roundtrip(single.local_addr(), FIG5, Duration::from_secs(15)).expect("reference fig5");
    assert_eq!(status(&reference), "ok");

    let owner = owner_of(&cluster, FIG5);
    assert!(handle.kill_worker(owner));
    assert_eq!(handle.worker_state(owner), Some(WorkerState::Dead));

    let resp = roundtrip(router, FIG5, Duration::from_secs(15)).expect("failover response");
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert_eq!(resp.get("cost").and_then(Json::as_u64), Some(4160));
    assert!(
        codes(&resp).contains(&"TS005".to_owned()),
        "a backup-served request is tagged TS005: {resp:?}"
    );
    assert_eq!(
        resp.get("certificate"),
        reference.get("certificate"),
        "failover re-dispatch must yield the identical certified result"
    );

    handle.shutdown();
    let _ = cluster.join();
    single.handle().shutdown();
    let _ = single.join();
}

/// Failover re-dispatch, mid-flight variant: the owner is killed while
/// a slow request is in flight; the router observes EOF and re-hashes
/// to the backup with the remaining deadline intact, so the client
/// still gets its `ok` — tagged `TS005` — well inside the original
/// budget.
#[test]
fn mid_flight_worker_kill_re_dispatches_with_the_remaining_deadline() {
    let cluster = Cluster::start(ClusterConfig::default()).expect("cluster");
    let router = cluster.local_addr();
    let handle = cluster.handle();

    // A 60-op chain whose LP grinds past any sub-second point: still in
    // flight when the kill lands 400 ms in. The generous deadline is
    // headroom for a loaded machine (the backup re-solves from scratch
    // while sibling tests hold the cores), not part of the contract.
    let line = format!(
        "{{\"id\":\"slow\",\"cmd\":\"synth\",\"dfg\":\"{}\",\"catalog\":\"table1\",\
         \"lambda_det\":66,\"lambda_rec\":62,\"deadline_ms\":25000,\"no_degrade\":true}}",
        inline(&chain_dfg("bigchain", 60))
    );
    let owner = owner_of(&cluster, &line);

    let t0 = Instant::now();
    let client = {
        let line = line.clone();
        std::thread::spawn(move || roundtrip(router, &line, Duration::from_secs(40)))
    };
    std::thread::sleep(Duration::from_millis(400));
    assert!(handle.kill_worker(owner), "kill the owner mid-flight");

    let resp = client
        .join()
        .expect("client thread")
        .expect("the request must not be silently lost");
    let elapsed = t0.elapsed();
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert!(
        codes(&resp).contains(&"TS005".to_owned()),
        "mid-flight failover is tagged TS005: {resp:?}"
    );
    assert!(stat(&resp, "failovers") >= 1, "{resp:?}");
    assert!(
        elapsed < Duration::from_secs(30),
        "re-dispatch happens inside the original budget, never a hang: {elapsed:?}"
    );
    assert_certificate_discipline(&resp);

    handle.shutdown();
    let _ = cluster.join();
}

/// With every worker dead the router sheds explicitly: a typed
/// `unavailable` rejection carrying `TS006` and a `retry_after_ms`
/// hint — never a hang, never silence.
#[test]
fn all_workers_dead_sheds_typed_unavailable_with_ts006() {
    let cluster = Cluster::start(ClusterConfig::default()).expect("cluster");
    let router = cluster.local_addr();
    let handle = cluster.handle();
    assert!(handle.kill_worker(0));
    assert!(handle.kill_worker(1));

    let resp = roundtrip(
        router,
        &tiny_variant("doomed", 0, 2000),
        Duration::from_secs(5),
    )
    .expect("a typed shed, not silence");
    assert_eq!(status(&resp), "rejected", "{resp:?}");
    assert_eq!(resp.get("kind").and_then(Json::as_str), Some("unavailable"));
    assert!(codes(&resp).contains(&"TS006".to_owned()), "{resp:?}");
    assert!(
        resp.get("retry_after_ms").and_then(Json::as_u64).is_some(),
        "sheds carry a back-pressure hint: {resp:?}"
    );
    assert!(resp.get("certificate").is_none());
    assert_eq!(stat(&resp, "sheds"), 1);

    handle.shutdown();
    let _ = cluster.join();
}

/// Satellite: a worker-side overload rejection travels through the
/// router with the *worker's* `retry_after_ms` hint and the serving
/// worker's name — the router relays back-pressure, it does not
/// invent it.
#[test]
fn worker_overload_hints_propagate_through_the_router() {
    let config = ClusterConfig {
        workers: 1,
        max_inflight: 1,
        queue_depth: 1,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("cluster");
    let router = cluster.local_addr();

    // The occupier holds w0's only slot for several seconds (the 60-op
    // chain's LP grinds well past the point where B and C are shed).
    let holder_line = format!(
        "{{\"id\":\"hold\",\"cmd\":\"synth\",\"dfg\":\"{}\",\"catalog\":\"table1\",\
         \"lambda_det\":66,\"lambda_rec\":62,\"deadline_ms\":25000,\"no_degrade\":true}}",
        inline(&chain_dfg("bigchain", 60))
    );
    let holder =
        std::thread::spawn(move || roundtrip(router, &holder_line, Duration::from_secs(40)));
    std::thread::sleep(Duration::from_millis(500));

    // B queues (and is shed after its bounded wait); C is shed at once.
    let b_line = tiny_variant("b", 1, 600);
    let b = std::thread::spawn(move || roundtrip(router, &b_line, Duration::from_secs(5)));
    std::thread::sleep(Duration::from_millis(100));
    let c_resp =
        roundtrip(router, &tiny_variant("c", 2, 600), Duration::from_secs(5)).expect("c response");

    for resp in [&b.join().expect("b thread").expect("b response"), &c_resp] {
        assert_eq!(status(resp), "rejected", "{resp:?}");
        assert_eq!(resp.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert!(
            resp.get("retry_after_ms").and_then(Json::as_u64).is_some(),
            "the worker's own hint must survive the relay: {resp:?}"
        );
        assert!(codes(resp).contains(&"TS001".to_owned()), "{resp:?}");
        assert_eq!(
            resp.get("worker").and_then(Json::as_str),
            Some("w0"),
            "typed overload errors surface the worker id: {resp:?}"
        );
        assert!(stat(resp, "relayed_rejects") >= 1, "{resp:?}");
    }

    let holder_resp = holder.join().expect("holder thread").expect("holder");
    assert_eq!(status(&holder_resp), "ok", "{holder_resp:?}");

    cluster.handle().shutdown();
    let _ = cluster.join();
}

/// The router diagnoses hostile frames itself, with cluster counters in
/// the trailer.
#[test]
fn router_rejects_malformed_frames_with_a_typed_diagnosis() {
    let cluster = Cluster::start(ClusterConfig::default()).expect("cluster");
    let router = cluster.local_addr();

    let resp = roundtrip(router, "{\"id\":1,]]]", Duration::from_secs(5))
        .expect("malformed lines are diagnosed, not dropped");
    assert_eq!(status(&resp), "rejected", "{resp:?}");
    assert_eq!(resp.get("kind").and_then(Json::as_str), Some("malformed"));
    assert_eq!(stat(&resp, "malformed"), 1);

    cluster.handle().shutdown();
    let _ = cluster.join();
}

/// Polls `probe` until it returns true or `budget` elapses.
fn wait_for(budget: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + budget;
    loop {
        if probe() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Write-behind replication: after the owner solves a key, its entry is
/// copied to a ring successor; killing the owner then serves the hot
/// key from the replica — `cached`, byte-identical certificate, zero
/// re-solves.
#[test]
fn killed_owner_serves_the_hot_key_from_a_replica_without_a_resolve() {
    let config = ClusterConfig {
        workers: 3,
        replication: 2,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("cluster");
    let router = cluster.local_addr();
    let handle = cluster.handle();

    let hot = tiny_variant("hot", 0, 5000);
    let owner = owner_of(&cluster, &hot);
    let fresh = roundtrip(router, &hot, Duration::from_secs(10)).expect("fresh solve");
    assert_eq!(status(&fresh), "ok", "{fresh:?}");
    assert!(fresh.get("cached").is_none(), "first solve is fresh");
    let cost = fresh.get("cost").and_then(Json::as_u64).expect("cost");
    let certificate = fresh.get("certificate").cloned().expect("certificate");

    // The write-behind put is asynchronous; wait for it to land on a
    // successor (its `put_stores` counter proves the certified-store
    // gate accepted the entry).
    let landed = wait_for(Duration::from_secs(5), || {
        (0..3).any(|i| i != owner && handle.worker_stats(i).is_some_and(|s| s.put_stores >= 1))
    });
    assert!(landed, "write-behind must replicate the fresh entry");
    let replica = (0..3)
        .find(|&i| i != owner && handle.worker_stats(i).is_some_and(|s| s.put_stores >= 1))
        .expect("replica index");
    let replica_hits_before = handle.worker_stats(replica).expect("stats").cache_hits;

    assert!(handle.kill_worker(owner), "crash-stop the owner");

    let again = tiny_variant("hot-again", 0, 5000);
    let resp = roundtrip(router, &again, Duration::from_secs(10)).expect("replica hit");
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert_eq!(
        resp.get("cached"),
        Some(&Json::Bool(true)),
        "the replica serves from cache — zero re-solves: {resp:?}"
    );
    assert_eq!(resp.get("cost").and_then(Json::as_u64), Some(cost));
    assert_eq!(
        resp.get("certificate"),
        Some(&certificate),
        "the replicated entry must reproduce the identical certificate"
    );
    assert!(
        codes(&resp).contains(&"TS005".to_owned()),
        "a dead owner's key served elsewhere is a failover: {resp:?}"
    );
    assert!(stat(&resp, "replicas_put") >= 1, "{resp:?}");
    let replica_snap = handle.worker_stats(replica).expect("stats");
    assert!(
        replica_snap.cache_hits > replica_hits_before,
        "the answer came from the replica's cache, not a fresh solve"
    );

    handle.shutdown();
    let _ = cluster.join();
}

/// Generation-aware respawn: the supervisor revives a killed worker
/// under a new generation, warms its cache from a ring successor, and
/// requests it then serves carry `TS007`.
#[test]
fn supervisor_respawns_a_killed_worker_with_a_new_generation_and_warm_cache() {
    let config = ClusterConfig {
        workers: 2,
        respawn: true,
        max_respawns: 3,
        replication: 2,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("cluster");
    let router = cluster.local_addr();
    let handle = cluster.handle();

    let hot = tiny_variant("hot", 0, 5000);
    let owner = owner_of(&cluster, &hot);
    let fresh = roundtrip(router, &hot, Duration::from_secs(10)).expect("fresh solve");
    assert_eq!(status(&fresh), "ok", "{fresh:?}");
    let cost = fresh.get("cost").and_then(Json::as_u64).expect("cost");

    // Let write-behind place the entry on the other worker, so the
    // respawned owner has a warm source to pull from.
    let other = 1 - owner;
    assert!(
        wait_for(Duration::from_secs(5), || handle
            .worker_stats(other)
            .is_some_and(|s| s.put_stores >= 1)),
        "write-behind must land before the kill"
    );

    assert!(handle.kill_worker(owner));
    assert!(
        wait_for(Duration::from_secs(10), || handle.worker_state(owner)
            == Some(WorkerState::Live)),
        "the supervisor must revive the dead slot"
    );
    assert_eq!(
        handle.worker_generation(owner),
        Some(1),
        "a respawn bumps the slot generation"
    );
    assert!(
        wait_for(Duration::from_secs(5), || cluster.stats().warmed >= 1),
        "the newcomer's cache is warmed from its ring successors"
    );
    assert!(cluster.stats().respawns >= 1);

    // The hot key still serves, same cost, from cache (warm or replica).
    let again = roundtrip(
        router,
        &tiny_variant("hot-again", 0, 5000),
        Duration::from_secs(10),
    )
    .expect("post-respawn hit");
    assert_eq!(status(&again), "ok", "{again:?}");
    assert_eq!(again.get("cached"), Some(&Json::Bool(true)), "{again:?}");
    assert_eq!(again.get("cost").and_then(Json::as_u64), Some(cost));

    // A fresh key owned by the respawned worker: it solves it (the
    // probation trial) and the response is tagged TS007.
    // Variant 0 is the hot key — already cached — so only 1..6 are
    // genuinely fresh work.
    let fresh_line = (1..6)
        .map(|v| tiny_variant(&format!("after{v}"), v, 5000))
        .find(|line| owner_of(&cluster, line) == owner)
        .expect("some variant hashes to the respawned worker");
    let resp = roundtrip(router, &fresh_line, Duration::from_secs(10)).expect("respawned serve");
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert!(
        codes(&resp).contains(&"TS007".to_owned()),
        "work served by a respawned worker is tagged TS007: {resp:?}"
    );
    assert_certificate_discipline(&resp);

    handle.shutdown();
    let _ = cluster.join();
}

/// Durable dispatch journal: a router that crashed with accepted but
/// incomplete entries — including a torn final frame — replays every
/// one of them to a terminal outcome on restart.
#[test]
fn router_restart_replays_incomplete_journal_entries() {
    use troy_cluster::journal::JOURNAL_FILE;
    use troy_cluster::Journal;

    let dir = std::env::temp_dir().join(format!("troy-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A "crashed" router's journal: two accepted entries with no
    // terminal outcome, one completed entry, and a torn final frame.
    {
        let (journal, replay) = Journal::open(&dir, Chaos::disabled()).expect("journal");
        assert!(replay.is_empty());
        journal.accepted(&tiny_variant("lost0", 0, 5000));
        journal.accepted(&tiny_variant("lost1", 1, 5000));
        let done = journal.accepted(&tiny_variant("done", 2, 5000));
        journal.completed(done);
    }
    {
        let mut wal = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .expect("open wal");
        wal.write_all(b"TJ1 00ff00ff00ff00ff {\"seq\":99,\"kind\":\"acc")
            .expect("torn tail");
    }

    let config = ClusterConfig {
        journal_dir: Some(dir.clone()),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(config).expect("cluster");
    let router = cluster.local_addr();
    let handle = cluster.handle();

    assert!(
        wait_for(Duration::from_secs(30), || handle.journal_pending()
            == Some(0)),
        "every incomplete entry must reach a terminal outcome"
    );
    assert_eq!(
        cluster.stats().journal_replays,
        2,
        "exactly the two incomplete entries replay — not the completed \
         one, not the torn tail"
    );

    // The replayed work is real: the keys are now warm in the cluster.
    for (id, v) in [("check0", 0), ("check1", 1)] {
        let resp = roundtrip(router, &tiny_variant(id, v, 5000), Duration::from_secs(10))
            .expect("post-replay request");
        assert_eq!(status(&resp), "ok", "{resp:?}");
        assert_eq!(
            resp.get("cached"),
            Some(&Json::Bool(true)),
            "replay solved and cached the journaled request: {resp:?}"
        );
    }

    handle.shutdown();
    let _ = cluster.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: a panic while holding the router's ring or
/// worker locks must not wedge dispatch — the lock guards recover from
/// poisoning instead of unwrapping it into a cascade.
#[test]
fn dispatch_survives_a_panic_while_holding_router_locks() {
    let cluster = Cluster::start(ClusterConfig::default()).expect("cluster");
    let router = cluster.local_addr();
    let handle = cluster.handle();

    let before = roundtrip(
        router,
        &tiny_variant("pre", 0, 5000),
        Duration::from_secs(10),
    )
    .expect("pre-poison solve");
    assert_eq!(status(&before), "ok", "{before:?}");

    handle.poison_locks_for_tests();

    let after = roundtrip(
        router,
        &tiny_variant("post", 1, 5000),
        Duration::from_secs(10),
    )
    .expect("dispatch must survive poisoned locks");
    assert_eq!(status(&after), "ok", "{after:?}");
    assert_certificate_discipline(&after);

    // The cached path and placement (both read the poisoned locks)
    // still work too.
    let again = roundtrip(
        router,
        &tiny_variant("post2", 1, 5000),
        Duration::from_secs(10),
    )
    .expect("cached after poison");
    assert_eq!(again.get("cached"), Some(&Json::Bool(true)), "{again:?}");
    let _ = owner_of(&cluster, &tiny_variant("post3", 2, 5000));

    handle.shutdown();
    let _ = cluster.join();
}

/// The tentpole soak: 104 seeds (or the one in
/// `TROY_CLUSTER_SOAK_SEED`) of a three-worker cluster under seeded
/// dispatch faults — worker kills, stalls, partitions, torn frames.
/// Every request terminates with a typed outcome; every `ok` matches
/// the single-daemon cost and certificate for its key; across the
/// sweep every fault family actually fires.
#[test]
fn seeded_cluster_chaos_soak_never_loses_a_request() {
    // Reference answers from one chaos-free daemon, per problem variant.
    let reference = Service::start(ServiceConfig::default()).expect("reference daemon");
    let mut expected: Vec<(u64, Option<Json>)> = Vec::new();
    for v in 0..6 {
        let resp = roundtrip(
            reference.local_addr(),
            &tiny_variant(&format!("ref{v}"), v, 8000),
            Duration::from_secs(15),
        )
        .expect("reference solve");
        assert_eq!(status(&resp), "ok", "{resp:?}");
        expected.push((
            resp.get("cost").and_then(Json::as_u64).expect("cost"),
            resp.get("certificate").cloned(),
        ));
    }
    reference.handle().shutdown();
    let _ = reference.join();

    let seeds: Vec<u64> = match std::env::var("TROY_CLUSTER_SOAK_SEED") {
        Ok(v) => vec![v.trim().parse().expect("TROY_CLUSTER_SOAK_SEED is a u64")],
        Err(_) => (1..=104).collect(),
    };
    let full_sweep = seeds.len() > 1;

    let mut total = troy_cluster::ClusterSnapshot::default();
    let mut responses = 0u64;
    for &seed in &seeds {
        let wal_dir =
            std::env::temp_dir().join(format!("troy-soak-wal-{seed}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let config = ClusterConfig {
            workers: 3,
            chaos: Chaos::seeded(seed),
            health_interval: Duration::from_millis(50),
            health_timeout: Duration::from_millis(150),
            worker_breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(200),
            },
            default_deadline: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(3),
            dispatch_grace: Duration::from_millis(400),
            respawn: true,
            max_respawns: 32,
            replication: 2,
            journal_dir: Some(wal_dir.clone()),
            ..ClusterConfig::default()
        };
        let cluster = Cluster::start(config).expect("cluster");
        let router = cluster.local_addr();
        let handle = cluster.handle();

        for i in 0..10usize {
            // Variants repeat within a seed so the cache tier is
            // genuinely exercised alongside the faults.
            let variant = (i % 4) + usize::try_from(seed % 3).expect("small");
            let id = format!("s{seed}r{i}");
            let line = tiny_variant(&id, variant, 3000);
            let resp = roundtrip(router, &line, Duration::from_secs(10)).unwrap_or_else(|| {
                panic!("seed {seed} request {id}: silently lost — contract broken")
            });
            responses += 1;
            assert_eq!(resp.get("id").and_then(Json::as_str), Some(id.as_str()));
            assert_certificate_discipline(&resp);
            match status(&resp) {
                "ok" => {
                    let (cost, cert) = &expected[variant % 6];
                    assert_eq!(
                        resp.get("cost").and_then(Json::as_u64),
                        Some(*cost),
                        "seed {seed} {id}: routed cost must match the single daemon: {resp:?}"
                    );
                    assert_eq!(
                        resp.get("certificate"),
                        cert.as_ref(),
                        "seed {seed} {id}: routed certificate must match the single daemon"
                    );
                }
                "degraded" => {}
                "rejected" => {
                    let kind = resp.get("kind").and_then(Json::as_str).expect("kind");
                    if matches!(kind, "unavailable" | "overloaded" | "circuit_open") {
                        assert!(
                            resp.get("retry_after_ms").and_then(Json::as_u64).is_some(),
                            "seed {seed} {id}: sheds carry retry_after_ms: {resp:?}"
                        );
                    }
                    if kind == "unavailable" {
                        assert!(codes(&resp).contains(&"TS006".to_owned()), "{resp:?}");
                    }
                }
                "error" => {
                    assert!(
                        resp.get("kind").and_then(Json::as_str).is_some(),
                        "errors are typed: {resp:?}"
                    );
                }
                other => panic!("seed {seed} {id}: unexpected status `{other}`: {resp:?}"),
            }
        }

        // Self-heal convergence: every accepted request has a journaled
        // terminal outcome, and every mid-sweep Dead worker is Live
        // again under a new generation (the respawn budget of 32 is far
        // beyond what a 20%-storm chain can consume).
        assert!(
            wait_for(Duration::from_secs(10), || handle.journal_pending()
                == Some(0)),
            "seed {seed}: journal entries left without a terminal outcome"
        );
        assert!(
            wait_for(Duration::from_secs(15), || (0..3)
                .all(|i| handle.worker_state(i) == Some(WorkerState::Live))),
            "seed {seed}: a dead worker was never respawned"
        );
        if handle.stats().respawns > 0 {
            assert!(
                (0..3).any(|i| handle.worker_generation(i).unwrap_or(0) > 0),
                "seed {seed}: a respawn must bump some slot's generation"
            );
        }

        handle.shutdown();
        let snap = cluster.join();
        let _ = std::fs::remove_dir_all(&wal_dir);
        total.requests += snap.requests;
        total.routed_ok += snap.routed_ok;
        total.routed_error += snap.routed_error;
        total.relayed_rejects += snap.relayed_rejects;
        total.sheds += snap.sheds;
        total.probes += snap.probes;
        total.probe_hits += snap.probe_hits;
        total.failovers += snap.failovers;
        total.respawns += snap.respawns;
        total.replicas_put += snap.replicas_put;
        total.read_repairs += snap.read_repairs;
        total.warmed += snap.warmed;
        total.journal_appends += snap.journal_appends;
        total.journal_replays += snap.journal_replays;
        total.chaos_kills += snap.chaos_kills;
        total.chaos_partitions += snap.chaos_partitions;
        total.chaos_torn += snap.chaos_torn;
        total.chaos_stalls += snap.chaos_stalls;
        total.chaos_respawn_storms += snap.chaos_respawn_storms;
        total.chaos_replica_drops += snap.chaos_replica_drops;
        total.chaos_journal_torn += snap.chaos_journal_torn;
    }

    assert_eq!(
        responses,
        10 * seeds.len() as u64,
        "every request got exactly one response"
    );
    assert!(total.routed_ok > 0, "the sweep must serve real work");
    assert!(total.probe_hits > 0, "the cache tier must fire: {total:?}");
    if full_sweep {
        // 104 seeds must exercise every fault family and the failover
        // path; a single-seed CI leg only pins the contract.
        assert!(total.chaos_kills > 0, "kills must fire: {total:?}");
        assert!(
            total.chaos_partitions > 0,
            "partitions must fire: {total:?}"
        );
        assert!(total.chaos_torn > 0, "torn frames must fire: {total:?}");
        assert!(total.chaos_stalls > 0, "stalls must fire: {total:?}");
        assert!(total.failovers > 0, "failover must fire: {total:?}");
        // The self-healing layers and their fault families.
        assert!(total.respawns > 0, "respawn must fire: {total:?}");
        assert!(
            total.chaos_respawn_storms > 0,
            "respawn storms must fire: {total:?}"
        );
        assert!(total.replicas_put > 0, "write-behind must fire: {total:?}");
        assert!(
            total.chaos_replica_drops > 0,
            "replica drops must fire: {total:?}"
        );
        assert!(
            total.journal_appends > 0,
            "the journal must record accepts: {total:?}"
        );
        assert!(
            total.chaos_journal_torn > 0,
            "torn journal appends must fire: {total:?}"
        );
    }
}
