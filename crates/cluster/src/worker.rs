//! One worker slot: an in-process `troy-service` daemon plus the
//! router-side health state wrapped around it.
//!
//! A slot's state is a packed `(generation, state)` word. Within one
//! generation the lifecycle is monotonic — `Live → Draining → Dead` —
//! and the three states mean three different things to the dispatcher:
//!
//! - **Live**: dispatchable (subject to its rationed [`Breaker`]) and
//!   probeable.
//! - **Draining** (cordoned): no new syntheses are dispatched to it, but
//!   in-flight work finishes and its warm result cache keeps answering
//!   peer probes — graceful rebalance demotes without dropping work.
//! - **Dead**: crash-stopped; skipped entirely. Requests it owned are
//!   re-hashed to the next live worker on the ring.
//!
//! `Dead → Live` is legal exactly once per rebirth, through
//! [`WorkerSlot::adopt`]: the respawn supervisor hands the slot a fresh
//! in-process daemon and the state word moves `(g, Dead) → (g+1, Live)`
//! in one compare-and-swap. The generation bump makes the transition
//! race-free — a stale `escalate(Dead)` aimed at generation `g` can
//! never kill generation `g+1` by accident, because `escalate` only
//! upgrades within the generation it observed.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};

use troy_service::{Breaker, BreakerConfig, Service, ServiceHandle, StatsSnapshot};

/// Router-visible lifecycle state of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Accepting dispatches and probes.
    Live,
    /// Cordoned: finishes in-flight work and answers cache probes, but
    /// receives no new syntheses.
    Draining,
    /// Crash-stopped (or observed dead); skipped entirely until the
    /// respawn supervisor adopts a replacement daemon into the slot.
    Dead,
}

impl WorkerState {
    fn as_u8(self) -> u8 {
        match self {
            WorkerState::Live => 0,
            WorkerState::Draining => 1,
            WorkerState::Dead => 2,
        }
    }

    fn from_u8(v: u8) -> WorkerState {
        match v {
            0 => WorkerState::Live,
            1 => WorkerState::Draining,
            _ => WorkerState::Dead,
        }
    }

    /// Stable wire/debug tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            WorkerState::Live => "live",
            WorkerState::Draining => "draining",
            WorkerState::Dead => "dead",
        }
    }
}

/// Low 2 bits carry the [`WorkerState`]; the rest count generations.
const STATE_BITS: u32 = 2;
const STATE_MASK: u32 = (1 << STATE_BITS) - 1;

fn pack(generation: u32, state: WorkerState) -> u32 {
    (generation << STATE_BITS) | u32::from(state.as_u8())
}

fn unpack(word: u32) -> (u32, WorkerState) {
    (
        word >> STATE_BITS,
        WorkerState::from_u8((word & STATE_MASK) as u8),
    )
}

/// The slot's current daemon: everything that changes on a respawn.
struct Daemon {
    addr: SocketAddr,
    handle: ServiceHandle,
    /// The owned daemon, taken exactly once at final drain.
    service: Option<Service>,
}

impl Daemon {
    fn wrap(service: Service) -> Daemon {
        Daemon {
            addr: service.local_addr(),
            handle: service.handle(),
            service: Some(service),
        }
    }
}

/// One worker daemon as the router sees it.
pub struct WorkerSlot {
    /// Stable short name (`w0`, `w1`, …), surfaced in typed errors. The
    /// name survives respawns; the generation distinguishes rebirths.
    pub name: String,
    /// Rationed health breaker: periodic pings and dispatch outcomes
    /// both feed it, and an open breaker demotes the worker from
    /// dispatch without touching its state (it may still be probed).
    /// A respawn re-arms it in probation rather than replacing it.
    pub breaker: Breaker,
    /// Packed `(generation, state)` word; see the module docs.
    state: AtomicU32,
    /// The daemon currently occupying the slot; replaced on respawn.
    daemon: RwLock<Daemon>,
    /// Drained daemons of dead generations, parked until final drain so
    /// their threads are never abandoned mid-test.
    retired: Mutex<Vec<Service>>,
}

impl WorkerSlot {
    /// Wraps a freshly started in-process daemon as generation 0.
    #[must_use]
    pub fn new(name: String, service: Service, breaker: BreakerConfig) -> Self {
        WorkerSlot {
            name,
            breaker: Breaker::new(breaker),
            state: AtomicU32::new(pack(0, WorkerState::Live)),
            daemon: RwLock::new(Daemon::wrap(service)),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The current daemon's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.daemon
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .addr
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> WorkerState {
        unpack(self.state.load(Ordering::SeqCst)).1
    }

    /// How many times the slot has been respawned (generation 0 is the
    /// daemon that booted with the cluster).
    #[must_use]
    pub fn generation(&self) -> u32 {
        unpack(self.state.load(Ordering::SeqCst)).0
    }

    /// Escalates the state within the observed generation; downgrades
    /// are ignored, and an escalation that races a respawn simply lands
    /// on the new generation (or kills it — which the supervisor then
    /// observes and handles like any other death).
    pub fn escalate(&self, to: WorkerState) {
        let mut cur = self.state.load(Ordering::SeqCst);
        loop {
            let (generation, state) = unpack(cur);
            if state.as_u8() >= to.as_u8() {
                return;
            }
            match self.state.compare_exchange_weak(
                cur,
                pack(generation, to),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// May receive new syntheses (breaker permitting).
    #[must_use]
    pub fn is_dispatchable(&self) -> bool {
        self.state() == WorkerState::Live
    }

    /// May answer peer cache probes (anything not crash-stopped).
    #[must_use]
    pub fn is_probeable(&self) -> bool {
        self.state() != WorkerState::Dead
    }

    /// Crash-stops the worker daemon the way a `SIGKILL` would — pending
    /// responses are dropped, peers see EOF — and marks the slot dead.
    pub fn kill(&self) {
        self.daemon
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .handle
            .kill();
        self.escalate(WorkerState::Dead);
    }

    /// Cordons the worker: the dispatcher stops sending it new work,
    /// while in-flight syntheses finish and its cache keeps serving peer
    /// probes. The daemon itself is only torn down at final drain.
    pub fn cordon(&self) {
        self.escalate(WorkerState::Draining);
    }

    /// Adopts a fresh daemon into a dead slot: the state word moves
    /// `(g, Dead) → (g+1, Live)` in one compare-and-swap, the slot's
    /// address and handle switch to the newcomer, and the previous
    /// (killed) daemon is parked for final drain. Returns the new
    /// generation, or — when the slot is not dead (it was never killed,
    /// or a concurrent adopt won) — hands `service` back untouched so
    /// the caller can stop the orphan daemon.
    ///
    /// # Errors
    /// The slot is not dead; `service` is returned unadopted.
    pub fn adopt(&self, service: Service) -> Result<u32, Service> {
        // Serialize adopts through the daemon write lock so two
        // concurrent supervisors cannot interleave the CAS and the
        // daemon swap.
        let mut daemon = self.daemon.write().unwrap_or_else(PoisonError::into_inner);
        let mut cur = self.state.load(Ordering::SeqCst);
        loop {
            let (generation, state) = unpack(cur);
            if state != WorkerState::Dead || generation >= u32::MAX >> STATE_BITS {
                return Err(service);
            }
            let next = generation + 1;
            match self.state.compare_exchange(
                cur,
                pack(next, WorkerState::Live),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    let old = std::mem::replace(&mut *daemon, Daemon::wrap(service));
                    if let Some(dead) = old.service {
                        self.retired
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(dead);
                    }
                    return Ok(next);
                }
                Err(observed) => cur = observed,
            }
        }
    }

    /// Begins the daemon's own graceful drain and blocks for it,
    /// returning the final serve-path counters. `None` after the first
    /// call (the daemon can be joined once) or for a slot with no
    /// in-process daemon. Retired daemons from dead generations are
    /// joined here too, so respawns never abandon threads.
    pub fn shutdown_service(&self) -> Option<StatsSnapshot> {
        self.escalate(WorkerState::Draining);
        for dead in
            std::mem::take(&mut *self.retired.lock().unwrap_or_else(PoisonError::into_inner))
        {
            dead.handle().shutdown();
            let _ = dead.join();
        }
        let service = self
            .daemon
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .service
            .take()?;
        service.handle().shutdown();
        Some(service.join())
    }

    /// Point-in-time serve-path counters of the worker daemon.
    #[must_use]
    pub fn service_stats(&self) -> StatsSnapshot {
        self.daemon
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .handle
            .stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_service::{Service, ServiceConfig};

    #[test]
    fn lifecycle_is_monotonic_within_a_generation() {
        let service = Service::start(ServiceConfig::default()).expect("worker starts");
        let slot = WorkerSlot::new("w0".into(), service, BreakerConfig::default());
        assert_eq!(slot.state(), WorkerState::Live);
        assert_eq!(slot.generation(), 0);
        assert!(slot.is_dispatchable() && slot.is_probeable());

        slot.cordon();
        assert_eq!(slot.state(), WorkerState::Draining);
        assert!(!slot.is_dispatchable(), "cordoned: no new dispatches");
        assert!(slot.is_probeable(), "cordoned: cache still answers");
        slot.escalate(WorkerState::Live);
        assert_eq!(slot.state(), WorkerState::Draining, "no downgrades");

        slot.kill();
        assert_eq!(slot.state(), WorkerState::Dead);
        assert!(!slot.is_probeable());
        let _ = slot.shutdown_service();
        assert!(slot.shutdown_service().is_none(), "joinable exactly once");
    }

    #[test]
    fn adopt_revives_a_dead_slot_under_a_new_generation() {
        let service = Service::start(ServiceConfig::default()).expect("worker starts");
        let slot = WorkerSlot::new("w0".into(), service, BreakerConfig::default());
        let first_addr = slot.addr();

        // A live slot refuses adoption: Dead → Live is the only legal
        // rebirth edge — and the orphan daemon comes back to its owner.
        let intruder = Service::start(ServiceConfig::default()).expect("intruder starts");
        let intruder = slot.adopt(intruder).expect_err("live slot refuses");
        intruder.handle().shutdown();
        let _ = intruder.join();

        slot.kill();
        assert_eq!(slot.state(), WorkerState::Dead);
        let replacement = Service::start(ServiceConfig::default()).expect("replacement starts");
        let new_addr = replacement.local_addr();
        assert_eq!(slot.adopt(replacement).ok(), Some(1));
        assert_eq!(slot.state(), WorkerState::Live, "Dead → Live is legal");
        assert_eq!(slot.generation(), 1);
        assert_eq!(slot.addr(), new_addr);
        assert_ne!(slot.addr(), first_addr, "the newcomer has its own port");
        assert!(slot.is_dispatchable() && slot.is_probeable());

        // The lifecycle restarts monotonic within the new generation…
        slot.kill();
        assert_eq!(slot.state(), WorkerState::Dead);
        assert_eq!(slot.generation(), 1, "a kill never touches the generation");
        // …and a second rebirth bumps it again.
        let third = Service::start(ServiceConfig::default()).expect("third starts");
        assert_eq!(slot.adopt(third).ok(), Some(2));
        assert_eq!(slot.generation(), 2);
        let _ = slot.shutdown_service();
    }

    #[test]
    fn concurrent_adopts_admit_exactly_one_winner() {
        let service = Service::start(ServiceConfig::default()).expect("worker starts");
        let slot = WorkerSlot::new("w0".into(), service, BreakerConfig::default());
        slot.kill();
        let outcomes: Vec<Option<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        match slot.adopt(Service::start(ServiceConfig::default()).expect("starts"))
                        {
                            Ok(generation) => Some(generation),
                            Err(orphan) => {
                                orphan.handle().shutdown();
                                let _ = orphan.join();
                                None
                            }
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let winners: Vec<u32> = outcomes.into_iter().flatten().collect();
        assert_eq!(winners, vec![1], "exactly one adopt wins, as generation 1");
        assert_eq!(slot.generation(), 1);
        assert_eq!(slot.state(), WorkerState::Live);
        let _ = slot.shutdown_service();
    }
}
