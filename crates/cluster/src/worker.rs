//! One worker slot: an in-process `troy-service` daemon plus the
//! router-side health state wrapped around it.
//!
//! A slot's lifecycle is monotonic — `Live → Draining → Dead` — and the
//! three states mean three different things to the dispatcher:
//!
//! - **Live**: dispatchable (subject to its rationed [`Breaker`]) and
//!   probeable.
//! - **Draining** (cordoned): no new syntheses are dispatched to it, but
//!   in-flight work finishes and its warm result cache keeps answering
//!   peer probes — graceful rebalance demotes without dropping work.
//! - **Dead**: crash-stopped; skipped entirely. Requests it owned are
//!   re-hashed to the next live worker on the ring.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use troy_service::{Breaker, BreakerConfig, Service, ServiceHandle, StatsSnapshot};

/// Router-visible lifecycle state of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Accepting dispatches and probes.
    Live,
    /// Cordoned: finishes in-flight work and answers cache probes, but
    /// receives no new syntheses.
    Draining,
    /// Crash-stopped (or observed dead); skipped entirely.
    Dead,
}

impl WorkerState {
    fn as_u8(self) -> u8 {
        match self {
            WorkerState::Live => 0,
            WorkerState::Draining => 1,
            WorkerState::Dead => 2,
        }
    }

    fn from_u8(v: u8) -> WorkerState {
        match v {
            0 => WorkerState::Live,
            1 => WorkerState::Draining,
            _ => WorkerState::Dead,
        }
    }

    /// Stable wire/debug tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            WorkerState::Live => "live",
            WorkerState::Draining => "draining",
            WorkerState::Dead => "dead",
        }
    }
}

/// One worker daemon as the router sees it.
pub struct WorkerSlot {
    /// Stable short name (`w0`, `w1`, …), surfaced in typed errors.
    pub name: String,
    /// The worker daemon's bound address.
    pub addr: SocketAddr,
    /// Rationed health breaker: periodic pings and dispatch outcomes
    /// both feed it, and an open breaker demotes the worker from
    /// dispatch without touching its state (it may still be probed).
    pub breaker: Breaker,
    /// Monotonic lifecycle state (`fetch_max`: never downgrades).
    state: AtomicU8,
    handle: ServiceHandle,
    /// The owned daemon, taken exactly once at final drain.
    service: Mutex<Option<Service>>,
}

impl WorkerSlot {
    /// Wraps a freshly started in-process daemon.
    #[must_use]
    pub fn new(name: String, service: Service, breaker: BreakerConfig) -> Self {
        WorkerSlot {
            name,
            addr: service.local_addr(),
            breaker: Breaker::new(breaker),
            state: AtomicU8::new(WorkerState::Live.as_u8()),
            handle: service.handle(),
            service: Mutex::new(Some(service)),
        }
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> WorkerState {
        WorkerState::from_u8(self.state.load(Ordering::SeqCst))
    }

    /// Escalates the state; downgrades are ignored (a dead worker never
    /// silently resurrects).
    pub fn escalate(&self, to: WorkerState) {
        self.state.fetch_max(to.as_u8(), Ordering::SeqCst);
    }

    /// May receive new syntheses (breaker permitting).
    #[must_use]
    pub fn is_dispatchable(&self) -> bool {
        self.state() == WorkerState::Live
    }

    /// May answer peer cache probes (anything not crash-stopped).
    #[must_use]
    pub fn is_probeable(&self) -> bool {
        self.state() != WorkerState::Dead
    }

    /// Crash-stops the worker daemon the way a `SIGKILL` would — pending
    /// responses are dropped, peers see EOF — and marks the slot dead.
    pub fn kill(&self) {
        self.handle.kill();
        self.escalate(WorkerState::Dead);
    }

    /// Cordons the worker: the dispatcher stops sending it new work,
    /// while in-flight syntheses finish and its cache keeps serving peer
    /// probes. The daemon itself is only torn down at final drain.
    pub fn cordon(&self) {
        self.escalate(WorkerState::Draining);
    }

    /// Begins the daemon's own graceful drain and blocks for it,
    /// returning the final serve-path counters. `None` after the first
    /// call (the daemon can be joined once) or for a slot with no
    /// in-process daemon.
    pub fn shutdown_service(&self) -> Option<StatsSnapshot> {
        self.escalate(WorkerState::Draining);
        let service = self.service.lock().expect("worker slot lock").take()?;
        service.handle().shutdown();
        Some(service.join())
    }

    /// Point-in-time serve-path counters of the worker daemon.
    #[must_use]
    pub fn service_stats(&self) -> StatsSnapshot {
        self.handle.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use troy_service::{Service, ServiceConfig};

    #[test]
    fn lifecycle_is_monotonic() {
        let service = Service::start(ServiceConfig::default()).expect("worker starts");
        let slot = WorkerSlot::new("w0".into(), service, BreakerConfig::default());
        assert_eq!(slot.state(), WorkerState::Live);
        assert!(slot.is_dispatchable() && slot.is_probeable());

        slot.cordon();
        assert_eq!(slot.state(), WorkerState::Draining);
        assert!(!slot.is_dispatchable(), "cordoned: no new dispatches");
        assert!(slot.is_probeable(), "cordoned: cache still answers");
        slot.escalate(WorkerState::Live);
        assert_eq!(slot.state(), WorkerState::Draining, "no downgrades");

        slot.kill();
        assert_eq!(slot.state(), WorkerState::Dead);
        assert!(!slot.is_probeable());
        let _ = slot.shutdown_service();
        assert!(slot.shutdown_service().is_none(), "joinable exactly once");
    }
}
